# Development entry points.  CI runs the same commands (.github/workflows/ci.yml).
#
# ruff and mypy are optional-but-expected dev tools; physlint ships with the
# package itself, so `make physlint` works in any environment that runs the code.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint ruff mypy physlint physlint-baseline bench-smoke

test:
	$(PYTHON) -m pytest -x -q

## Cold/warm smoke of the parallel coupling engine and its persistent cache.
bench-smoke:
	$(PYTHON) benchmarks/smoke_parallel.py

## Full static gate: style (ruff) + types (mypy) + physics lint (physlint).
lint: ruff mypy physlint

ruff:
	ruff check src/ tests/ examples/ benchmarks/

mypy:
	mypy src/repro

physlint:
	$(PYTHON) -m repro.cli lint-src src/repro

## Re-accept all current findings (review the diff before committing!).
physlint-baseline:
	$(PYTHON) -m repro.cli lint-src src/repro --no-baseline \
		--write-baseline src/repro/lint/physlint_baseline.json
