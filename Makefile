# Development entry points.  CI runs the same commands (.github/workflows/ci.yml).
#
# ruff and mypy are optional-but-expected dev tools; physlint ships with the
# package itself, so `make physlint` works in any environment that runs the code.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint ruff mypy physlint physlint-baseline conlint perflint hotness-baseline race-check bench-smoke events-smoke serve-smoke dashboard-smoke docs-check perf-baseline perf-check

test:
	$(PYTHON) -m pytest -x -q

## Cold/warm smoke of the parallel coupling engine and its persistent cache.
bench-smoke:
	$(PYTHON) benchmarks/smoke_parallel.py

## End-to-end smoke of the telemetry event stream (--events-out), its
## schema, the worker chunk events and the perf-flight HTML artefact.
events-smoke:
	$(PYTHON) benchmarks/smoke_events.py

## Boot the HTTP job service on an ephemeral port, run one flow job
## end to end (SSE stream, artifacts, /metrics), shut down cleanly.
serve-smoke:
	$(PYTHON) benchmarks/smoke_service.py

## Boot the service, run two board jobs, verify /stats + /dashboard
## (self-contained HTML, live percentiles) and save the dashboard and
## flight-recorder pages to benchmarks/out/ for CI artifact upload.
dashboard-smoke:
	$(PYTHON) benchmarks/smoke_dashboard.py benchmarks/out

## Documentation hygiene: docs/README.md indexes every docs file, all
## relative links under docs/ + README resolve, serve --help is current.
docs-check:
	$(PYTHON) -m pytest -x -q tests/test_docs.py

## Regenerate the committed perf baseline for the CI regression gate.
## Counters in it are deterministic; wall times are only gated loosely.
perf-baseline:
	$(PYTHON) -m repro.cli rules examples/boards/demo_board.txt --max-pairs 2 \
		--no-cache --metrics-out benchmarks/baselines/PERF_rules_demo_board.json

## The CI perf gate, runnable locally: smoke run vs. the committed baseline.
perf-check:
	$(PYTHON) -m repro.cli rules examples/boards/demo_board.txt --max-pairs 2 \
		--no-cache --metrics-out /tmp/repro-perf-current.json
	$(PYTHON) -m repro.cli perf check /tmp/repro-perf-current.json \
		--baseline benchmarks/baselines/PERF_rules_demo_board.json \
		--fail-on regression --wall-threshold 4.0

## Full static gate: style (ruff) + types (mypy) + physics lint (physlint)
## + concurrency lint (conlint) + performance/architecture lint (perflint).
lint: ruff mypy physlint conlint perflint

ruff:
	ruff check src/ tests/ examples/ benchmarks/

mypy:
	mypy src/repro

physlint:
	$(PYTHON) -m repro.cli lint-src src/repro

## Re-accept all current findings (review the diff before committing!).
physlint-baseline:
	$(PYTHON) -m repro.cli lint-src src/repro --no-baseline \
		--write-baseline src/repro/lint/physlint_baseline.json

## Concurrency rules alone (docs/CONLINT.md).  No baseline: the tree is
## conlint-clean modulo inline waivers, and stays that way.
conlint:
	$(PYTHON) -m repro.cli lint-src src/repro --select CON --no-baseline

## Performance + architecture rules alone (docs/PERFLINT.md).  The
## baseline is zero-entry by design: ARCH findings and hot-path PRF
## findings (promoted to error by the committed hotness snapshot) must
## be fixed, not accumulated; cold PRF findings are informational.
perflint:
	$(PYTHON) -m repro.cli lint-src src/repro --select PRF,ARCH \
		--baseline src/repro/lint/perflint_baseline.json \
		--hotness benchmarks/baselines/HOTNESS.json

## Refresh the committed hotness snapshot from the perf-history store.
hotness-baseline:
	$(PYTHON) -m repro.cli perf hotness \
		--store benchmarks/out/perf-history.jsonl \
		-o benchmarks/baselines/HOTNESS.json

## The threaded suites with every threading.Lock/RLock instrumented by
## the runtime lock sanitizer (repro.lint.sanitizer): lock-order
## inversions and over-threshold holds fail the test they happen in.
race-check:
	REPRO_EMI_LOCK_SANITIZER=1 $(PYTHON) -m pytest -x -q \
		tests/test_concurrency_hammer.py tests/test_lint_sanitizer.py \
		tests/test_obs.py tests/test_obs_events.py tests/test_obs_stream.py \
		tests/test_parallel_executor.py
