"""Figure 8 — capacitor placement next to common-mode chokes.

Paper claim: the two-winding CM choke "offers preferred placements for
capacitors", while the three-winding design "generates almost rotating
stray fields and therefore no decoupled position for adjacent components
can be found".

Measured here as the orientation-minimised coupling k_min of a capacitor
orbiting each choke: for the 2-winding part k_min collapses to zero at
every position (a decoupling rotation always exists); for the 3-winding
part under phase excitation it never does.
"""

import numpy as np

from repro.components import FilmCapacitorX2, cm_choke_2w, cm_choke_3w
from repro.coupling import decoupling_sweep
from repro.viz import series_table


def test_fig08_cmchoke_positions(benchmark, record):
    cap = FilmCapacitorX2()
    angles = np.linspace(0.0, 330.0, 12)
    radius = 0.03

    def sweep_2w():
        return decoupling_sweep(cm_choke_2w(), cap, radius, angles, excitation="phase")

    kmax2, kmin2 = benchmark(sweep_2w)
    kmax3, kmin3 = decoupling_sweep(
        cm_choke_3w(), cap, radius, angles, excitation="phase"
    )

    rows = [
        [
            f"{ang:.0f}",
            f"{kmax2[i]:.5f}",
            f"{kmin2[i]:.2e}",
            f"{kmax3[i]:.5f}",
            f"{kmin3[i]:.2e}",
        ]
        for i, ang in enumerate(angles)
    ]
    table = series_table(
        ["position deg", "2w k_max", "2w k_min", "3w k_max", "3w k_min"], rows
    )
    summary = (
        f"2-winding: worst orientation-minimised coupling = {float(np.max(kmin2)):.2e} "
        "(decoupled positions everywhere)\n"
        f"3-winding: best  orientation-minimised coupling = {float(np.min(kmin3)):.2e} "
        "(no decoupled position)"
    )
    record("fig08_cmchoke_positions", f"{table}\n\n{summary}")

    assert float(np.max(kmin2)) < 1e-6
    assert float(np.min(kmin3)) > 1e-5
    assert np.all(kmax3 >= kmin3)
