"""Figure 9 — automatic placement of the 29-device demo board.

Paper claim: "The task for the method was to place 29 devices on a
specified area by taking 100 minimum distances into account.  Three
functional groups were defined.  The result is a legal component
arrangement and was computed by the method in seconds."
"""

from repro.converters import build_demo_board
from repro.placement import AutoPlacer, DesignRuleChecker, group_spread, total_wirelength
from repro.viz import render_board_svg, series_table


def test_fig09_autoplace29(benchmark, record, out_dir):
    def place_fresh():
        problem = build_demo_board()
        report = AutoPlacer(problem).run()
        return problem, report

    problem, report = benchmark.pedantic(place_fresh, rounds=3, iterations=1)

    markers = DesignRuleChecker(problem).rule_markers()
    satisfied = sum(1 for m in markers if m.satisfied)
    rows = [
        ["devices placed", report.placed_count],
        ["minimum-distance rules", len(problem.rules.min_distance)],
        ["rules evaluated (both placed)", len(markers)],
        ["rules satisfied", satisfied],
        ["violations (all kinds)", report.violations_after],
        ["functional groups", len(problem.groups)],
        ["runtime", f"{report.runtime_s:.2f} s"],
        ["total wirelength", f"{total_wirelength(problem) * 1e3:.0f} mm"],
    ]
    for group in problem.groups:
        rows.append(
            [f"group '{group.name}' spread", f"{group_spread(problem, group.name) * 1e3:.0f} mm"]
        )
    record("fig09_autoplace29", series_table(["metric", "value"], rows))

    svg = render_board_svg(problem, title="Fig. 9: 29 devices, 100 rules, 3 groups")
    (out_dir / "fig09_autoplace29.svg").write_text(svg)

    assert report.placed_count == 29
    assert report.violations_after == 0
    assert satisfied == len(markers)
    assert report.runtime_s < 30.0  # the paper's "seconds", with headroom
