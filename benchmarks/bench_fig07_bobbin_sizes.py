"""Figure 7 — coupling factor of two bobbin coils of different size.

Paper claim: bobbin coils follow the same distance law as capacitors, but
"the exact values for the coupling factors vary with the size of the
components and have to be recalculated for every component combination".
"""

import numpy as np

from repro.components import large_bobbin_choke, small_bobbin_choke
from repro.coupling import distance_sweep, fit_power_law
from repro.viz import series_table


def test_fig07_bobbin_sizes(benchmark, record):
    small = small_bobbin_choke()
    large = large_bobbin_choke()
    distances = np.geomspace(0.025, 0.1, 8)

    def sweep_all():
        return {
            "S-S": distance_sweep(small, small_bobbin_choke(), distances),
            "S-L": distance_sweep(small, large, distances),
            "L-L": distance_sweep(large, large_bobbin_choke(), distances),
        }

    results = benchmark(sweep_all)

    rows = [
        [f"{d * 1e3:.1f}"] + [f"{results[pair][i]:.5f}" for pair in ("S-S", "S-L", "L-L")]
        for i, d in enumerate(distances)
    ]
    table = series_table(["center distance mm", "k S-S", "k S-L", "k L-L"], rows)

    fits = {pair: fit_power_law(distances, ks) for pair, ks in results.items()}
    lines = [
        f"{pair}: k = {fit.c:.3e} d^-{fit.n:.2f}, PEMD(k=0.01) = "
        f"{fit.distance_for_coupling(0.01) * 1e3:.1f} mm"
        for pair, fit in fits.items()
    ]
    record("fig07_bobbin_sizes", table + "\n\n" + "\n".join(lines))

    # Shape: all pairs decay monotonically; larger coils couple more
    # strongly at a given distance; per-combination values genuinely differ.
    for ks in results.values():
        assert np.all(np.diff(ks) < 0.0)
    assert np.all(results["L-L"] > results["S-S"])
    assert np.all(results["S-L"] > results["S-S"])
    pemds = [fits[p].distance_for_coupling(0.01) for p in ("S-S", "S-L", "L-L")]
    assert pemds[0] < pemds[1] < pemds[2]
