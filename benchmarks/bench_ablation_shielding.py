"""Ablation — part selection: shielded versus unshielded power inductors.

A corollary of the paper's methodology: the PEMD rules depend on component
*construction*, so swapping an unshielded drum inductor for its shielded
twin buys placement area without touching the circuit.  This bench derives
the rules for both constructions and measures the achievable board size.
"""

import numpy as np

from repro.components import (
    FilmCapacitorX2,
    shielded_power_inductor,
    unshielded_power_inductor,
)
from repro.coupling import distance_sweep
from repro.geometry import Polygon2D
from repro.placement import (
    AutoPlacer,
    Board,
    PlacedComponent,
    PlacementError,
    PlacementProblem,
    placement_area,
)
from repro.rules import RuleSet, derive_pemd
from repro.viz import series_table


def _board_with(inductor_factory, n_inductors: int = 4) -> PlacementProblem:
    problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.06, 0.05))])
    parts = {}
    for i in range(n_inductors):
        ref = f"L{i + 1}"
        parts[ref] = inductor_factory()
        problem.add_component(PlacedComponent(ref, parts[ref]))
    problem.add_component(PlacedComponent("C1", FilmCapacitorX2()))
    refs = list(parts)
    rules = []
    cache = {}
    for i in range(len(refs)):
        for j in range(i + 1, len(refs)):
            key = "pair"
            if key not in cache:
                cache[key] = derive_pemd(parts[refs[i]], parts[refs[j]], 0.01)
            rules.append(cache[key].rule(refs[i], refs[j]))
    problem.rules = RuleSet(min_distance=rules)
    return problem


def test_ablation_shielding(benchmark, record):
    distances = np.geomspace(0.015, 0.06, 6)

    def sweep_both():
        return (
            distance_sweep(
                unshielded_power_inductor(), unshielded_power_inductor(), distances
            ),
            distance_sweep(
                shielded_power_inductor(), shielded_power_inductor(), distances
            ),
        )

    k_open, k_shielded = benchmark(sweep_both)

    rows = [
        [f"{d * 1e3:.0f}", f"{k_open[i]:.5f}", f"{k_shielded[i]:.5f}",
         f"{k_shielded[i] / k_open[i]:.3f}"]
        for i, d in enumerate(distances)
    ]
    table = series_table(["d mm", "k unshielded", "k shielded", "ratio"], rows)

    pemd_open = derive_pemd(
        unshielded_power_inductor(), unshielded_power_inductor(), 0.01
    ).pemd
    pemd_shielded = derive_pemd(
        shielded_power_inductor(), shielded_power_inductor(), 0.01
    ).pemd

    areas = {}
    for label, factory in (
        ("unshielded", unshielded_power_inductor),
        ("shielded", shielded_power_inductor),
    ):
        problem = _board_with(factory)
        try:
            AutoPlacer(problem).run()
            areas[label] = placement_area(problem)
        except PlacementError:
            areas[label] = float("nan")
    summary = (
        f"PEMD(k=0.01): unshielded {pemd_open * 1e3:.1f} mm, "
        f"shielded {pemd_shielded * 1e3:.1f} mm\n"
        f"4-inductor board bounding area: unshielded "
        f"{areas['unshielded'] * 1e4:.1f} cm^2, shielded "
        f"{areas['shielded'] * 1e4:.1f} cm^2"
    )
    record("ablation_shielding", f"{table}\n\n{summary}")

    assert np.all(k_shielded < 0.25 * k_open)
    assert pemd_shielded < 0.7 * pemd_open
    assert areas["shielded"] <= areas["unshielded"] * 1.05
