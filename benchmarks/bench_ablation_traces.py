"""Ablation — placement-dependent trace parasitics ("inductances of lines").

The paper's system simulation includes the parasitics of the connecting
structures; its Fig. 11 PEEC model covers "traces, vias and GND".  This
bench routes the buck layouts with the Manhattan router, converts route
lengths to trace inductances, and compares the spectra with and without
them — and shows that the optimised (more spread-out) layout pays a route-
length price for its coupling margins.
"""

from repro.routing import ManhattanRouter, route_inductance
from repro.viz import series_table


def test_ablation_traces(benchmark, design_flow, layout_comparison, record):
    rows = []
    spectra_effect = {}
    for name, evaluation in layout_comparison.items():
        problem = evaluation.problem
        router = ManhattanRouter(problem)
        routes = router.route_all()
        trace_l = design_flow.design.trace_inductances_from_layout(problem)
        total_len = sum(r.total_length() for r in routes.values())

        base = design_flow.design.emission_spectrum(evaluation.couplings)
        traced = design_flow.design.emission_spectrum(
            evaluation.couplings, trace_inductances=trace_l
        )
        effect = traced.mean_abs_error_db(base)
        spectra_effect[name] = effect
        rows.append(
            [
                name,
                f"{total_len * 1e3:.0f}",
                f"{sum(trace_l.values()) * 1e9:.0f}",
                f"{effect:.2f}",
            ]
        )

    def route_baseline():
        return ManhattanRouter(layout_comparison["baseline"].problem).route_all()

    routes = benchmark(route_baseline)
    per_length = {
        net: route_inductance(route) / max(route.total_length(), 1e-9)
        for net, route in routes.items()
        if not route.is_empty()
    }
    nh_per_mm = [v * 1e6 for v in per_length.values()]

    table = series_table(
        ["layout", "total copper mm", "power-net trace L nH", "spectrum effect dB"],
        rows,
    )
    summary = (
        f"trace inductance density: {min(nh_per_mm):.2f}-{max(nh_per_mm):.2f} nH/mm "
        "(rule of thumb ~0.7)"
    )
    record("ablation_traces", f"{table}\n\n{summary}")

    assert all(0.3 < v < 1.5 for v in nh_per_mm)
    assert all(effect > 0.01 for effect in spectra_effect.values())
    # The EMI-aware layout spreads parts => it routes more copper.
    base_len = float(rows[0][1]) if rows[0][0] == "baseline" else float(rows[1][1])
    opt_len = float(rows[1][1]) if rows[1][0] == "optimized" else float(rows[0][1])
    assert opt_len > base_len * 0.8  # spread layouts never come out much shorter
