"""Ablation — the optimal-rotation step of the automatic placer.

Step 1 of the paper's method minimises the total sum of minimum distances
by rotating components.  This bench runs the placer with and without that
step and reports the EMD budget, the achieved layout area and wirelength.
"""

from repro.placement import (
    AutoPlacer,
    PlacementError,
    RotationOptimizer,
    placement_area,
    total_wirelength,
)
from repro.viz import series_table


def test_ablation_rotation(benchmark, design_flow, record):
    def rotation_step():
        problem = design_flow.problem_with_rules()
        return RotationOptimizer(problem).optimize()

    plan = benchmark(rotation_step)

    results = {}
    for label, enabled in (("with rotation", True), ("without rotation", False)):
        problem = design_flow.problem_with_rules()
        try:
            report = AutoPlacer(problem, optimize_rotation=enabled).run()
            results[label] = {
                "violations": report.violations_after,
                "area_cm2": placement_area(problem) * 1e4,
                "wirelength_mm": total_wirelength(problem) * 1e3,
                "runtime_ms": report.runtime_s * 1e3,
            }
        except PlacementError as exc:
            results[label] = {"failed": str(exc)}

    rows = []
    for label, data in results.items():
        if "failed" in data:
            rows.append([label, "FAILED", "-", "-", "-"])
        else:
            rows.append(
                [
                    label,
                    data["violations"],
                    f"{data['area_cm2']:.1f}",
                    f"{data['wirelength_mm']:.0f}",
                    f"{data['runtime_ms']:.0f}",
                ]
            )
    table = series_table(
        ["variant", "violations", "area cm^2", "wirelength mm", "runtime ms"], rows
    )
    summary = (
        f"rotation step: EMD sum {plan.initial_emd_sum * 1e3:.1f} mm -> "
        f"{plan.final_emd_sum * 1e3:.1f} mm in {plan.passes} pass(es)"
    )
    record("ablation_rotation", f"{table}\n\n{summary}")

    assert plan.final_emd_sum <= plan.initial_emd_sum
    assert "failed" not in results["with rotation"]
    assert results["with rotation"]["violations"] == 0
