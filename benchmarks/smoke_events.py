"""Smoke test for the telemetry event stream and the flight recorder.

Runs the ``rules`` CLI on the demo board with ``--events-out`` (cold
cache, 2 workers, so the parallel executor actually fans out), then
checks the emitted JSONL end to end:

* every line parses and passes :func:`repro.obs.validate_event_dict`;
* sequence numbers are strictly monotonic and gap-free from 1;
* the log carries the expected shapes — a ``rules`` stage start/done
  pair, ``parallel.map_start`` / ``chunk_start`` / ``chunk_done`` worker
  events, and the resource sampler's ``proc.*`` gauges;
* ``repro-emi perf flight`` renders the run (report + events) into a
  non-trivial self-contained HTML artefact.

Invoked by ``make events-smoke`` (and CI); runs in a few seconds.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main
from repro.obs import validate_event_dict

BOARD = Path(__file__).resolve().parent.parent / "examples" / "boards" / "demo_board.txt"


def run_rules(board: Path, cache_dir: Path, events: Path, metrics: Path) -> None:
    argv = [
        "rules",
        str(board),
        "--max-pairs",
        "2",
        "--workers",
        "2",
        "--cache-dir",
        str(cache_dir),
        "--events-out",
        str(events),
        "--metrics-out",
        str(metrics),
    ]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    if code != 0:
        print(buffer.getvalue())
        raise SystemExit(f"rules exited with {code}")


def load_events(path: Path) -> list[dict]:
    events: list[dict] = []
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            raise SystemExit(f"{path}:{i}: blank line in event log")
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise SystemExit(f"{path}:{i}: not JSON: {exc}") from exc
        errors = validate_event_dict(data)
        if errors:
            raise SystemExit(f"{path}:{i}: invalid event: {'; '.join(errors)}")
        events.append(data)
    if not events:
        raise SystemExit(f"{path}: event log is empty")
    return events


def check_sequence(events: list[dict]) -> None:
    seqs = [event["seq"] for event in events]
    if seqs != list(range(1, len(seqs) + 1)):
        first_bad = next(
            (i for i, s in enumerate(seqs) if s != i + 1), len(seqs) - 1
        )
        raise SystemExit(
            f"seq not gap-free monotonic from 1: position {first_bad} "
            f"holds seq {seqs[first_bad]}"
        )


def check_shapes(events: list[dict]) -> None:
    names = {(e["kind"], e["name"]) for e in events}
    stage_statuses = {
        e["attrs"].get("status", "start")
        for e in events
        if e["kind"] == "stage" and e["name"] == "rules"
    }
    expectations = [
        ("start" in stage_statuses, "no 'rules' stage start event"),
        ("done" in stage_statuses, "no 'rules' stage done event"),
        (("log", "parallel.map_start") in names, "no parallel.map_start event"),
        (("log", "parallel.chunk_start") in names, "no worker chunk_start event"),
        (("log", "parallel.chunk_done") in names, "no worker chunk_done event"),
        (("gauge", "proc.rss_peak_bytes") in names, "no sampler RSS gauge"),
        (("gauge", "proc.cpu_pct") in names, "no sampler CPU gauge"),
        (any(k == "span_open" for k, _ in names), "no span_open events"),
        (any(k == "span_close" for k, _ in names), "no span_close events"),
        (any(k == "counter" for k, _ in names), "no counter events"),
    ]
    for ok, complaint in expectations:
        if not ok:
            raise SystemExit(complaint)
    starts = sum(
        1 for e in events if e["kind"] == "log" and e["name"] == "parallel.chunk_start"
    )
    dones = sum(
        1 for e in events if e["kind"] == "log" and e["name"] == "parallel.chunk_done"
    )
    if starts != dones:
        raise SystemExit(f"chunk_start ({starts}) != chunk_done ({dones})")


def run_flight(metrics: Path, events: Path, out: Path, store: Path) -> None:
    argv = [
        "perf",
        "flight",
        str(metrics),
        "--events",
        str(events),
        "--store",
        str(store),
        "-o",
        str(out),
    ]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    if code != 0:
        print(buffer.getvalue())
        raise SystemExit(f"perf flight exited with {code}")
    html = out.read_text(encoding="utf-8")
    for token in ("Span tree", "Event timeline", "<svg"):
        if token not in html:
            raise SystemExit(f"flight HTML is missing {token!r}")
    if len(html) < 5000:
        raise SystemExit(f"flight HTML suspiciously small ({len(html)} bytes)")


def main_smoke() -> int:
    board = Path(sys.argv[1]) if len(sys.argv) > 1 else BOARD
    with tempfile.TemporaryDirectory(prefix="repro-emi-events-") as tmp:
        root = Path(tmp)
        events = root / "events.jsonl"
        metrics = root / "metrics.json"

        run_rules(board, root / "coupling", events, metrics)
        parsed = load_events(events)
        check_sequence(parsed)
        check_shapes(parsed)
        print(f"event log OK: {len(parsed)} schema-valid events, seq gap-free")

        flight = root / "flight.html"
        run_flight(metrics, events, flight, root / "history.jsonl")
        print(f"flight recorder OK: {flight.stat().st_size} bytes of HTML")

    print("events-smoke OK: stream, schema, worker events, flight recorder")
    return 0


if __name__ == "__main__":
    raise SystemExit(main_smoke())
