"""Ablation — ground-plane shielding of component couplings.

The paper notes the minimum distances depend on "the presence of shielding
planes like ground planes".  This bench compares coupling factors with and
without a solid plane 0.5 mm below the parts, for both axis orientations
(the plane *shields* vertical-axis loops and *enhances* horizontal-axis
pairs — both effects follow from image theory and both move the derived
distance rules).
"""

import numpy as np

from repro.components import BobbinChoke, FilmCapacitorX2
from repro.coupling import distance_sweep
from repro.viz import series_table


def test_ablation_ground_plane(benchmark, record):
    distances = np.array([0.025, 0.035, 0.05, 0.07])
    cap = FilmCapacitorX2()
    vert_a = BobbinChoke(orientation="vertical")
    vert_b = BobbinChoke(orientation="vertical")

    def shielded_sweep():
        return distance_sweep(
            vert_a, vert_b, distances, ground_plane_z=-0.5e-3
        )

    k_vert_plane = benchmark(shielded_sweep)
    k_vert_free = distance_sweep(vert_a, vert_b, distances)
    k_cap_free = distance_sweep(cap, FilmCapacitorX2(), distances, direction_deg=-90.0)
    k_cap_plane = distance_sweep(
        cap, FilmCapacitorX2(), distances, direction_deg=-90.0, ground_plane_z=-0.5e-3
    )

    rows = [
        [
            f"{d * 1e3:.0f}",
            f"{k_vert_free[i]:.5f}",
            f"{k_vert_plane[i]:.5f}",
            f"{k_vert_plane[i] / k_vert_free[i]:.2f}",
            f"{k_cap_free[i]:.5f}",
            f"{k_cap_plane[i]:.5f}",
            f"{k_cap_plane[i] / k_cap_free[i]:.2f}",
        ]
        for i, d in enumerate(distances)
    ]
    table = series_table(
        [
            "d mm",
            "vert free",
            "vert plane",
            "ratio",
            "cap free",
            "cap plane",
            "ratio",
        ],
        rows,
    )
    record("ablation_ground_plane", table)

    # Vertical-axis loops are shielded by the plane...
    assert np.all(k_vert_plane < k_vert_free)
    # ... horizontal-axis (capacitor) pairs see a coupling *increase*.
    assert np.all(k_cap_plane > k_cap_free)
