"""Figures 1 & 2 — conducted noise of unfavourable vs optimised placement.

Paper claim: the same components, topology and placement area produce
severely different CISPR 25 conducted emissions depending only on passive-
component placement; the optimised layout reduces emissions by up to
~20 dB and clears the limit line the unfavourable one exceeds.
"""

import numpy as np

from repro.converters import layout_couplings, COUPLING_BRANCHES
from repro.emi import CISPR25_CLASS3_PEAK
from repro.viz import series_table, spectrum_plot


def test_fig01_02_placement_emissions(benchmark, design_flow, layout_comparison, record):
    baseline = layout_comparison["baseline"]
    optimized = layout_comparison["optimized"]

    # Benchmark kernel: the per-layout verification (field sim + spectrum).
    problem = baseline.problem

    def verify_layout():
        ks = layout_couplings(
            problem, refdes_of_interest=list(COUPLING_BRANCHES.values())
        )
        return design_flow.predict(ks)

    benchmark(verify_layout)

    b = baseline.spectrum
    o = optimized.spectrum
    improvement = b.dbuv() - o.dbuv()

    bands = [
        ("LW 150-300 kHz", 150e3, 300e3),
        ("MW 0.53-1.8 MHz", 530e3, 1.8e6),
        ("SW 5.9-6.2 MHz", 5.9e6, 6.2e6),
        ("CB 26-28 MHz", 26e6, 28e6),
        ("VHF 30-54 MHz", 30e6, 54e6),
        ("FM 87-108 MHz", 87e6, 108e6),
    ]
    rows = []
    for label, lo, hi in bands:
        limit = CISPR25_CLASS3_PEAK.level_at((lo + hi) / 2.0)
        rows.append(
            [
                label,
                round(b.max_dbuv_in(lo, hi), 1),
                round(o.max_dbuv_in(lo, hi), 1),
                round(b.max_dbuv_in(lo, hi) - o.max_dbuv_in(lo, hi), 1),
                limit if limit is not None else "-",
            ]
        )
    table = series_table(
        ["band", "unfavourable dBuV", "optimised dBuV", "delta dB", "limit"], rows
    )
    plot = spectrum_plot(
        {
            "unfavourable": design_flow.receiver_trace(b),
            "optimised": design_flow.receiver_trace(o),
        },
        limit=CISPR25_CLASS3_PEAK,
        height=18,
    )
    summary = (
        f"max per-line improvement: {float(np.max(improvement)):.1f} dB\n"
        f"baseline worst margin:  {baseline.worst_margin_db:+.1f} dB "
        f"(passes={baseline.passes_limits()})\n"
        f"optimised worst margin: {optimized.worst_margin_db:+.1f} dB "
        f"(passes={optimized.passes_limits()})"
    )
    record("fig01_02_placement_emissions", f"{table}\n\n{plot}\n\n{summary}")

    # Shape assertions mirroring the paper.
    assert float(np.max(improvement)) > 8.0
    assert optimized.worst_margin_db > baseline.worst_margin_db
    assert baseline.violations > 0 and optimized.violations == 0
