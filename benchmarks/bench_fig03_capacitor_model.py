"""Figure 3 — PEEC model of an SMD tantalum electrolytic capacitor.

The paper reduces the capacitor's X-ray-visible internal structure to a
simple field-generating current loop.  This benchmark reports the model the
library builds for the same package: discretisation size, loop area,
magnetic moment, and the geometric ESL (which must land in the known
few-nanohenry window for a 7343 case).
"""

from repro.components import TantalumCapacitorSMD
from repro.peec import loop_self_inductance
from repro.viz import series_table


def test_fig03_capacitor_model(benchmark, record):
    cap = TantalumCapacitorSMD()
    path = cap.current_path

    esl = benchmark(loop_self_inductance, path)

    moment = path.magnetic_moment()
    rows = [
        ["package", f"{cap.footprint_w * 1e3:.1f} x {cap.footprint_h * 1e3:.1f} mm"],
        ["filaments", len(path)],
        ["loop span", f"{cap.loop_span * 1e3:.1f} mm"],
        ["loop height", f"{cap.loop_height * 1e3:.1f} mm"],
        ["loop area", f"{cap.loop_span * cap.loop_height * 1e6:.1f} mm^2"],
        ["|moment| per A", f"{moment.norm() * 1e6:.2f} mm^2"],
        ["geometric ESL", f"{esl * 1e9:.2f} nH"],
        ["catalogue ESR", f"{cap.esr * 1e3:.0f} mOhm"],
    ]
    record("fig03_capacitor_model", series_table(["property", "value"], rows))

    # A 7343 tantalum has ~1.5-4 nH ESL; the geometric model must agree.
    assert 1e-9 < esl < 5e-9
    # The moment magnitude equals the loop area for a unit current.
    assert abs(moment.norm() - cap.loop_span * cap.loop_height) < 1e-9
