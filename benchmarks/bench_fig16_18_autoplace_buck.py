"""Figures 16 & 18 — automatic placement of the buck converter, with groups.

Paper claims: the automatic placement function produces a legal layout of
the buck converter in "less than 1 second" (Fig. 16), and the three
specified functional groups end up "placed in separate coherent areas"
(Fig. 18).
"""

from repro.placement import AutoPlacer, group_centroid, group_spread
from repro.viz import render_board_svg, series_table


def test_fig16_18_autoplace_buck(benchmark, design_flow, record, out_dir):
    def place_fresh():
        problem = design_flow.problem_with_rules()
        report = AutoPlacer(problem).run()
        return problem, report

    problem, report = benchmark.pedantic(place_fresh, rounds=3, iterations=1)

    rows = [
        ["components placed", report.placed_count],
        ["violations", report.violations_after],
        ["runtime", f"{report.runtime_s * 1e3:.0f} ms"],
        [
            "rotation step gain",
            f"{report.rotation_plan.improvement * 1e3:.1f} mm EMD sum"
            if report.rotation_plan
            else "-",
        ],
    ]
    centroids = {}
    for group in problem.groups:
        spread = group_spread(problem, group.name)
        centroid = group_centroid(problem, group.name)
        centroids[group.name] = centroid
        rows.append(
            [
                f"group '{group.name}'",
                f"spread {spread * 1e3:.0f} mm @ "
                f"({centroid.x * 1e3:.0f}, {centroid.y * 1e3:.0f}) mm",
            ]
        )
    record("fig16_18_autoplace_buck", series_table(["metric", "value"], rows))

    (out_dir / "fig16_18_buck_layout.svg").write_text(
        render_board_svg(problem, title="Figs. 16/18: buck auto-placement with groups")
    )

    assert report.placed_count == len(problem.components)
    assert report.violations_after == 0
    # Paper: under a second for this board size; allow CI headroom.
    assert report.runtime_s < 10.0
    # Fig. 18: the three groups occupy separate areas — centroids apart.
    names = list(centroids)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            assert centroids[names[i]].distance_to(centroids[names[j]]) > 5e-3
