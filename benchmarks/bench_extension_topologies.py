"""Extension — the flow generalises across converter topologies.

The paper demonstrates on one buck converter.  This bench applies the same
part library, EMI model structure and placement bridge to a boost
converter and compares the conducted signatures: the boost's continuous
input current (inductor at the input) is the textbook reason its DM line
noise sits far below the buck's chopped input — and placement-induced
couplings degrade both, so the methodology carries over.
"""

from repro.converters import (
    BOOST_COUPLING_BRANCHES,
    COUPLING_BRANCHES,
    BoostConverterDesign,
    BuckConverterDesign,
    layout_couplings,
)
from repro.placement import BaselinePlacer
from repro.viz import series_table


def test_extension_topologies(benchmark, record):
    buck = BuckConverterDesign()
    boost = BoostConverterDesign()

    spectrum_buck = buck.emission_spectrum()
    spectrum_boost = benchmark(boost.emission_spectrum)

    bands = [
        ("fundamental 250 kHz", 240e3, 260e3),
        ("MW 0.53-1.8 MHz", 530e3, 1.8e6),
        ("5-30 MHz", 5e6, 30e6),
        ("30-108 MHz", 30e6, 108e6),
    ]
    rows = []
    for label, lo, hi in bands:
        b = spectrum_buck.max_dbuv_in(lo, hi)
        s = spectrum_boost.max_dbuv_in(lo, hi)
        rows.append([label, f"{b:.1f}", f"{s:.1f}", f"{b - s:+.1f}"])
    table = series_table(
        ["band", "buck dBuV", "boost dBuV", "boost advantage dB"], rows
    )

    # Bad placement hurts the boost too.
    problem = boost.placement_problem()
    BaselinePlacer(problem).run()
    couplings = layout_couplings(
        problem, refdes_of_interest=list(BOOST_COUPLING_BRANCHES.values())
    )
    coupled = boost.emission_spectrum(couplings)
    degradation = coupled.max_dbuv_in(5e6, 108e6) - spectrum_boost.max_dbuv_in(
        5e6, 108e6
    )
    summary = (
        f"boost with EMI-blind placement couplings: +{degradation:.1f} dB "
        "at the worst line above 5 MHz — the paper's placement effect is "
        "topology independent.\n"
        f"(coupling surfaces: buck {len(COUPLING_BRANCHES)}, "
        f"boost {len(BOOST_COUPLING_BRANCHES)} branches)"
    )
    record("extension_topologies", f"{table}\n\n{summary}")

    assert spectrum_boost.max_dbuv_in(5e6, 30e6) < spectrum_buck.max_dbuv_in(
        5e6, 30e6
    )
    assert degradation > 6.0
