"""Figure 4 — magnetic field coupling between two bobbin-core inductors.

The paper shows FEM flux lines of two coupling bobbin chokes and argues the
PEEC + effective-permeability simplification stays within ~15 % for stray
fields.  This benchmark draws the |B| map of the same arrangement from the
segmented-ring models and reports the coupling factor plus the dipole
cross-check that stands in for the FEM reference.
"""

import numpy as np

from repro.components import large_bobbin_choke, small_bobbin_choke
from repro.coupling import dipole_coupling_factor, pair_coupling_factor
from repro.geometry import Placement2D
from repro.peec import field_magnitude_map
from repro.viz import heatmap


def test_fig04_bobbin_field(benchmark, record):
    a = small_bobbin_choke()
    b = large_bobbin_choke()
    pa = Placement2D.at(0.0, 0.0)
    pb = Placement2D.at(0.045, 0.0)
    path_a = a.placed_current_path(pa)
    path_b = b.placed_current_path(pb)

    xs = np.linspace(-0.02, 0.065, 48)
    ys = np.linspace(-0.025, 0.025, 20)

    mags = benchmark(field_magnitude_map, [path_a, path_b], xs, ys, 0.006)

    k_peec = pair_coupling_factor(a, pa, b, pb)
    k_dipole = dipole_coupling_factor(a, pa, b, pb)
    deviation = abs(k_peec - k_dipole) / abs(k_peec)

    text = (
        heatmap(mags)
        + f"\n\n|B| map at z = 6 mm, 1 A per winding (x: -20..65 mm, y: -25..25 mm)"
        + f"\nk (PEEC, segmented rings + mu_eff): {k_peec:+.5f}"
        + f"\nk (dipole cross-check):             {k_dipole:+.5f}"
        + f"\nrelative deviation: {deviation * 100:.1f} % "
        + "(paper accepts ~15 % for the simplified model)"
    )
    record("fig04_bobbin_field", text)

    assert abs(k_peec) > 1e-3  # chokes 45 mm apart couple measurably
    assert deviation < 0.25  # dipole agreement in the paper's error class
    # The field is strongest between/around the windings, not at the map edge.
    assert float(mags.max()) > 10.0 * float(mags[:, 0].max())
