"""Extension — two-board placement with partitioning (paper section 4).

The tool supports "1 or 2 rigid connected boards"; step 2 of the automatic
method partitions the circuit and "the resulting partitions are assigned
to board sides for placement".  This bench runs the full pipeline on a
two-board filter problem and reports cut nets, area balance, and the EMC
bonus: rules between cross-board pairs deactivate (rigid separation).
"""

from repro.components import (
    CeramicCapacitor,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    PowerMosfet,
    small_bobbin_choke,
)
from repro.geometry import Polygon2D
from repro.placement import (
    AutoPlacer,
    Board,
    DesignRuleChecker,
    Partitioner,
    PlacedComponent,
    PlacementProblem,
)
from repro.rules import MinDistanceRule, RuleSet
from repro.viz import series_table


def build_two_board_problem() -> PlacementProblem:
    boards = [
        Board(0, Polygon2D.rectangle(0, 0, 0.06, 0.05)),
        Board(1, Polygon2D.rectangle(0, 0, 0.06, 0.05)),
    ]
    problem = PlacementProblem(boards)
    catalogue = {
        "CX1": FilmCapacitorX2(),
        "CX2": FilmCapacitorX2(),
        "L1": small_bobbin_choke(),
        "L2": small_bobbin_choke(),
        "CE1": ElectrolyticCapacitor(),
        "CE2": ElectrolyticCapacitor(),
        "Q1": PowerMosfet(),
        "CC1": CeramicCapacitor(),
        "CC2": CeramicCapacitor(),
        "CC3": CeramicCapacitor(),
    }
    for ref, comp in catalogue.items():
        problem.add_component(PlacedComponent(ref, comp))
    problem.add_net("NI1", [("CX1", "1"), ("L1", "1"), ("CE1", "1")])
    problem.add_net("NI2", [("L1", "2"), ("Q1", "D"), ("CC1", "1")])
    problem.add_net("NO1", [("CX2", "1"), ("L2", "1"), ("CE2", "1")])
    problem.add_net("NO2", [("L2", "2"), ("CC2", "1"), ("CC3", "1")])
    problem.add_net("BRIDGE", [("Q1", "S"), ("L2", "1")])
    problem.define_group("input", ["CX1", "L1", "CE1"])
    problem.define_group("output", ["CX2", "L2", "CE2"])
    problem.rules = RuleSet(
        min_distance=[
            MinDistanceRule("CX1", "CX2", pemd=0.030),
            MinDistanceRule("CX1", "L1", pemd=0.024),
            MinDistanceRule("CX2", "L2", pemd=0.024),
            MinDistanceRule("L1", "L2", pemd=0.028),
            MinDistanceRule("CE1", "L1", pemd=0.018),
            MinDistanceRule("CE2", "L2", pemd=0.018),
        ]
    )
    return problem


def test_extension_two_board(benchmark, record):
    def full_pipeline():
        problem = build_two_board_problem()
        partition_result = Partitioner(problem).run()
        report = AutoPlacer(problem, partition=False).run()
        return problem, partition_result, report

    problem, partition_result, report = benchmark.pedantic(
        full_pipeline, rounds=3, iterations=1
    )

    cross_board_rules = [
        r
        for r in problem.rules.min_distance
        if problem.components[r.ref_a].board != problem.components[r.ref_b].board
    ]
    rows = [
        ["components", len(problem.components)],
        ["cut nets", partition_result.cut_nets],
        ["area imbalance", f"{partition_result.area_balance * 100:.1f}%"],
        ["board 0 parts", sum(1 for c in problem.components.values() if c.board == 0)],
        ["board 1 parts", sum(1 for c in problem.components.values() if c.board == 1)],
        ["rules deactivated by partition", len(cross_board_rules)],
        ["violations after placement", report.violations_after],
        ["runtime", f"{report.runtime_s * 1e3:.0f} ms"],
    ]
    record("extension_two_board", series_table(["metric", "value"], rows))

    assert report.violations_after == 0
    assert partition_result.area_balance <= 0.2 + 1e-9
    assert DesignRuleChecker(problem).is_legal()
    # Groups stay atomic across the partition.
    for group in problem.groups:
        sides = {problem.components[m].board for m in group.members}
        assert len(sides) == 1
