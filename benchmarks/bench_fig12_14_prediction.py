"""Figures 12-14 — EMI prediction with and without magnetic couplings.

Paper claims:
* Fig. 12: the measured conducted noise shows "no correlation to
  prediction … due to neglected magnetic couplings";
* Fig. 13: the coupling-free simulation underestimates the interference;
* Fig. 14: "prediction of EMI behaviour by including magnetic couplings,
  good correlation with measurements".

The bench measurement is synthesised per the substitution documented in
DESIGN.md (full coupled model + tolerance detuning + receiver effects).
"""

from repro.viz import series_table, spectrum_plot


def test_fig12_14_prediction(benchmark, design_flow, layout_comparison, record):
    evaluation = layout_comparison["baseline"]  # the original (Fig. 1) layout

    measurement = design_flow.measurement_for(evaluation)

    def predict_with_couplings():
        return design_flow.predict(evaluation.couplings)

    with_couplings = benchmark(predict_with_couplings)
    without_couplings = design_flow.predict()

    trace_meas = design_flow.receiver_trace(measurement)
    trace_with = design_flow.receiver_trace(with_couplings)
    trace_without = design_flow.receiver_trace(without_couplings)

    rows = [
        [
            "neglecting couplings (Fig. 13)",
            f"{trace_meas.mean_abs_error_db(trace_without):.1f}",
            f"{trace_meas.correlation_db(trace_without):.3f}",
        ],
        [
            "including couplings (Fig. 14)",
            f"{trace_meas.mean_abs_error_db(trace_with):.1f}",
            f"{trace_meas.correlation_db(trace_with):.3f}",
        ],
    ]
    table = series_table(["prediction variant", "MAE vs meas dB", "corr"], rows)
    plot = spectrum_plot(
        {
            "measurement": trace_meas,
            "sim with k": trace_with,
            "sim k=0": trace_without,
        },
        height=18,
    )
    record("fig12_14_prediction", f"{table}\n\n{plot}")

    mae_with = trace_meas.mean_abs_error_db(trace_with)
    mae_without = trace_meas.mean_abs_error_db(trace_without)
    assert mae_with < 3.0  # "good coincidence"
    assert mae_without > mae_with + 6.0  # "no correlation" in comparison
    assert trace_meas.correlation_db(trace_with) > 0.95
    # The coupling-free model *underestimates* (Fig. 13): the measurement
    # peaks above it in the upper bands.
    assert measurement.max_dbuv_in(5e6, 108e6) > without_couplings.max_dbuv_in(
        5e6, 108e6
    )
