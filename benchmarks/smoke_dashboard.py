"""Smoke test of the live service dashboard and its /stats feed.

Boots a real server on an ephemeral port, runs two quick board jobs to
populate the latency histograms, then checks the observability surface:

* ``GET /stats`` returns the JSON aggregation (counters, gauges,
  chartable histograms, cache hit ratio, recent job snapshots);
* the queue-wait and end-to-end latency histograms carry observations
  with non-zero percentile estimates;
* ``GET /dashboard`` is self-contained HTML (no external scripts,
  styles or fonts) whose embedded bootstrap snapshot carries the same
  live numbers;
* ``GET /metrics`` exposes the matching Prometheus histogram families.

Writes the rendered dashboard page and the last job's flight recorder
to ``benchmarks/out/`` (or ``argv[1]``) so CI can upload them as
workflow artifacts.  Invoked by ``make dashboard-smoke``; runs in a few
seconds.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.service import EmiService, ServiceConfig

BOARD = """EMIPLACE 1
TITLE dashboard smoke board
BOARD 0 GROUND 1
  OUTLINE 0,0 70,0 70,50 0,50
END
COMP CX1 TYPE FilmCapacitorX2 PN CX1-X2 SIZE 18x8x15
COMP LF1 TYPE BobbinChoke PN LF1-CH SIZE 12x10x12
COMP Q1 TYPE PowerMosfet PN Q1-DPAK SIZE 10x9x2.3
NET VIN CX1.1 LF1.1
NET VBUS LF1.2 Q1.D
RULE CLEAR * * 0.5
"""


def get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.read()


def submit_and_wait(base_url: str) -> dict:
    request = urllib.request.Request(
        base_url + "/jobs",
        data=json.dumps({"board": BOARD}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 202, response.status
        job_id = json.load(response)["id"]
    import time

    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        snap = json.loads(get(f"{base_url}/jobs/{job_id}"))
        if snap["state"] in ("succeeded", "failed", "cancelled"):
            assert snap["state"] == "succeeded", snap.get("error")
            return snap
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("benchmarks/out")
    out_dir.mkdir(parents=True, exist_ok=True)
    root = Path(tempfile.mkdtemp(prefix="repro-emi-dashboard-smoke-"))
    service = EmiService(
        ServiceConfig(
            port=0,
            pool_workers=2,
            data_dir=root / "data",
            cache_dir=None,
            job_timeout_s=60.0,
        )
    )
    base_url = service.start()
    print(f"[smoke] service up at {base_url}")
    try:
        snaps = [submit_and_wait(base_url) for _ in range(2)]
        print(f"[smoke] {len(snaps)} board jobs succeeded")

        stats = json.loads(get(base_url + "/stats"))
        for key in ("counters", "gauges", "histograms", "cache", "jobs", "jobs_total"):
            assert key in stats, f"/stats is missing {key!r}"
        assert stats["counters"]["service.jobs_completed"] >= 2
        assert stats["jobs_total"] >= 2
        for name in ("service.job_latency_seconds", "service.queue_wait_seconds"):
            hist = stats["histograms"][name]
            assert hist["count"] >= 2, (name, hist)
            assert hist["buckets"][-1][0] == "+Inf"
        assert stats["histograms"]["service.job_latency_seconds"]["p50"] > 0.0
        run_ids = {job["run_id"] for job in stats["jobs"]}
        assert len(run_ids) >= 2, "job snapshots in /stats miss distinct run ids"
        print("[smoke] /stats aggregation is complete and chartable")

        html = get(base_url + "/dashboard").decode()
        assert html.startswith("<!DOCTYPE html>")
        for marker in ('src="http', 'href="http', "@import", "cdn."):
            assert marker not in html, f"dashboard references the network: {marker}"
        start = html.index('<script id="bootstrap"')
        start = html.index(">", start) + 1
        bootstrap = json.loads(
            html[start : html.index("</script>", start)].replace("<\\/", "</")
        )
        latency = bootstrap["histograms"]["service.job_latency_seconds"]
        assert latency["p50"] > 0.0 and latency["p99"] > 0.0, latency
        print("[smoke] /dashboard is self-contained with live percentiles")

        metrics = get(base_url + "/metrics").decode()
        for needle in (
            "service_job_latency_seconds_bucket",
            "service_queue_wait_seconds_bucket",
            'le="+Inf"',
        ):
            assert needle in metrics, f"{needle} missing from /metrics"
        print("[smoke] /metrics exposes the histogram families")

        (out_dir / "dashboard.html").write_text(html, encoding="utf-8")
        flight = get(
            f"{base_url}/jobs/{snaps[-1]['id']}/artifacts/flight.html"
        )
        (out_dir / "flight.html").write_bytes(flight)
        print(f"[smoke] wrote {out_dir}/dashboard.html and {out_dir}/flight.html")
    finally:
        service.stop()
    print("[smoke] clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
