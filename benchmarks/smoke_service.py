"""Smoke test of the EMI design service: boot, one job, clean shutdown.

Boots a real server on an ephemeral port via the CLI's own code path
(``EmiService``, exactly what ``repro-emi serve`` runs), submits one
flow job over HTTP, follows it on the SSE stream, and verifies:

* the job reaches ``succeeded`` with ``progress == 1.0``;
* the SSE sequence numbers are gap-free and strictly monotonic;
* the artifact directory holds a parseable RunReport stamped ``ok``;
* one run-correlation id is minted and identical across the job's
  ``X-Repro-Run-Id`` header, its RunReport meta and every event in
  ``events.jsonl``;
* ``/metrics`` exports the service counters in Prometheus form,
  including the ``service_job_latency_seconds_bucket`` histogram family;
* ``GET /dashboard`` serves self-contained HTML whose bootstrap
  snapshot carries non-empty latency percentiles;
* shutdown drains cleanly — non-daemon workers joined, socket closed.

Invoked by ``make serve-smoke`` (and CI); runs in a few seconds.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.obs import RunReport
from repro.service import EmiService, ServiceConfig


def main() -> int:
    root = Path(tempfile.mkdtemp(prefix="repro-emi-serve-smoke-"))
    service = EmiService(
        ServiceConfig(
            port=0,
            pool_workers=2,
            data_dir=root / "data",
            cache_dir=root / "cache",
            job_timeout_s=120.0,
        )
    )
    base_url = service.start()
    print(f"[smoke] service up at {base_url}")
    try:
        payload = json.dumps(
            {"design": {"kind": "buck", "params": {}}, "options": {"workers": 1}}
        ).encode()
        request = urllib.request.Request(
            base_url + "/jobs",
            data=payload,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 202, response.status
            run_id = response.headers.get("X-Repro-Run-Id", "")
            snapshot = json.load(response)
            job_id = snapshot["id"]
        assert run_id, "202 response is missing the X-Repro-Run-Id header"
        assert snapshot["run_id"] == run_id, "header and snapshot run_id differ"
        print(f"[smoke] submitted {job_id} (run {run_id})")

        seqs: list[int] = []
        event_type = data = None
        final = None
        with urllib.request.urlopen(
            f"{base_url}/jobs/{job_id}/events", timeout=120
        ) as stream:
            for raw in stream:
                line = raw.decode().rstrip("\n")
                if line.startswith("id: "):
                    seqs.append(int(line[4:]))
                elif line.startswith("event: "):
                    event_type = line[7:]
                elif line.startswith("data: "):
                    data = line[6:]
                elif not line and event_type == "end":
                    final = json.loads(data)
                    break
        assert final is not None, "SSE stream ended without an end frame"
        assert final["state"] == "succeeded", final.get("error")
        assert final["progress"] == 1.0, final["progress"]
        assert seqs == list(range(1, len(seqs) + 1)), "SSE sequence has gaps"
        print(f"[smoke] job succeeded; {len(seqs)} SSE events, gap-free")

        with urllib.request.urlopen(
            f"{base_url}/jobs/{job_id}/artifacts/run_report.json"
        ) as response:
            report = RunReport.from_json(response.read().decode())
        assert report.meta["status"] == "ok"
        assert report.meta["job_id"] == job_id
        assert report.meta["run_id"] == run_id, "RunReport meta run_id differs"
        print("[smoke] run report artifact parses, stamped ok + run_id")

        with urllib.request.urlopen(
            f"{base_url}/jobs/{job_id}/artifacts/events.jsonl"
        ) as response:
            events = [
                json.loads(line)
                for line in response.read().decode().splitlines()
                if line.strip()
            ]
        assert events, "events.jsonl is empty"
        assert all(e.get("run_id") == run_id for e in events), (
            "events.jsonl carries a different run_id"
        )
        print(f"[smoke] all {len(events)} events correlate to run {run_id}")

        with urllib.request.urlopen(base_url + "/metrics") as response:
            metrics = response.read().decode()
        for needle in (
            'counter="service.jobs_completed"',
            'name="service.queue_depth"',
            'name="service.workers_total"',
            "service_job_latency_seconds_bucket",
            "service_queue_wait_seconds_count",
        ):
            assert needle in metrics, f"{needle} missing from /metrics"
        print("[smoke] prometheus export carries counters + histogram families")

        with urllib.request.urlopen(base_url + "/dashboard") as response:
            html = response.read().decode()
        assert html.startswith("<!DOCTYPE html>")
        for marker in ('src="http', 'href="http', "@import", "cdn."):
            assert marker not in html, f"dashboard is not self-contained: {marker}"
        start = html.index('<script id="bootstrap"')
        start = html.index(">", start) + 1
        bootstrap = json.loads(
            html[start : html.index("</script>", start)].replace("<\\/", "</")
        )
        latency = bootstrap["histograms"]["service.job_latency_seconds"]
        assert latency["p50"] > 0.0 and latency["p99"] > 0.0, latency
        print("[smoke] dashboard HTML is self-contained with live percentiles")
    finally:
        service.stop()
    print("[smoke] clean shutdown: workers joined, socket closed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
