"""Figure 6 — placement rules for two capacitors: rotation decouples.

Paper claim: parallel equivalent current paths demand the maximum
distance; rotating one capacitor by 90 degrees puts the paths in
perpendicular position and allows a (much) reduced distance.
"""

import numpy as np

from repro.components import FilmCapacitorX2
from repro.coupling import rotation_sweep
from repro.viz import series_table


def test_fig06_orientation_rules(benchmark, record):
    cap_a = FilmCapacitorX2()
    cap_b = FilmCapacitorX2()
    angles = np.array([0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0])
    distance = 0.025

    couplings = benchmark(rotation_sweep, cap_a, cap_b, distance, angles)

    k0 = abs(couplings[0])
    rows = [
        [
            f"{ang:.0f}",
            f"{k:+.5f}",
            f"{abs(k) / k0:.3f}" if k0 > 0 else "-",
            f"{abs(np.cos(np.radians(ang))):.3f}",
        ]
        for ang, k in zip(angles, couplings, strict=True)
    ]
    table = series_table(
        ["rotation deg", "k", "|k|/|k(0)|", "cos(angle) bound"], rows
    )
    summary = (
        f"k at 0 deg (parallel):      {couplings[0]:+.5f}\n"
        f"k at 90 deg (orthogonal):   {couplings[-1]:+.2e}\n"
        "on-axis orthogonality eliminates the coupling entirely; the cosine\n"
        "is a conservative upper bound for intermediate angles"
    )
    record("fig06_orientation_rules", f"{table}\n\n{summary}")

    # Shape: monotone |k| decay, cosine bound holds, 90 deg decouples.
    mags = np.abs(couplings)
    assert np.all(np.diff(mags) <= 1e-9)
    for ang, k in zip(angles, couplings, strict=True):
        assert abs(k) <= k0 * abs(np.cos(np.radians(ang))) + 1e-4
    assert mags[-1] < 1e-6
