"""Figure 10 — the EMD = PEMD * cos(alpha) law between two chokes.

Paper claim: the minimum distance defined at parallel magnetic axes
shrinks proportional to the cosine of the angle between the axes; at
90 degrees the parts may touch.  This benchmark tabulates the law and
verifies it against the placement engine's EMD evaluation for two
horizontally mounted chokes.
"""

import math

import numpy as np

from repro.components import small_bobbin_choke
from repro.geometry import Placement2D
from repro.rules import effective_min_distance, emd_for_pair
from repro.viz import series_table


def test_fig10_emd_rotation(benchmark, record):
    choke_a = small_bobbin_choke()
    choke_b = small_bobbin_choke()
    pemd = 0.024  # parallel-axes minimum distance between the two chokes
    angles = np.array([0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0])

    def evaluate_emds():
        return [
            emd_for_pair(
                choke_a,
                Placement2D.at(0.0, 0.0, 0.0),
                choke_b,
                Placement2D.at(0.05, 0.0, float(ang)),
                pemd,
            )
            for ang in angles
        ]

    emds = benchmark(evaluate_emds)

    rows = [
        [
            f"{ang:.0f}",
            f"{pemd * abs(math.cos(math.radians(ang))) * 1e3:.2f}",
            f"{emd * 1e3:.2f}",
        ]
        for ang, emd in zip(angles, emds, strict=True)
    ]
    table = series_table(
        ["alpha deg", "PEMD*cos(alpha) mm", "engine EMD mm"], rows
    )
    record(
        "fig10_emd_rotation",
        table
        + f"\n\nPEMD = {pemd * 1e3:.1f} mm; at 90 deg the engine EMD reaches "
        + f"{emds[-1] * 1e3:.3f} mm — components may be placed adjacently.",
    )

    # The engine must reproduce the paper's law exactly for this pair
    # (in-plane axes, no residual).
    for ang, emd in zip(angles, emds, strict=True):
        expected = effective_min_distance(pemd, math.radians(float(ang)))
        assert math.isclose(emd, expected, rel_tol=1e-6, abs_tol=1e-9)
    assert math.isclose(emds[0], pemd, rel_tol=1e-9)
    assert emds[-1] < 1e-6
