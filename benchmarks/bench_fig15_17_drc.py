"""Figures 15 & 17 — rule-marker visualisation: red circles, then green.

Paper claims: loading the original buck layout into the tool immediately
shows "the magnetic coupling violating the design rules (indicated by red
circles) and which components are the sources of violations" (Fig. 15);
after automatic placement "all specified minimum distance rules are met
(indicated by green circles)" (Fig. 17).
"""

from repro.placement import DesignRuleChecker
from repro.viz import render_board_svg, series_table


def test_fig15_17_drc(benchmark, layout_comparison, record, out_dir):
    baseline = layout_comparison["baseline"].problem
    optimized = layout_comparison["optimized"].problem

    checker = DesignRuleChecker(baseline)
    violations = benchmark(checker.check_all)

    markers_before = checker.rule_markers()
    markers_after = DesignRuleChecker(optimized).rule_markers()
    red_before = [m for m in markers_before if not m.satisfied]
    red_after = [m for m in markers_after if not m.satisfied]

    rows = []
    for marker in markers_before:
        rows.append(
            [
                f"{marker.ref_a}-{marker.ref_b}",
                marker.color,
                next(
                    (m.color for m in markers_after
                     if (m.ref_a, m.ref_b) == (marker.ref_a, marker.ref_b)),
                    "?",
                ),
            ]
        )
    table = series_table(["rule pair", "original layout", "auto layout"], rows)
    offenders = sorted({ref for m in red_before for ref in (m.ref_a, m.ref_b)})
    summary = (
        f"original layout: {len(red_before)} red circle(s); "
        f"violation sources: {', '.join(offenders)}\n"
        f"auto layout: {len(red_after)} red circle(s)\n"
        f"all violation records: {len(violations)}"
    )
    record("fig15_17_drc", f"{table}\n\n{summary}")

    (out_dir / "fig15_original_layout.svg").write_text(
        render_board_svg(baseline, title="Fig. 15: original layout (red = violated)")
    )
    (out_dir / "fig17_auto_layout.svg").write_text(
        render_board_svg(optimized, title="Fig. 17: automatic layout (all green)")
    )

    assert red_before  # Fig. 15: violations visible
    assert not red_after  # Fig. 17: every rule met
