"""Scaling — placer runtime versus problem size, and the coupling engine.

The paper: "It is well known that layout problems are NP hard concerning
their algorithmic complexity … it is necessary to decompose the placement
problems in sub-tasks and to solve them with efficient heuristic methods."
This bench measures the heuristic's empirical scaling: components from 8
to 48 with a proportional rule count, wall-clock and legality per size.

A second scenario measures the coupling hot path itself: the all-pairs
coupling matrix of the largest board, serial-and-cold versus four workers
with a warm persistent cache (the numbers quoted in docs/PERFORMANCE.md).
"""

import itertools
import math
import time

from repro.components import (
    CeramicCapacitor,
    FilmCapacitorX2,
    small_bobbin_choke,
)
from repro.coupling import CouplingDatabase
from repro.geometry import Placement2D, Polygon2D
from repro.obs import get_tracer
from repro.parallel import CouplingExecutor, PersistentCouplingCache
from repro.placement import AutoPlacer, Board, PlacedComponent, PlacementProblem
from repro.rules import MinDistanceRule, RuleSet
from repro.viz import series_table


def build_problem(n_components: int) -> PlacementProblem:
    # Board area scales with the part count so density stays constant.
    side = 0.03 * math.sqrt(n_components)
    problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, side, side))])
    refs = []
    factories = [FilmCapacitorX2, small_bobbin_choke, CeramicCapacitor]
    for i in range(n_components):
        ref = f"U{i}"
        refs.append(ref)
        problem.add_component(PlacedComponent(ref, factories[i % 3]()))
    # Rules between consecutive field-relevant parts (~n rules) plus a
    # sparse set of cross rules (~n/2).
    rules = []
    for i in range(n_components - 1):
        rules.append(MinDistanceRule(refs[i], refs[i + 1], pemd=0.018))
    for i, j in itertools.islice(
        ((a, a + 5) for a in range(0, n_components - 5, 2)), n_components // 2
    ):
        rules.append(MinDistanceRule(refs[i], refs[j], pemd=0.022))
    problem.rules = RuleSet(min_distance=rules)
    for i in range(0, n_components - 1, 2):
        problem.add_net(f"N{i}", [(refs[i], "1"), (refs[i + 1], "1")])
    return problem


def test_scaling_placer(benchmark, record):
    sizes = (8, 16, 24, 32, 48)
    rows = []
    timings = {}
    tracer = get_tracer()
    for n in sizes:
        problem = build_problem(n)
        t0 = time.perf_counter()
        report = AutoPlacer(problem).run()
        elapsed = time.perf_counter() - t0
        timings[n] = elapsed
        # Per-size scalars for the perf-history trajectory (BENCH json +
        # perf-history.jsonl), so `perf history --stats` can chart growth.
        tracer.gauge(f"placer.runtime_s.n{n:02d}", elapsed)
        rows.append(
            [
                n,
                len(problem.rules.min_distance),
                f"{elapsed * 1e3:.0f}",
                report.violations_after,
            ]
        )

    def place_16():
        AutoPlacer(build_problem(16)).run()

    benchmark.pedantic(place_16, rounds=3, iterations=1)

    table = series_table(
        ["components", "min-dist rules", "runtime ms", "violations"], rows
    )
    growth = timings[48] / timings[8]
    record(
        "scaling_placer",
        f"{table}\n\nruntime growth 8 -> 48 components: {growth:.1f}x "
        f"(size grew 6x; the heuristic stays usably polynomial)",
    )

    assert all(int(r[3]) == 0 for r in rows)
    # Far from exponential: 6x the parts may cost at most ~40x the time
    # (the candidate set and the pair checks both grow with n).
    assert growth < 40.0


def placed_layout(n_components: int) -> list[tuple[str, object, Placement2D]]:
    """A deterministic placed board with few repeated relative poses.

    Irregular pitch and per-part rotation keep the in-memory pose dedup
    from short-circuiting the cold run, so the scenario times genuine
    field solves.
    """
    factories = [FilmCapacitorX2, small_bobbin_choke, CeramicCapacitor]
    cols = math.ceil(math.sqrt(n_components))
    placed: list[tuple[str, object, Placement2D]] = []
    for i in range(n_components):
        row, col = divmod(i, cols)
        x = col * 0.021 + 0.0007 * ((i * 7) % 5)
        y = row * 0.019 + 0.0005 * ((i * 11) % 7)
        placement = Placement2D.at(x, y, (i * 37.0) % 360.0)
        placed.append((f"U{i}", factories[i % 3](), placement))
    return placed


def test_scaling_coupling_engine(benchmark, record, tmp_path):
    """All-pairs couplings: serial cold vs. 4 workers over a warm cache.

    The acceptance bar for the parallel/persistent engine: on the largest
    placer scenario the warm cached run must be at least 3x faster than
    the serial cold run, and every coupling coefficient must match the
    serial ground truth exactly (the executor re-runs the same pure
    function, so "within 1e-12" is met with equality).
    """
    n = 48
    cache_dir = tmp_path / "coupling-cache"

    t0 = time.perf_counter()
    serial = CouplingDatabase().pairwise_couplings(placed_layout(n))
    t_serial = time.perf_counter() - t0

    executor = CouplingExecutor(workers=4)
    try:
        # Cold parallel run primes the persistent store.
        priming = CouplingDatabase(
            persistent=PersistentCouplingCache(cache_dir=cache_dir)
        )
        t0 = time.perf_counter()
        priming.pairwise_couplings(placed_layout(n), executor=executor)
        t_parallel_cold = time.perf_counter() - t0

        warm = CouplingDatabase(
            persistent=PersistentCouplingCache(cache_dir=cache_dir)
        )
        t0 = time.perf_counter()
        cached = warm.pairwise_couplings(placed_layout(n), executor=executor)
        t_warm = time.perf_counter() - t0

        def warm_lookup():
            db = CouplingDatabase(
                persistent=PersistentCouplingCache(cache_dir=cache_dir)
            )
            db.pairwise_couplings(placed_layout(n), executor=executor)

        benchmark.pedantic(warm_lookup, rounds=3, iterations=1)
    finally:
        executor.close()

    speedup = t_serial / t_warm
    tracer = get_tracer()
    tracer.gauge("coupling.serial_cold_s", t_serial)
    tracer.gauge("coupling.parallel_cold_s", t_parallel_cold)
    tracer.gauge("coupling.parallel_warm_s", t_warm)
    tracer.gauge("coupling.warm_speedup", speedup)
    rows = [
        ["serial, cold", f"{t_serial * 1e3:.0f}", len(serial), 0],
        [
            "4 workers, cold (prime)",
            f"{t_parallel_cold * 1e3:.0f}",
            priming.stats.misses,
            priming.stats.persistent_hits,
        ],
        [
            "4 workers, warm cache",
            f"{t_warm * 1e3:.0f}",
            warm.stats.misses,
            warm.stats.persistent_hits,
        ],
    ]
    table = series_table(["mode", "wall ms", "field solves", "disk hits"], rows)
    record(
        "scaling_coupling_engine",
        f"{n} components, {len(serial)} pairs\n{table}\n\n"
        f"warm cached speedup over serial cold: {speedup:.1f}x "
        "(the cache, not the fan-out, is the dominant lever at ~1 ms/solve)",
    )

    # Bitwise identity between the serial ground truth and the warm run.
    assert list(serial) == list(cached)
    assert all(serial[p].k == cached[p].k for p in serial)
    assert warm.stats.misses == 0
    assert warm.stats.persistent_hits == len(serial)
    assert speedup >= 3.0
