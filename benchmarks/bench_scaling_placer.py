"""Scaling — placer runtime versus problem size.

The paper: "It is well known that layout problems are NP hard concerning
their algorithmic complexity … it is necessary to decompose the placement
problems in sub-tasks and to solve them with efficient heuristic methods."
This bench measures the heuristic's empirical scaling: components from 8
to 48 with a proportional rule count, wall-clock and legality per size.
"""

import itertools
import time

from repro.components import (
    CeramicCapacitor,
    FilmCapacitorX2,
    small_bobbin_choke,
)
from repro.geometry import Polygon2D
from repro.placement import AutoPlacer, Board, PlacedComponent, PlacementProblem
from repro.rules import MinDistanceRule, RuleSet
from repro.viz import series_table


def build_problem(n_components: int) -> PlacementProblem:
    # Board area scales with the part count so density stays constant.
    import math

    side = 0.03 * math.sqrt(n_components)
    problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, side, side))])
    refs = []
    factories = [FilmCapacitorX2, small_bobbin_choke, CeramicCapacitor]
    for i in range(n_components):
        ref = f"U{i}"
        refs.append(ref)
        problem.add_component(PlacedComponent(ref, factories[i % 3]()))
    # Rules between consecutive field-relevant parts (~n rules) plus a
    # sparse set of cross rules (~n/2).
    rules = []
    for i in range(n_components - 1):
        rules.append(MinDistanceRule(refs[i], refs[i + 1], pemd=0.018))
    for i, j in itertools.islice(
        ((a, a + 5) for a in range(0, n_components - 5, 2)), n_components // 2
    ):
        rules.append(MinDistanceRule(refs[i], refs[j], pemd=0.022))
    problem.rules = RuleSet(min_distance=rules)
    for i in range(0, n_components - 1, 2):
        problem.add_net(f"N{i}", [(refs[i], "1"), (refs[i + 1], "1")])
    return problem


def test_scaling_placer(benchmark, record):
    sizes = (8, 16, 24, 32, 48)
    rows = []
    timings = {}
    for n in sizes:
        problem = build_problem(n)
        t0 = time.perf_counter()
        report = AutoPlacer(problem).run()
        elapsed = time.perf_counter() - t0
        timings[n] = elapsed
        rows.append(
            [
                n,
                len(problem.rules.min_distance),
                f"{elapsed * 1e3:.0f}",
                report.violations_after,
            ]
        )

    def place_16():
        AutoPlacer(build_problem(16)).run()

    benchmark.pedantic(place_16, rounds=3, iterations=1)

    table = series_table(
        ["components", "min-dist rules", "runtime ms", "violations"], rows
    )
    growth = timings[48] / timings[8]
    record(
        "scaling_placer",
        f"{table}\n\nruntime growth 8 -> 48 components: {growth:.1f}x "
        f"(size grew 6x; the heuristic stays usably polynomial)",
    )

    assert all(int(r[3]) == 0 for r in rows)
    # Far from exponential: 6x the parts may cost at most ~40x the time
    # (the candidate set and the pair checks both grow with n).
    assert growth < 40.0
