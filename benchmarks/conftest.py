"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark regenerates the data behind one figure of the paper and
writes a text artefact to ``benchmarks/out/`` so EXPERIMENTS.md can quote
the exact series; heavy pipeline artefacts are computed once per session.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.converters import BuckConverterDesign
from repro.core import EmiDesignFlow

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def record(out_dir):
    """Write an artefact file and echo it to the terminal."""

    def _record(name: str, text: str) -> None:
        path = out_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def buck_design() -> BuckConverterDesign:
    return BuckConverterDesign()


@pytest.fixture(scope="session")
def design_flow(buck_design) -> EmiDesignFlow:
    flow = EmiDesignFlow(buck_design)
    flow.derive_rules()
    return flow


@pytest.fixture(scope="session")
def layout_comparison(design_flow):
    return design_flow.compare_layouts()
