"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark regenerates the data behind one figure of the paper and
writes a text artefact to ``benchmarks/out/`` so EXPERIMENTS.md can quote
the exact series; heavy pipeline artefacts are computed once per session.

Every benchmark additionally runs under a fresh tracer and drops a
``BENCH_<module>__<test>.json`` run report next to its text artefact,
*and* appends the same report to the perf-history store
(``benchmarks/out/perf-history.jsonl``) — the repository's committed
longitudinal perf trajectory, queryable with ``repro-emi perf history``
and gateable with ``repro-emi perf check`` (see docs/OBSERVABILITY.md).
Session-scoped fixtures are computed during the first benchmark that
requests them, so their spans land in that benchmark's report.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import obs
from repro.converters import BuckConverterDesign
from repro.core import EmiDesignFlow

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def record(out_dir):
    """Write an artefact file and echo it to the terminal."""

    def _record(name: str, text: str) -> None:
        path = out_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _record


@pytest.fixture(autouse=True)
def bench_metrics(request, out_dir):
    """Trace every benchmark; write ``BENCH_*.json`` and append to history."""
    module = Path(str(request.node.fspath)).stem
    test = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    tracer = obs.enable(meta={"benchmark": f"{module}::{request.node.name}"})
    try:
        yield
    finally:
        obs.disable()
        report = tracer.report()
        (out_dir / f"BENCH_{module}__{test}.json").write_text(report.to_json() + "\n")
        obs.PerfHistory(out_dir / "perf-history.jsonl").append(report)


@pytest.fixture(scope="session")
def buck_design() -> BuckConverterDesign:
    return BuckConverterDesign()


@pytest.fixture(scope="session")
def design_flow(buck_design) -> EmiDesignFlow:
    flow = EmiDesignFlow(buck_design)
    flow.derive_rules()
    return flow


@pytest.fixture(scope="session")
def layout_comparison(design_flow):
    return design_flow.compare_layouts()
