"""Ablation — sensitivity pruning versus the full coupling matrix.

The paper's complexity lever: "only the relevant [couplings] have to be
simulated in the field simulating environment".  This bench measures what
the pruning costs in accuracy and what it saves in field simulations on
the baseline buck layout.
"""

import numpy as np

from repro.converters import COUPLING_BRANCHES
from repro.viz import series_table


def test_ablation_sensitivity_pruning(benchmark, design_flow, layout_comparison, record):
    evaluation = layout_comparison["baseline"]
    all_couplings = evaluation.couplings

    ranking = benchmark(design_flow.run_sensitivity)

    full_spectrum = design_flow.predict(all_couplings)
    n_pairs_total = len(ranking)

    rows = []
    for threshold in (0.0, 1.0, 3.0, 6.0, 10.0, 20.0):
        relevant = {e.pair() for e in ranking if e.impact_db >= threshold}
        owner = COUPLING_BRANCHES
        relevant_refs = {
            tuple(sorted((owner[a], owner[b]))) for a, b in relevant
        }
        pruned = {
            pair: k for pair, k in all_couplings.items() if pair in relevant_refs
        }
        spectrum = design_flow.predict(pruned)
        err = float(np.max(np.abs(spectrum.dbuv() - full_spectrum.dbuv())))
        rows.append(
            [
                f"{threshold:.0f}",
                len(relevant),
                f"{100.0 * (1.0 - len(relevant) / n_pairs_total):.0f}%",
                len(pruned),
                f"{err:.2f}",
            ]
        )
    table = series_table(
        [
            "threshold dB",
            "pairs kept",
            "field sims saved",
            "couplings applied",
            "max spectrum error dB",
        ],
        rows,
    )
    record("ablation_sensitivity", table)

    # At the default 3 dB threshold the pruned model must stay within a few
    # dB of the full one while saving most field simulations.
    default_row = rows[2]
    assert float(default_row[4]) < 6.0
    assert int(default_row[1]) < n_pairs_total // 2
