"""Ablation — the effective-permeability correction for ferrite cores.

The paper adapts air-core PEEC inductances "by the effective permeability
for the influence of the ferrite" and accepts ~15 % error from neglecting
field-line redirection.  This bench quantifies what the correction does to
a choke's inductance and to choke-involving couplings, versus a plain
air-core evaluation.
"""

import numpy as np

from repro.components import BobbinChoke, FilmCapacitorX2
from repro.coupling import component_coupling
from repro.geometry import Placement2D
from repro.peec import AIR_CORE
from repro.viz import series_table


def test_ablation_effective_mu(benchmark, record):
    ferrite = BobbinChoke()
    air = BobbinChoke(core=AIR_CORE)
    cap = FilmCapacitorX2()
    pa = Placement2D.at(0.0, 0.0)

    def coupled_at(distance: float, choke: BobbinChoke) -> float:
        return component_coupling(
            cap, pa, choke, Placement2D.at(distance, 0.0, -90.0)
        ).k

    benchmark(coupled_at, 0.03, ferrite)

    distances = np.array([0.025, 0.035, 0.05, 0.07])
    rows = []
    for d in distances:
        k_ferrite = coupled_at(float(d), ferrite)
        k_air = coupled_at(float(d), air)
        rows.append(
            [
                f"{d * 1e3:.0f}",
                f"{k_ferrite:+.5f}",
                f"{k_air:+.5f}",
                f"{abs(k_ferrite / k_air):.3f}" if k_air != 0 else "-",
            ]
        )
    table = series_table(
        ["distance mm", "k with mu_eff", "k air core", "ratio"], rows
    )
    summary = (
        f"choke self-inductance: air {air.self_inductance * 1e6:.2f} uH -> "
        f"ferrite {ferrite.self_inductance * 1e6:.2f} uH "
        f"(mu_eff = {ferrite.mu_eff:.2f})\n"
        "the correction scales L by mu_eff and M by sqrt(mu_eff * stray);\n"
        "the coupling factor changes by sqrt(stray_fraction) only — the\n"
        "paper's stray-field argument for why the simplification is viable."
    )
    record("ablation_effective_mu", f"{table}\n\n{summary}")

    assert ferrite.self_inductance > 2.0 * air.self_inductance
    # Coupling-factor ratio stays moderate (the stray-field argument).
    ratios = [abs(float(r[3])) for r in rows]
    assert all(0.5 < r < 1.5 for r in ratios)
