"""Ablation — capacitive coupling at higher frequencies.

The paper, introduction: magnetic coupling dominates the considered range,
"nevertheless capacitive coupling gain more influence at higher
frequencies".  This bench quantifies that statement on the baseline buck
layout: body-to-body mutual capacitances (sub-picofarad) are added to the
circuit and the per-band spectrum change is reported.
"""

import numpy as np

from repro.converters import CAPACITIVE_NODES
from repro.coupling import capacitive_layout_couplings
from repro.viz import series_table


def test_ablation_capacitive(benchmark, design_flow, layout_comparison, record):
    evaluation = layout_comparison["baseline"]
    problem = evaluation.problem

    capacitances = benchmark(
        capacitive_layout_couplings, problem, list(CAPACITIVE_NODES)
    )

    clean = design_flow.design.emission_spectrum()
    clean_cap = design_flow.design.emission_spectrum(capacitive=capacitances)
    magnetic_only = design_flow.design.emission_spectrum(evaluation.couplings)
    both = design_flow.design.emission_spectrum(
        evaluation.couplings, capacitive=capacitances
    )
    delta_clean = np.abs(clean_cap.dbuv() - clean.dbuv())
    delta_on_top = np.abs(both.dbuv() - magnetic_only.dbuv())
    freqs = clean.freqs

    bands = [
        ("0.15-1 MHz", 150e3, 1e6),
        ("1-10 MHz", 1e6, 10e6),
        ("10-30 MHz", 10e6, 30e6),
        ("30-108 MHz", 30e6, 108e6),
    ]
    rows = []
    for label, lo, hi in bands:
        mask = (freqs >= lo) & (freqs <= hi)
        rows.append(
            [
                label,
                f"{float(np.max(delta_clean[mask])):.2f}",
                f"{float(np.max(delta_on_top[mask])):.2f}",
            ]
        )
    table = series_table(
        ["band", "vs clean model dB", "on top of magnetic k dB"], rows
    )
    strongest = max(capacitances.items(), key=lambda kv: kv[1])
    summary = (
        f"{len(capacitances)} capacitive pairs, strongest "
        f"{strongest[0][0]}-{strongest[0][1]} = {strongest[1] * 1e12:.2f} pF\n"
        "against the clean model the E-field paths dominate above 30 MHz; once\n"
        "the (stronger) magnetic couplings of the bad layout are present they\n"
        "mask most of it — consistent with the paper treating the magnetic\n"
        "mechanism as primary in this range."
    )
    record("ablation_capacitive", f"{table}\n\n{summary}")

    low = float(np.max(delta_clean[freqs < 5e6]))
    high = float(np.max(delta_clean[freqs > 30e6]))
    # The paper's statement, quantified: negligible low, dominant high.
    assert low < 2.0
    assert high > low + 6.0
    assert all(v < 5e-12 for v in capacitances.values())  # sub-pF physics
