"""Figure 11 — the buck converter test object and its PEEC model.

The paper shows the demonstrator board and the corresponding PEEC model of
"used components, traces, vias and GND".  This benchmark inventories the
reproduction's model of the same system: every part's field model size,
the circuit element counts, and the end-to-end model-build time.
"""

from repro.converters import COUPLING_BRANCHES
from repro.viz import series_table


def test_fig11_buck_model(benchmark, buck_design, record):
    def build_model():
        circuit, meas = buck_design.emi_circuit()
        problem = buck_design.placement_problem()
        return circuit, meas, problem

    circuit, meas, problem = benchmark(build_model)

    parts = buck_design.parts()
    rows = []
    total_filaments = 0
    for refdes, comp in parts.items():
        n = len(comp.current_path)
        total_filaments += n
        rows.append(
            [
                refdes,
                comp.part_number,
                n,
                f"{comp.self_inductance * 1e9:.1f}",
                f"{comp.mu_eff:.1f}",
                "yes" if refdes in COUPLING_BRANCHES.values() else "-",
            ]
        )
    table = series_table(
        ["refdes", "part", "filaments", "L_self nH", "mu_eff", "EMI branch"], rows
    )
    stats = circuit.stats()
    summary = (
        f"total filaments in the board field model: {total_filaments}\n"
        f"circuit: {stats['nodes']} nodes, "
        f"{stats.get('Inductor', 0)} inductors, "
        f"{stats.get('Capacitor', 0)} capacitors, "
        f"{stats.get('Resistor', 0)} resistors; measurement node {meas!r}\n"
        f"placement problem: {len(problem.components)} components, "
        f"{len(problem.nets)} nets, {len(problem.groups)} groups"
    )
    record("fig11_buck_model", f"{table}\n\n{summary}")

    assert total_filaments > 100  # a real 3-D model, not a stub
    assert stats.get("Inductor", 0) >= len(COUPLING_BRANCHES)
    assert len(problem.components) == 16
