"""Smoke test for the parallel coupling engine and its persistent cache.

Runs the ``rules`` CLI twice on the demo board with ``--workers 2`` and a
throwaway ``--cache-dir``: the first (cold) run must field-solve every
pair and the second (warm) run must answer from disk — and both must
derive identical PEMD values.  Exit code 0 means the engine is healthy.

Invoked by ``make bench-smoke`` (and CI); runs in a few seconds.
"""

from __future__ import annotations

import contextlib
import io
import re
import sys
import tempfile
from pathlib import Path

from repro.cli import main

BOARD = Path(__file__).resolve().parent.parent / "examples" / "boards" / "demo_board.txt"


def run_rules(board: Path, cache_dir: Path) -> str:
    argv = [
        "rules",
        str(board),
        "--max-pairs",
        "2",
        "--workers",
        "2",
        "--cache-dir",
        str(cache_dir),
    ]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    output = buffer.getvalue()
    if code != 0:
        print(output)
        raise SystemExit(f"rules exited with {code}")
    return output


def cache_stats(output: str) -> tuple[int, int, int]:
    """Parse ``coupling cache: H hit(s) (D from disk), M field solve(s)``."""
    match = re.search(
        r"coupling cache: (\d+) hit\(s\) \((\d+) from disk\), (\d+) field solve\(s\)",
        output,
    )
    if match is None:
        print(output)
        raise SystemExit("no cache-stats line in rules output")
    hits, disk, solves = (int(g) for g in match.groups())
    return hits, disk, solves


def pemd_lines(output: str) -> list[str]:
    return [line for line in output.splitlines() if "PEMD" in line]


def main_smoke() -> int:
    board = Path(sys.argv[1]) if len(sys.argv) > 1 else BOARD
    with tempfile.TemporaryDirectory(prefix="repro-emi-smoke-") as tmp:
        cache_dir = Path(tmp) / "coupling"

        cold = run_rules(board, cache_dir)
        _, cold_disk, cold_solves = cache_stats(cold)
        print(f"cold: {cold_solves} field solve(s), {cold_disk} from disk")
        if cold_solves == 0:
            raise SystemExit("cold run performed no field solves — bad scenario")
        if cold_disk != 0:
            raise SystemExit("cold run hit the (empty) disk cache — key leak?")

        warm = run_rules(board, cache_dir)
        _, warm_disk, warm_solves = cache_stats(warm)
        print(f"warm: {warm_solves} field solve(s), {warm_disk} from disk")
        if warm_disk == 0:
            raise SystemExit("warm run reported no persistent cache hits")
        if warm_solves != 0:
            raise SystemExit("warm run still field-solved — cache keys unstable")

        if pemd_lines(cold) != pemd_lines(warm):
            raise SystemExit("cold and warm runs derived different PEMD values")

    print("bench-smoke OK: warm run answered from the persistent cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main_smoke())
