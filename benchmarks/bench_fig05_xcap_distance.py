"""Figure 5 — coupling factor versus distance for two 1.5 µF X capacitors.

Paper claim: with parallel magnetic axes the coupling factor falls
steadily with centre-to-centre distance, and a coupling of ~0.1 "already
severely influences the behaviour of e.g. a pi filter" — so distance alone
needs tens of millimetres.
"""

import numpy as np

from repro.components import FilmCapacitorX2
from repro.coupling import distance_sweep, fit_power_law
from repro.viz import series_table


def test_fig05_xcap_distance(benchmark, record):
    cap_a = FilmCapacitorX2()
    cap_b = FilmCapacitorX2()
    distances = np.geomspace(0.020, 0.090, 9)

    couplings = benchmark(
        distance_sweep,
        cap_a,
        cap_b,
        distances,
        0.0,
        0.0,
        -90.0,  # along the common magnetic axis (parallel axes, Fig. 5 setup)
    )

    fit = fit_power_law(distances, couplings)
    rows = [
        [f"{d * 1e3:.1f}", f"{k:.5f}", f"{fit.predict(d):.5f}"]
        for d, k in zip(distances, couplings, strict=True)
    ]
    table = series_table(["distance mm", "k (PEEC)", "k (fit)"], rows)
    summary = (
        f"power-law fit: k(d) = {fit.c:.3e} * d^-{fit.n:.2f}  (R^2 = {fit.r_squared:.4f})\n"
        f"distance for k = 0.1:  {fit.distance_for_coupling(0.1) * 1e3:.1f} mm\n"
        f"distance for k = 0.01: {fit.distance_for_coupling(0.01) * 1e3:.1f} mm (PEMD)"
    )
    record("fig05_xcap_distance", f"{table}\n\n{summary}")

    # Shape: monotone decay, near-dipole exponent, centimetre-scale PEMD.
    assert np.all(np.diff(couplings) < 0.0)
    assert 2.5 < fit.n < 5.5
    assert 0.015 < fit.distance_for_coupling(0.01) < 0.08
    assert fit.r_squared > 0.98
