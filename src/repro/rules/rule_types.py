"""Design-rule objects consumed by the placement tool.

The paper's tool handles *"geometrical and technological constraints"* and
*"EMC constraints"*; this module gives each rule kind a typed object with a
uniform interface, so the DRC engine and the ASCII reader/writer can treat
them generically.  Rules reference components by reference designator —
they are data, decoupled from the live placement state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import Dimensionless, Meters

__all__ = [
    "Rule",
    "MinDistanceRule",
    "ClearanceRule",
    "GroupCoherenceRule",
    "NetLengthRule",
    "RuleSet",
]


@dataclass(frozen=True)
class Rule:
    """Base class; ``kind`` discriminates in reports and ASCII files."""

    @property
    def kind(self) -> str:
        """Rule discriminator string."""
        return type(self).__name__


@dataclass(frozen=True)
class MinDistanceRule(Rule):
    """Pairwise electro-magnetic minimum distance (the paper's PEMD_ij).

    ``pemd`` applies at parallel magnetic axes; during placement the
    *effective* requirement shrinks with the angle between the axes
    (see :func:`repro.rules.emd.effective_min_distance`).

    Attributes:
        ref_a, ref_b: reference designators of the coupled pair.
        pemd: parallel-axes minimum centre distance [m].
        k_threshold: the coupling level the rule enforces (metadata).
        residual: fraction of the PEMD that survives *any* rotation —
            derived from the perpendicular-axes coupling curve.  The pure
            cos(alpha) law of the paper corresponds to residual = 0; pairs
            whose near field does not null at 90 degrees (capacitor next
            to a solenoid choke) carry the measured floor here.
        source: provenance ("fit", "ascii", "manual", ...).
    """

    ref_a: str = ""
    ref_b: str = ""
    pemd: Meters = 0.0
    k_threshold: Dimensionless = 0.0
    residual: Dimensionless = 0.0
    source: str = "manual"

    def __post_init__(self) -> None:
        if not self.ref_a or not self.ref_b or self.ref_a == self.ref_b:
            raise ValueError("MinDistanceRule needs two distinct refdes")
        if self.pemd < 0.0:
            raise ValueError("pemd must be non-negative")
        if not 0.0 <= self.residual <= 1.0:
            raise ValueError("residual must lie in [0, 1]")

    def pair(self) -> tuple[str, str]:
        """Canonical sorted pair key."""
        return tuple(sorted((self.ref_a, self.ref_b)))  # type: ignore[return-value]


@dataclass(frozen=True)
class ClearanceRule(Rule):
    """Minimum body-to-body spacing for a pair, or globally (empty refs)."""

    ref_a: str = ""
    ref_b: str = ""
    clearance: Meters = 0.5e-3

    def __post_init__(self) -> None:
        if self.clearance < 0.0:
            raise ValueError("clearance must be non-negative")

    @property
    def is_global(self) -> bool:
        """True when the rule applies to every pair."""
        return not self.ref_a and not self.ref_b


@dataclass(frozen=True)
class GroupCoherenceRule(Rule):
    """Functional group that must be placed in one coherent area.

    ``max_spread`` bounds the group's bounding-circle diameter relative to
    the tightest packing; the DRC additionally verifies that no foreign
    component sits inside the group's hull (coherence in the paper's
    sense — groups occupy separate coherent areas).
    """

    group: str = ""
    members: tuple[str, ...] = ()
    max_spread: Meters = 0.0

    def __post_init__(self) -> None:
        if not self.group or len(self.members) < 2:
            raise ValueError("a group rule needs a name and >= 2 members")
        if self.max_spread <= 0.0:
            raise ValueError("max_spread must be positive")


@dataclass(frozen=True)
class NetLengthRule(Rule):
    """Maximum total (half-perimeter estimated) length of a net [m]."""

    net: str = ""
    max_length: Meters = 0.0

    def __post_init__(self) -> None:
        if not self.net:
            raise ValueError("net length rule needs a net name")
        if self.max_length <= 0.0:
            raise ValueError("max_length must be positive")


@dataclass
class RuleSet:
    """The full rule collection handed to the placer and the DRC."""

    min_distance: list[MinDistanceRule]
    clearance: list[ClearanceRule]
    groups: list[GroupCoherenceRule]
    net_lengths: list[NetLengthRule]

    def __init__(
        self,
        min_distance: list[MinDistanceRule] | None = None,
        clearance: list[ClearanceRule] | None = None,
        groups: list[GroupCoherenceRule] | None = None,
        net_lengths: list[NetLengthRule] | None = None,
    ) -> None:
        self.min_distance = list(min_distance or [])
        self.clearance = list(clearance or [])
        self.groups = list(groups or [])
        self.net_lengths = list(net_lengths or [])

    def min_distance_for(self, ref_a: str, ref_b: str) -> MinDistanceRule | None:
        """The PEMD rule for a pair, if any."""
        key = tuple(sorted((ref_a, ref_b)))
        for rule in self.min_distance:
            if rule.pair() == key:
                return rule
        return None

    def clearance_for(self, ref_a: str, ref_b: str, default: float) -> float:
        """Effective clearance for a pair: specific > global > default."""
        key = tuple(sorted((ref_a, ref_b)))
        best: float | None = None
        global_value: float | None = None
        for rule in self.clearance:
            if rule.is_global:
                global_value = rule.clearance
            elif tuple(sorted((rule.ref_a, rule.ref_b))) == key:
                best = rule.clearance
        if best is not None:
            return best
        if global_value is not None:
            return global_value
        return default

    def rules_involving(self, ref: str) -> list[MinDistanceRule]:
        """All PEMD rules touching a component (drives placement priority)."""
        return [r for r in self.min_distance if ref in (r.ref_a, r.ref_b)]

    def total_rules(self) -> int:
        """Rule count across all kinds (for reports)."""
        return (
            len(self.min_distance)
            + len(self.clearance)
            + len(self.groups)
            + len(self.net_lengths)
        )
