"""Effective minimum distance — the paper's ``EMD = PEMD * cos(alpha)``.

Section 4 of the paper: *"The minimum distance rules (PEMD_ij) … are defined
by parallel magnetic axes … This minimum distance is changed by rotation of
the components proportional to the cosine function.  So, the really
effective value of the electrical minimum distance … is computed by
EMD_ij = PEMD_ij * cosine(alpha_ij).  In the case of 90 degree between the
magnetic axes the electrical minimum distance is equal [zero] and the
components can be placed close to each other without any electromagnetic
coupling effects."*

Two refinements keep the rule physical for the full component zoo:

* the angle is taken between the 3-D magnetic axes, so vertical-axis parts
  (whose coupling rotation cannot change) keep their full PEMD against each
  other;
* each component contributes a **decoupling residual** — the fraction of
  the rule that no rotation removes (1 for vertical-axis parts, ~0.6 for
  three-winding CM chokes with their rotating stray fields, 0 for clean
  in-plane dipoles).  The effective reduction factor is
  ``max(|cos(alpha)|, residual_a, residual_b)``.
"""

from __future__ import annotations

import math

from ..components import Component
from ..geometry import Placement2D
from ..units import Dimensionless, Meters, Radians

__all__ = [
    "axis_angle",
    "emd_factor",
    "effective_min_distance",
    "emd_for_pair",
    "worst_case_emd",
]


def axis_angle(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
) -> Radians:
    """Angle between the magnetic axes of two placed components [rad, 0..pi/2].

    Axes are unsigned (a dipole axis has no preferred sign), so the angle is
    folded into the first quadrant.

    Args:
        comp_a, comp_b: the components (magnetic axes as unit vectors in
            their local frames).
        placement_a, placement_b: board placements (positions [m],
            rotations [rad]).

    Returns:
        The folded axis angle [rad], in ``[0, pi/2]``.
    """
    axis_a = comp_a.magnetic_axis_world(placement_a)
    axis_b = comp_b.magnetic_axis_world(placement_b)
    cos = abs(axis_a.dot(axis_b))
    cos = min(1.0, max(0.0, cos))
    return math.acos(cos)


def emd_factor(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
    rule_residual: Dimensionless = 0.0,
) -> Dimensionless:
    """The PEMD reduction factor ``max(|cos(alpha)|, residuals)`` in [0, 1].

    Floors come from both the components (vertical axes, rotating stray
    fields) and the rule itself (measured perpendicular-axes coupling).

    Args:
        comp_a, comp_b: the components (each carries its own decoupling
            residual [-]).
        placement_a, placement_b: board placements (positions [m],
            rotations [rad]).
        rule_residual: rotation-proof fraction of the rule itself [-],
            in [0, 1] — from the perpendicular-axes sweep of the PEMD
            derivation.

    Returns:
        The dimensionless factor multiplying the PEMD, in [0, 1].
    """
    alpha = axis_angle(comp_a, placement_a, comp_b, placement_b)
    floor = max(
        comp_a.decoupling_residual, comp_b.decoupling_residual, rule_residual
    )
    return max(abs(math.cos(alpha)), min(1.0, floor))


def effective_min_distance(
    pemd: Meters, alpha_rad: Radians, residual: Dimensionless = 0.0
) -> Meters:
    """``EMD = PEMD * max(|cos(alpha)|, residual)``.

    Args:
        pemd: parallel-axes minimum distance [m], non-negative.
        alpha_rad: angle between the magnetic axes [rad].
        residual: rotation-proof fraction [-], in [0, 1].

    Returns:
        The effective minimum distance [m].

    Raises:
        ValueError: for a negative PEMD or a residual outside [0, 1].
    """
    if pemd < 0.0:
        raise ValueError("pemd must be non-negative")
    if not 0.0 <= residual <= 1.0:
        raise ValueError("residual must lie in [0, 1]")
    return pemd * max(abs(math.cos(alpha_rad)), residual)


def emd_for_pair(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
    pemd: Meters,
    rule_residual: Dimensionless = 0.0,
) -> Meters:
    """Effective minimum distance for a placed pair under its PEMD rule.

    Args:
        comp_a, comp_b: the components (local-frame magnetic axes).
        placement_a, placement_b: board placements (positions [m],
            rotations [rad]).
        pemd: parallel-axes minimum distance of the rule [m].
        rule_residual: rotation-proof fraction of the rule [-], in [0, 1].

    Returns:
        The effective minimum distance [m] at the pair's current
        orientations.

    Raises:
        ValueError: for a negative PEMD.
    """
    if pemd < 0.0:
        raise ValueError("pemd must be non-negative")
    return pemd * emd_factor(
        comp_a, placement_a, comp_b, placement_b, rule_residual
    )


def worst_case_emd(pemd: Meters) -> Meters:
    """EMD at parallel axes [m] — the value the rotation optimiser reduces.

    Args:
        pemd: parallel-axes minimum distance [m].
    """
    return pemd
