"""Deriving PEMD rules from field simulations and sensitivity results.

The paper's section 3 chain: coupling-versus-distance curves (Figs. 5, 7)
plus the tolerable coupling level (from the sensitivity analysis — e.g.
"*a coupling factor with an amount of 0.1 already severely influences the
behaviour of a pi-filter*") yield, per component pair, the parallel-axes
minimum distance PEMD.  The exact values *"vary with the size of the
components and have to be recalculated for every component combination"* —
hence the per-pair sweep-and-fit here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..components import Component
from ..coupling import CouplingDatabase, distance_sweep, fit_power_law
from ..coupling.fit import PowerLawFit
from ..parallel import CouplingExecutor
from ..sensitivity import SensitivityEntry
from ..units import Dimensionless, Meters
from .rule_types import MinDistanceRule

__all__ = ["PemdDerivation", "derive_pemd", "derive_rule_set"]


@dataclass(frozen=True)
class PemdDerivation:
    """A derived PEMD with its supporting fit.

    ``pemd_perp`` is the minimum distance measured with the axes
    perpendicular — zero when rotation decouples the pair completely (two
    capacitors, the paper's Fig. 6), positive when a near-field floor
    remains (capacitor against a choke).

    Attributes:
        pemd: parallel-axes minimum distance [m].
        k_threshold: tolerable unsigned coupling factor [-] the rule
            enforces.
        fit: the power-law fit ``|k| = c * d^-p`` behind the inversion.
        d_contact: centre distance at body contact [m] — the physical
            lower bound of the sweep.
        pemd_perp: perpendicular-axes minimum distance [m].
    """

    pemd: Meters
    k_threshold: Dimensionless
    fit: PowerLawFit
    d_contact: Meters
    pemd_perp: Meters = 0.0

    @property
    def residual(self) -> Dimensionless:
        """The rotation-proof fraction ``pemd_perp / pemd`` (0..1)."""
        if self.pemd <= 0.0:
            return 0.0
        return min(1.0, self.pemd_perp / self.pemd)

    def rule(self, ref_a: str, ref_b: str) -> MinDistanceRule:
        """Package as a placer rule."""
        return MinDistanceRule(
            ref_a=ref_a,
            ref_b=ref_b,
            pemd=self.pemd,
            k_threshold=self.k_threshold,
            residual=self.residual,
            source="fit",
        )


def _contact_distance(comp_a: Component, comp_b: Component) -> Meters:
    """Centre distance at which the circumscribed bodies touch [m]."""
    return (comp_a.max_extent() + comp_b.max_extent()) / 2.0


def derive_pemd(
    comp_a: Component,
    comp_b: Component,
    k_threshold: Dimensionless,
    n_points: int = 7,
    max_distance: Meters = 0.12,
    ground_plane_z: Meters | None = None,
    executor: CouplingExecutor | None = None,
    database: CouplingDatabase | None = None,
) -> PemdDerivation:
    """Sweep, fit and invert the coupling law for one component pair.

    The sweep runs at parallel axes (both rotations 0) from just beyond
    body contact out to ``max_distance``; the fitted power law is inverted
    at ``k_threshold``.  The result is clamped to the contact distance —
    a PEMD below contact means the pair never interacts above threshold.

    Args:
        comp_a, comp_b: the component pair (local-frame field models).
        k_threshold: tolerable unsigned coupling factor [-] from the
            sensitivity analysis.
        n_points: sweep points between contact and ``max_distance``.
        max_distance: outer end of the distance sweep [m].
        ground_plane_z: optional shielding plane height [m].
        executor: optional process fan-out for the sweep field solves.
        database: optional coupling cache tiers shared across derivations.

    Raises:
        ValueError: for a non-positive threshold.
    """
    if k_threshold <= 0.0:
        raise ValueError("k_threshold must be positive")
    d0 = _contact_distance(comp_a, comp_b) * 1.05
    if max_distance <= d0:
        max_distance = d0 * 4.0
    distances = np.geomspace(d0, max_distance, n_points)

    # PEMD is defined at *parallel magnetic axes*: rotate B so its in-plane
    # axis lines up with A's, and sweep along the common axis direction
    # (the axial, worst-case dipole arrangement).
    axis_a = comp_a.magnetic_axis_local()
    axis_b = comp_b.magnetic_axis_local()
    angle_a = math.degrees(math.atan2(axis_a.y, axis_a.x))
    angle_b = math.degrees(math.atan2(axis_b.y, axis_b.x))
    inplane_a = math.hypot(axis_a.x, axis_a.y) > 0.3
    inplane_b = math.hypot(axis_b.x, axis_b.y) > 0.3
    rotation_b = angle_a - angle_b if (inplane_a and inplane_b) else 0.0
    direction = angle_a if inplane_a else (angle_b if inplane_b else 0.0)

    couplings = distance_sweep(
        comp_a,
        comp_b,
        distances,
        rotation_b_deg=rotation_b,
        direction_deg=direction,
        ground_plane_z=ground_plane_z,
        executor=executor,
        database=database,
    )
    fit = fit_power_law(distances, couplings)
    pemd = max(fit.distance_for_coupling(k_threshold), 0.0)

    # Perpendicular-axes sweep at the worst-case placement direction.
    # The paper states that at 90 degrees components "can be placed close
    # to each other without any electromagnetic coupling effects"; that is
    # exact only when the pair sits on one of the magnetic axes.  At an
    # oblique 45-degree bearing the dipole term 3(ma.e)(mb.e) survives and
    # PEEC measures ~0.8x the parallel-axes coupling.  The residual derived
    # here makes the DRC safe against that worst case; benchmarks for the
    # paper's Fig. 10 exercise the pure cos(alpha) law separately.
    pemd_perp = 0.0
    couplings_perp = distance_sweep(
        comp_a,
        comp_b,
        distances,
        rotation_b_deg=rotation_b + 90.0,
        direction_deg=direction + 45.0,
        ground_plane_z=ground_plane_z,
        executor=executor,
        database=database,
    )
    if np.max(np.abs(couplings_perp)) > k_threshold / 10.0:
        try:
            fit_perp = fit_power_law(distances, couplings_perp)
            pemd_perp = max(fit_perp.distance_for_coupling(k_threshold), 0.0)
        except ValueError:
            pemd_perp = 0.0
    pemd_perp = min(pemd_perp, pemd)
    return PemdDerivation(
        pemd=pemd,
        k_threshold=k_threshold,
        fit=fit,
        d_contact=d0 / 1.05,
        pemd_perp=pemd_perp,
    )


def derive_rule_set(
    parts: dict[str, Component],
    relevant: list[SensitivityEntry],
    inductor_owner: dict[str, str],
    k_threshold_db_map: Dimensionless = 0.01,
    ground_plane_z: Meters | None = None,
    cache: dict[tuple[str, str], PemdDerivation] | None = None,
    executor: CouplingExecutor | None = None,
    database: CouplingDatabase | None = None,
) -> list[MinDistanceRule]:
    """PEMD rules for every sensitivity-relevant component pair.

    Args:
        parts: refdes -> component.
        relevant: ranked sensitivity entries (inductor-level pairs).
        inductor_owner: circuit inductor name -> refdes, mapping the
            sensitivity result back to physical parts.
        k_threshold_db_map: tolerable unsigned coupling factor [-]
            (single threshold; a per-pair threshold map is a
            straightforward extension).
        ground_plane_z: optional shielding plane height [m].
        cache: optional per-*part-number*-pair derivation cache — the paper
            notes values must be recalculated per component combination,
            but identical part pairs share one curve.
        executor: optional process fan-out for the sweep field solves.
        database: optional coupling cache tiers shared across derivations
            (a persistent tier makes repeat runs near-free).

    Returns:
        One rule per distinct relevant refdes pair.
    """
    if cache is None:
        cache = {}
    rules: dict[tuple[str, str], MinDistanceRule] = {}
    for entry in relevant:
        ref_a = inductor_owner.get(entry.inductor_a)
        ref_b = inductor_owner.get(entry.inductor_b)
        if ref_a is None or ref_b is None or ref_a == ref_b:
            continue
        pair = tuple(sorted((ref_a, ref_b)))
        if pair in rules:
            continue
        comp_a, comp_b = parts[pair[0]], parts[pair[1]]
        type_key = tuple(sorted((comp_a.part_number, comp_b.part_number)))
        derivation = cache.get(type_key)
        if derivation is None:
            derivation = derive_pemd(
                comp_a,
                comp_b,
                k_threshold_db_map,
                ground_plane_z=ground_plane_z,
                executor=executor,
                database=database,
            )
            cache[type_key] = derivation
        rules[pair] = derivation.rule(pair[0], pair[1])
    return list(rules.values())


def pemd_table(
    components: list[Component],
    k_threshold: Dimensionless,
    ground_plane_z: Meters | None = None,
    executor: CouplingExecutor | None = None,
    database: CouplingDatabase | None = None,
) -> dict[tuple[str, str], Meters]:
    """All-pairs PEMD matrix over a component *type* list, in metres.

    Handy for reports: the upper triangle of the paper's n(n-1)/2 distance
    system, computed once per type pair.  ``executor`` fans the sweep
    points of each derivation out over worker processes; ``database``
    shares coupling cache tiers across derivations.
    """
    table: dict[tuple[str, str], float] = {}
    for i in range(len(components)):
        for j in range(i, len(components)):
            a, b = components[i], components[j]
            # Same-type pairs (i == j) need a distance too: two X-caps, Fig 5.
            derivation = derive_pemd(
                a,
                b,
                k_threshold,
                ground_plane_z=ground_plane_z,
                executor=executor,
                database=database,
            )
            key = tuple(sorted((a.part_number, b.part_number)))
            table[key] = derivation.pemd
    return table
