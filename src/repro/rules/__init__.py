"""Design rules: PEMD derivation, the cos(alpha) EMD law, rule objects.

Turns field-simulation results and sensitivity rankings into the pairwise
minimum-distance system the placement tool enforces.
"""

from .derive import PemdDerivation, derive_pemd, derive_rule_set, pemd_table
from .emd import axis_angle, effective_min_distance, emd_factor, emd_for_pair, worst_case_emd
from .rule_types import (
    ClearanceRule,
    GroupCoherenceRule,
    MinDistanceRule,
    NetLengthRule,
    Rule,
    RuleSet,
)

__all__ = [
    "Rule",
    "MinDistanceRule",
    "ClearanceRule",
    "GroupCoherenceRule",
    "NetLengthRule",
    "RuleSet",
    "axis_angle",
    "emd_factor",
    "effective_min_distance",
    "emd_for_pair",
    "worst_case_emd",
    "derive_pemd",
    "derive_rule_set",
    "pemd_table",
    "PemdDerivation",
]
