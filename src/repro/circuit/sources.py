"""Source waveforms and their exact Fourier descriptions.

The frequency-domain EMI flow models the converter's switching node as a
**trapezoidal pulse train**; its harmonic phasors drive the filter/LISN
network one line at a time.  Rather than special-casing the trapezoid, the
Fourier coefficients of *any* periodic piecewise-linear waveform are
computed in closed form, which also covers asymmetric rise/fall times and
ringing-free idealisations of diode current.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "pwl_fourier_coefficient",
    "TrapezoidSource",
    "trapezoid_breakpoints",
]


def pwl_fourier_coefficient(
    times: np.ndarray, values: np.ndarray, period: float, harmonic: int
) -> complex:
    """Exact complex Fourier coefficient of a periodic piecewise-linear wave.

    ``c_n = (1/T) * integral_0^T v(t) exp(-j 2 pi n t / T) dt`` with ``v``
    linear between the given breakpoints.  The last breakpoint must be at
    ``t = period`` with ``values[-1] == values[0]`` continuity handled by the
    caller (a jump simply becomes a zero-length ramp — supply two points).

    Args:
        times: strictly increasing breakpoint times, ``times[0] == 0``,
            ``times[-1] == period``.
        values: waveform values at the breakpoints.
        period: waveform period [s].
        harmonic: n >= 0 (n = 0 returns the mean).

    Returns:
        The coefficient ``c_n``; the one-sided amplitude of harmonic n >= 1
        is ``2 |c_n|``.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or t.ndim != 1 or len(t) < 2:
        raise ValueError("times/values must be matching 1-D arrays with >= 2 points")
    if period <= 0.0:
        raise ValueError("period must be positive")
    if harmonic < 0:
        raise ValueError("harmonic must be >= 0")
    if abs(t[0]) > 1e-15 or abs(t[-1] - period) > 1e-12 * max(1.0, period):
        raise ValueError("breakpoints must span exactly [0, period]")
    if np.any(np.diff(t) < 0.0):
        raise ValueError("breakpoint times must be non-decreasing")

    if harmonic == 0:
        total = 0.0
        for i in range(len(t) - 1):
            dt = t[i + 1] - t[i]
            total += 0.5 * (v[i] + v[i + 1]) * dt
        return complex(total / period)

    w = 2.0 * math.pi * harmonic / period
    assert w > 0.0, "harmonic >= 1 past the DC branch and period is positive"
    total_c = 0.0 + 0.0j
    for i in range(len(t) - 1):
        t1, t2 = t[i], t[i + 1]
        dt = t2 - t1
        if dt <= 0.0:
            continue  # Zero-length segment encodes a jump; integral is zero.
        v1, v2 = v[i], v[i + 1]
        slope = (v2 - v1) / dt
        e1 = cmath.exp(-1j * w * t1)
        e2 = cmath.exp(-1j * w * t2)
        # By parts: int v e^{-jwt} dt = (v1 e1 - v2 e2)/(jw) + slope (e2 - e1)/w^2.
        term = (v1 * e1 - v2 * e2) / (1j * w) + slope * (e2 - e1) / (w * w)
        total_c += term
    return total_c / period


def trapezoid_breakpoints(
    period: float,
    duty: float,
    t_rise: float,
    t_fall: float,
    v_low: float = 0.0,
    v_high: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Breakpoints of one period of a trapezoidal pulse.

    The pulse starts rising at t = 0; ``duty`` measures the high time at the
    50 % level, matching how converter duty cycle is specified.

    Raises:
        ValueError: if edges do not fit into the period.
    """
    if not 0.0 < duty < 1.0:
        raise ValueError("duty must be in (0, 1)")
    if t_rise <= 0.0 or t_fall <= 0.0:
        raise ValueError("edge times must be positive")
    t_high = duty * period - 0.5 * (t_rise + t_fall)
    t_low = (1.0 - duty) * period - 0.5 * (t_rise + t_fall)
    if t_high <= 0.0 or t_low <= 0.0:
        raise ValueError("edges too slow for the requested duty/period")
    times = np.array(
        [0.0, t_rise, t_rise + t_high, t_rise + t_high + t_fall, period], dtype=float
    )
    values = np.array([v_low, v_high, v_high, v_low, v_low], dtype=float)
    return times, values


@dataclass
class TrapezoidSource:
    """A trapezoidal switching waveform with exact harmonics.

    Attributes:
        v_low, v_high: rail values [V] (or amperes for a current use).
        switching_frequency: fundamental [Hz].
        duty: 50 %-level duty cycle.
        t_rise, t_fall: edge durations [s].
    """

    v_low: float
    v_high: float
    switching_frequency: float
    duty: float = 0.5
    t_rise: float = 30e-9
    t_fall: float = 30e-9

    def __post_init__(self) -> None:
        if self.switching_frequency <= 0.0:
            raise ValueError("switching frequency must be positive")
        # Validate edge/duty compatibility eagerly.
        trapezoid_breakpoints(self.period, self.duty, self.t_rise, self.t_fall)

    @property
    def period(self) -> float:
        """Switching period [s]."""
        assert self.switching_frequency > 0.0, "validated in __post_init__"
        return 1.0 / self.switching_frequency

    def value_at(self, t: float) -> float:
        """Time-domain value (for transient runs)."""
        times, values = trapezoid_breakpoints(
            self.period, self.duty, self.t_rise, self.t_fall, self.v_low, self.v_high
        )
        tau = math.fmod(t, self.period)
        if tau < 0.0:
            tau += self.period
        return float(np.interp(tau, times, values))

    def harmonic(self, n: int) -> complex:
        """One-sided phasor of harmonic ``n`` (n = 0 gives the DC mean)."""
        times, values = trapezoid_breakpoints(
            self.period, self.duty, self.t_rise, self.t_fall, self.v_low, self.v_high
        )
        c = pwl_fourier_coefficient(times, values, self.period, n)
        return c if n == 0 else 2.0 * c

    def harmonic_frequencies(self, f_max: float) -> np.ndarray:
        """All harmonic frequencies up to ``f_max`` (inclusive)."""
        assert self.switching_frequency > 0.0, "validated in __post_init__"
        n_max = int(f_max / self.switching_frequency)
        return self.switching_frequency * np.arange(1, n_max + 1, dtype=float)

    def spectrum_callable(self):
        """A ``f -> complex`` suitable for VoltageSource.spectrum.

        Off-harmonic frequencies return 0; harmonics return their phasor.
        """

        f0 = self.switching_frequency

        def spectrum(freq: float) -> complex:
            assert f0 > 0.0, "switching frequency validated in __post_init__"
            n = int(round(freq / f0))
            if n < 1 or abs(freq - n * f0) > 1e-6 * f0:
                return 0.0 + 0.0j
            return self.harmonic(n)

        return spectrum

    def envelope_db(self, freqs: np.ndarray) -> np.ndarray:
        """Smooth spectral envelope in dB relative to 1 V.

        The classic two-corner trapezoid bound: flat at ``2 A d``, then
        -20 dB/dec above ``1/(pi t_on)``, then -40 dB/dec above
        ``1/(pi t_edge)`` — handy for plotting against discrete harmonics.
        """
        amplitude = abs(self.v_high - self.v_low)
        d = self.duty
        t_edge = min(self.t_rise, self.t_fall)
        if d <= 0.0 or t_edge <= 0.0:
            raise ValueError("envelope needs duty > 0 and positive edge times")
        f = np.asarray(freqs, dtype=float)
        if np.any(f <= 0.0):
            raise ValueError("envelope is defined for positive frequencies only")
        # 1/(pi d T) written via the fundamental to keep one division.
        f1 = self.switching_frequency / (math.pi * d)
        f2 = 1.0 / (math.pi * t_edge)
        env = np.full_like(f, 2.0 * amplitude * d)
        env = np.where(f > f1, env * f1 / f, env)
        env = np.where(f > f2, env * f2 / f, env)
        return 20.0 * np.log10(np.maximum(env, 1e-30))
