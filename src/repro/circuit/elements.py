"""Circuit element primitives for the MNA simulator.

The EMI flow needs a compact but complete element set: linear R/L/C with
**mutual inductive coupling** (the quantity the whole paper revolves
around), independent sources with AC-phasor, spectrum and time-domain
descriptions, and the switching elements of a power stage (ideal switch,
behavioural diode).

Node names are strings; ``"0"`` (or ``"GND"``) is ground.  Values are SI.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from collections.abc import Callable

__all__ = [
    "GROUND_NAMES",
    "CircuitElement",
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualCoupling",
    "VoltageSource",
    "CurrentSource",
    "Switch",
    "IdealDiode",
]

#: Node names treated as the reference node.
GROUND_NAMES = frozenset({"0", "GND", "gnd"})


@dataclass
class CircuitElement:
    """Common base: a named element between two nodes."""

    name: str
    n1: str
    n2: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("element needs a non-empty name")
        if self.n1 == self.n2:
            raise ValueError(f"{self.name}: both terminals on node {self.n1!r}")

    def nodes(self) -> tuple[str, ...]:
        """All nodes this element touches."""
        return (self.n1, self.n2)


@dataclass
class Resistor(CircuitElement):
    """Linear resistor [ohm]."""

    resistance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0.0:
            raise ValueError(f"{self.name}: resistance must be positive")


@dataclass
class Capacitor(CircuitElement):
    """Linear capacitor [F].

    Parasitics (ESR/ESL) are modelled explicitly by the netlist builders as
    series elements so the solver stays primitive-only.
    """

    capacitance: float = 1e-9

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0.0:
            raise ValueError(f"{self.name}: capacitance must be positive")


@dataclass
class Inductor(CircuitElement):
    """Linear inductor [H]; carries a branch current in the MNA system."""

    inductance: float = 1e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance <= 0.0:
            raise ValueError(f"{self.name}: inductance must be positive")


@dataclass
class MutualCoupling:
    """Magnetic coupling between two inductors: ``M = k sqrt(L1 L2)``.

    ``k`` is signed — a negative value encodes opposed winding sense, which
    is how the placement rule "rotate to decouple / oppose" enters the
    circuit model.
    """

    name: str
    inductor_a: str
    inductor_b: str
    k: float

    def __post_init__(self) -> None:
        if self.inductor_a == self.inductor_b:
            raise ValueError(f"{self.name}: cannot couple an inductor to itself")
        if not -1.0 <= self.k <= 1.0:
            raise ValueError(f"{self.name}: |k| must be <= 1, got {self.k}")


@dataclass
class VoltageSource(CircuitElement):
    """Independent voltage source.

    Attributes:
        dc: operating-point / transient offset value [V].
        ac: phasor magnitude for AC sweeps [V].
        waveform: optional ``f(t) -> volts`` for transient analysis.
        spectrum: optional ``f(freq_hz) -> complex volts`` for per-harmonic
            frequency-domain EMI runs (overrides ``ac`` where provided).
    """

    dc: float = 0.0
    ac: complex = 0.0
    waveform: Callable[[float], float] | None = None
    spectrum: Callable[[float], complex] | None = None

    def value_at_time(self, t: float) -> float:
        """Transient value."""
        if self.waveform is not None:
            return self.waveform(t)
        return self.dc

    def phasor_at(self, freq: float) -> complex:
        """Frequency-domain value."""
        if self.spectrum is not None:
            return complex(self.spectrum(freq))
        return complex(self.ac)


@dataclass
class CurrentSource(CircuitElement):
    """Independent current source (positive current flows n1 -> n2 inside)."""

    dc: float = 0.0
    ac: complex = 0.0
    waveform: Callable[[float], float] | None = None
    spectrum: Callable[[float], complex] | None = None

    def value_at_time(self, t: float) -> float:
        """Transient value."""
        if self.waveform is not None:
            return self.waveform(t)
        return self.dc

    def phasor_at(self, freq: float) -> complex:
        """Frequency-domain value."""
        if self.spectrum is not None:
            return complex(self.spectrum(freq))
        return complex(self.ac)


@dataclass
class Switch(CircuitElement):
    """Time-controlled ideal switch with on/off resistances.

    ``control(t)`` returns True when the switch is closed.  In AC analysis
    the switch presents ``r_on`` if ``ac_closed`` else ``r_off`` — the EMI
    frequency-domain model replaces the switching action by an equivalent
    noise source, so the static state is all that is needed there.
    """

    r_on: float = 1e-3
    r_off: float = 1e9
    control: Callable[[float], bool] = dataclass_field(default=lambda t: True)
    ac_closed: bool = True

    def resistance_at(self, t: float) -> float:
        """Transient resistance."""
        return self.r_on if self.control(t) else self.r_off

    def ac_resistance(self) -> float:
        """Small-signal resistance used in AC sweeps."""
        return self.r_on if self.ac_closed else self.r_off


@dataclass
class IdealDiode(CircuitElement):
    """Behavioural diode: ``r_on`` + ``vf`` when conducting, ``r_off`` blocking.

    State is resolved iteratively inside each transient step.  ``n1`` is the
    anode.  For AC analysis the diode presents ``ac_state`` ("on"/"off").
    """

    vf: float = 0.5
    r_on: float = 10e-3
    r_off: float = 1e9
    ac_state: str = "off"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ac_state not in ("on", "off"):
            raise ValueError(f"{self.name}: ac_state must be 'on' or 'off'")
