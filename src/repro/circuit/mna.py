"""Modified nodal analysis — complex AC sweeps with mutual inductances.

Unknown vector: ``[node voltages | inductor branch currents | source branch
currents]``.  Inductors get explicit branch currents so that mutual
couplings stamp as plain off-diagonal entries of the inductance matrix —
the natural home for the PEEC results.

The system matrix has the affine frequency form ``A(w) = G + jw * S``
(conductances in ``G``; capacitances and the full inductance matrix in
``S``), so a sweep only refactorises per point, which is plenty fast for
the few-hundred-node filter networks of this domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..obs import get_tracer
from ..units import approx_zero
from .elements import (
    GROUND_NAMES,
    Capacitor,
    CurrentSource,
    IdealDiode,
    Inductor,
    Resistor,
    Switch,
    VoltageSource,
)
from .netlist import Circuit

__all__ = ["AcSolution", "AcSweepResult", "MnaSystem", "SingularCircuitError"]


class SingularCircuitError(RuntimeError):
    """The MNA matrix is singular; the message names the likely culprits."""


def _conductance(resistance: float, name: str) -> float:
    """``1/R`` for a resistive stamp, rejecting an (approximately) zero R.

    A zero resistance would stamp an infinite conductance and surface much
    later as a confusing singular-matrix failure; fail at assembly instead.
    """
    if approx_zero(resistance):
        raise SingularCircuitError(
            f"element {name!r} has (near-)zero resistance {resistance!r}; "
            "use an ideal source or a small finite resistance instead"
        )
    return 1.0 / resistance


@dataclass
class AcSolution:
    """Phasor solution at one frequency."""

    freq: float
    node_voltages: dict[str, complex]
    inductor_currents: dict[str, complex]
    source_currents: dict[str, complex]

    def voltage(self, node: str) -> complex:
        """Voltage at a node (ground reads as exactly zero)."""
        if node in GROUND_NAMES:
            return 0.0 + 0.0j
        return self.node_voltages[node]

    def voltage_across(self, n1: str, n2: str) -> complex:
        """Potential difference ``V(n1) - V(n2)``."""
        return self.voltage(n1) - self.voltage(n2)


@dataclass
class AcSweepResult:
    """Solutions over a frequency grid, column-accessible."""

    freqs: np.ndarray
    solutions: list[AcSolution]

    def voltages(self, node: str) -> np.ndarray:
        """Complex voltage at ``node`` across the sweep."""
        return np.array([s.voltage(node) for s in self.solutions])

    def magnitude_db(self, node: str, reference: float = 1.0) -> np.ndarray:
        """``20 log10(|V|/reference)`` across the sweep."""
        v = np.abs(self.voltages(node))
        return 20.0 * np.log10(np.maximum(v, 1e-30) / reference)

    def __len__(self) -> int:
        return len(self.solutions)


class MnaSystem:
    """Assembled MNA system for a circuit; reusable across sweeps.

    The assembly is redone whenever the circuit's couplings change — the
    sensitivity loop therefore constructs one ``MnaSystem`` per variant,
    which is cheap compared to the solves.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._nodes = circuit.node_names()
        self._node_idx = {n: i for i, n in enumerate(self._nodes)}
        self._inductors = circuit.inductors()
        self._ind_idx = {e.name: i for i, e in enumerate(self._inductors)}
        self._sources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
        self._src_idx = {e.name: i for i, e in enumerate(self._sources)}
        self.n_nodes = len(self._nodes)
        self.n_ind = len(self._inductors)
        self.n_src = len(self._sources)
        self.size = self.n_nodes + self.n_ind + self.n_src
        self._g, self._s = self._assemble()

    # -- assembly ---------------------------------------------------------

    def _node(self, name: str) -> int | None:
        if name in GROUND_NAMES:
            return None
        return self._node_idx[name]

    def _stamp_conductance(self, g: np.ndarray, n1: str, n2: str, value: float) -> None:
        i, j = self._node(n1), self._node(n2)
        if i is not None:
            g[i, i] += value
        if j is not None:
            g[j, j] += value
        if i is not None and j is not None:
            g[i, j] -= value
            g[j, i] -= value

    def inductance_matrix(self) -> np.ndarray:
        """Branch inductance matrix including mutual terms [H]."""
        lmat = np.zeros((self.n_ind, self.n_ind), dtype=float)
        for i, ind in enumerate(self._inductors):
            lmat[i, i] = ind.inductance
        for c in self.circuit.couplings:
            ia = self._ind_idx.get(c.inductor_a)
            ib = self._ind_idx.get(c.inductor_b)
            if ia is None or ib is None:
                raise KeyError(f"coupling {c.name!r} references a missing inductor")
            m = c.k * math.sqrt(
                self._inductors[ia].inductance * self._inductors[ib].inductance
            )
            lmat[ia, ib] += m
            lmat[ib, ia] += m
        return lmat

    def _assemble(self) -> tuple[np.ndarray, np.ndarray]:
        g = np.zeros((self.size, self.size), dtype=float)
        s = np.zeros((self.size, self.size), dtype=float)

        for e in self.circuit.elements:
            if isinstance(e, Resistor):
                self._stamp_conductance(g, e.n1, e.n2, _conductance(e.resistance, e.name))
            elif isinstance(e, Switch):
                self._stamp_conductance(g, e.n1, e.n2, _conductance(e.ac_resistance(), e.name))
            elif isinstance(e, IdealDiode):
                r = e.r_on if e.ac_state == "on" else e.r_off
                self._stamp_conductance(g, e.n1, e.n2, _conductance(r, e.name))
            elif isinstance(e, Capacitor):
                i, j = self._node(e.n1), self._node(e.n2)
                if i is not None:
                    s[i, i] += e.capacitance
                if j is not None:
                    s[j, j] += e.capacitance
                if i is not None and j is not None:
                    s[i, j] -= e.capacitance
                    s[j, i] -= e.capacitance

        # Inductor branches: KCL picks up +-I, branch row enforces
        # V(n1) - V(n2) - jw * sum_m L[b, m] I_m = 0.
        lmat = self.inductance_matrix()
        for b, ind in enumerate(self._inductors):
            row = self.n_nodes + b
            i, j = self._node(ind.n1), self._node(ind.n2)
            if i is not None:
                g[i, row] += 1.0
                g[row, i] += 1.0
            if j is not None:
                g[j, row] -= 1.0
                g[row, j] -= 1.0
            for m in range(self.n_ind):
                if not approx_zero(lmat[b, m]):
                    s[row, self.n_nodes + m] -= lmat[b, m]

        # Voltage-source branches: V(n1) - V(n2) = E.
        for k, src in enumerate(self._sources):
            row = self.n_nodes + self.n_ind + k
            i, j = self._node(src.n1), self._node(src.n2)
            if i is not None:
                g[i, row] += 1.0
                g[row, i] += 1.0
            if j is not None:
                g[j, row] -= 1.0
                g[row, j] -= 1.0
        return g, s

    # -- solving ------------------------------------------------------------

    def _rhs(self, freq: float) -> np.ndarray:
        rhs = np.zeros(self.size, dtype=complex)
        for e in self.circuit.elements:
            if isinstance(e, CurrentSource):
                value = e.phasor_at(freq)
                i, j = self._node(e.n1), self._node(e.n2)
                # Internal flow n1 -> n2: current leaves node n1's KCL.
                if i is not None:
                    rhs[i] -= value
                if j is not None:
                    rhs[j] += value
        for k, src in enumerate(self._sources):
            rhs[self.n_nodes + self.n_ind + k] = src.phasor_at(freq)
        return rhs

    def floating_nodes(self) -> list[str]:
        """Nodes with no conductive path to ground (diagnostic helper).

        Walks the R / L / switch / diode / V-source connectivity graph from
        ground; capacitors do not count (they are open at DC, which is what
        makes a node float in the MNA sense).
        """
        from .elements import IdealDiode, Resistor, Switch, VoltageSource

        adjacency: dict[str, set[str]] = {n: set() for n in self._nodes}
        adjacency["0"] = set()

        def canon(n: str) -> str:
            return "0" if n in GROUND_NAMES else n

        conductive = (Resistor, Inductor, Switch, IdealDiode, VoltageSource)
        for e in self.circuit.elements:
            if isinstance(e, conductive):
                a, b = canon(e.n1), canon(e.n2)
                adjacency.setdefault(a, set()).add(b)
                adjacency.setdefault(b, set()).add(a)

        reached = {"0"}
        stack = ["0"]
        while stack:
            node = stack.pop()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in reached:
                    reached.add(neighbour)
                    stack.append(neighbour)
        return [n for n in self._nodes if n not in reached]

    def solve_ac(self, freq: float) -> AcSolution:
        """Solve the phasor system at one frequency.

        Raises:
            SingularCircuitError: if the circuit is singular, with the
                floating nodes named when that is the cause.
        """
        omega = 2.0 * math.pi * freq
        a = self._g + 1j * omega * self._s
        get_tracer().count("circuit.mna_factorizations")
        try:
            x = np.linalg.solve(a, self._rhs(freq))
        except np.linalg.LinAlgError as exc:
            floating = self.floating_nodes()
            hint = (
                f"nodes without a conductive path to ground: {floating}"
                if floating
                else "check for shorted voltage sources or perfect-k inductor loops"
            )
            raise SingularCircuitError(
                f"MNA matrix singular at {freq:.6g} Hz; {hint}"
            ) from exc
        node_v = {n: complex(x[i]) for n, i in self._node_idx.items()}
        ind_i = {
            e.name: complex(x[self.n_nodes + i])
            for e, i in zip(self._inductors, range(self.n_ind), strict=True)
        }
        src_i = {
            e.name: complex(x[self.n_nodes + self.n_ind + i])
            for e, i in zip(self._sources, range(self.n_src), strict=True)
        }
        return AcSolution(freq, node_v, ind_i, src_i)

    def ac_sweep(self, freqs: np.ndarray) -> AcSweepResult:
        """Solve over a grid of frequencies."""
        grid = np.asarray(freqs, dtype=float)
        tracer = get_tracer()
        with tracer.span("circuit.ac_sweep"):
            tracer.count("circuit.sweep_points", len(grid))
            sols = [self.solve_ac(float(f)) for f in grid]
        return AcSweepResult(grid, sols)

    def transfer(self, output_node: str, freqs: np.ndarray) -> np.ndarray:
        """Complex transfer from the (single) unit source to a node voltage.

        Convenience for filter characterisation: requires exactly one
        VoltageSource or CurrentSource with unit AC value semantics left to
        the caller.
        """
        sweep = self.ac_sweep(freqs)
        return sweep.voltages(output_node)
