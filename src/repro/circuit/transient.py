"""Fixed-step trapezoidal transient analysis.

The paper's flow simulates the converter *"either in time or frequency
domain"*.  The frequency domain carries the EMI benchmarks; this transient
engine provides the time-domain leg: switching waveforms, inrush behaviour
and a cross-check of the harmonic model.

Companion models (trapezoidal rule, step ``h``):

* capacitor — Norton: ``G = 2C/h``, ``Ieq = -G v_prev - i_prev``;
* inductor bank — the *matrix* branch relation keeps mutual couplings
  exact: ``E_n = (2/h) L (I_n - I_prev) - E_prev`` with ``E`` the branch
  voltage vector and ``L`` the full (coupled) inductance matrix;
* switch / diode — state-dependent conductance, with a fixed-point state
  iteration inside each step for the diodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .elements import (
    GROUND_NAMES,
    Capacitor,
    CurrentSource,
    IdealDiode,
    Inductor,
    Resistor,
    Switch,
)
from ..obs import get_tracer
from .netlist import Circuit
from .mna import MnaSystem

__all__ = ["TransientResult", "TransientSolver"]

_MAX_DIODE_ITERATIONS = 20


@dataclass
class TransientResult:
    """Time series from a transient run."""

    times: np.ndarray
    node_voltages: dict[str, np.ndarray]
    inductor_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform at a node (zeros for ground)."""
        if node in GROUND_NAMES:
            return np.zeros_like(self.times)
        return self.node_voltages[node]

    def current(self, inductor: str) -> np.ndarray:
        """Branch current waveform of an inductor."""
        return self.inductor_currents[inductor]

    def steady_state_slice(self, settle_fraction: float = 0.5) -> slice:
        """Index slice skipping the initial transient."""
        start = int(len(self.times) * settle_fraction)
        return slice(start, len(self.times))

    def spectrum(self, node: str, settle_fraction: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
        """One-sided amplitude spectrum of a node voltage (steady state).

        Returns (frequencies [Hz], amplitudes [V]).  A Hann window tames
        leakage from the non-integer number of switching periods.
        """
        sl = self.steady_state_slice(settle_fraction)
        v = self.voltage(node)[sl]
        n = len(v)
        if n < 8:
            raise ValueError("too few samples for a spectrum")
        window = np.hanning(n)
        scale = 2.0 / np.sum(window)
        spec = np.abs(np.fft.rfft(v * window)) * scale
        dt = float(self.times[1] - self.times[0])
        freqs = np.fft.rfftfreq(n, dt)
        return freqs, spec


class TransientSolver:
    """Trapezoidal integrator over a fixed time grid."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        # Reuse MNA indexing (nodes / inductor branches / source branches).
        self._mna = MnaSystem(circuit)
        self._lmat = self._mna.inductance_matrix()

    def run(self, t_end: float, dt: float, t_start: float = 0.0) -> TransientResult:
        """Integrate from ``t_start`` to ``t_end`` with fixed step ``dt``.

        Raises:
            ValueError: for a non-positive step or empty interval.
        """
        if dt <= 0.0 or t_end <= t_start:
            raise ValueError("need dt > 0 and t_end > t_start")
        tracer = get_tracer()
        with tracer.span("circuit.transient"):
            return self._integrate(t_end, dt, t_start, tracer)

    def _integrate(self, t_end: float, dt: float, t_start, tracer) -> TransientResult:
        # The companion models below divide by these element values; fail
        # fast with the element name instead of a bare ZeroDivisionError
        # three loops deep.
        if dt <= 0.0:
            raise ValueError(f"dt must be > 0, got {dt}")
        for e in self.circuit.elements:
            if isinstance(e, Resistor) and e.resistance <= 0.0:
                raise ValueError(f"resistor {e.name}: resistance must be > 0")
            if isinstance(e, IdealDiode) and (e.r_on <= 0.0 or e.r_off <= 0.0):
                raise ValueError(f"diode {e.name}: r_on/r_off must be > 0")
        solve_count = 0
        mna = self._mna
        n_nodes, n_ind, n_src = mna.n_nodes, mna.n_ind, mna.n_src
        size = mna.size
        times = np.arange(t_start, t_end + dt * 0.5, dt)
        n_steps = len(times)

        volts = np.zeros((n_steps, n_nodes))
        ind_currents = np.zeros((n_steps, n_ind))

        # Histories.
        cap_v_prev: dict[str, float] = {}
        cap_i_prev: dict[str, float] = {}
        ind_i_prev = np.zeros(n_ind)
        ind_e_prev = np.zeros(n_ind)
        diode_states = {
            e.name: (e.ac_state == "on")
            for e in self.circuit.elements
            if isinstance(e, IdealDiode)
        }

        g_l = (2.0 / dt) * self._lmat

        node_of = mna._node  # noqa: SLF001 - same package, shared indexing
        inductors = mna._inductors  # noqa: SLF001
        sources = mna._sources  # noqa: SLF001

        for step, t in enumerate(times):
            for _iteration in range(_MAX_DIODE_ITERATIONS):
                a = np.zeros((size, size))
                rhs = np.zeros(size)

                def stamp_g(na: str, nb: str, gval: float) -> None:
                    i, j = node_of(na), node_of(nb)
                    if i is not None:
                        a[i, i] += gval
                    if j is not None:
                        a[j, j] += gval
                    if i is not None and j is not None:
                        a[i, j] -= gval
                        a[j, i] -= gval

                def stamp_i(na: str, nb: str, ival: float) -> None:
                    # Current ival flowing na -> nb through the element.
                    i, j = node_of(na), node_of(nb)
                    if i is not None:
                        rhs[i] -= ival
                    if j is not None:
                        rhs[j] += ival

                for e in self.circuit.elements:
                    if isinstance(e, Resistor):
                        stamp_g(e.n1, e.n2, 1.0 / e.resistance)
                    elif isinstance(e, Switch):
                        r_sw = e.resistance_at(t)
                        if r_sw <= 0.0:
                            raise ValueError(
                                f"switch {e.name}: resistance_at({t:g}) <= 0"
                            )
                        stamp_g(e.n1, e.n2, 1.0 / r_sw)
                    elif isinstance(e, IdealDiode):
                        if diode_states[e.name]:
                            stamp_g(e.n1, e.n2, 1.0 / e.r_on)
                            # Forward drop as a series EMF folded into a
                            # Norton injection: i = (v - vf)/r_on.
                            stamp_i(e.n1, e.n2, -e.vf / e.r_on)
                        else:
                            stamp_g(e.n1, e.n2, 1.0 / e.r_off)
                    elif isinstance(e, Capacitor):
                        if step == 0:
                            # First point: treat as open with zero history.
                            cap_v_prev.setdefault(e.name, 0.0)
                            cap_i_prev.setdefault(e.name, 0.0)
                        geq = 2.0 * e.capacitance / dt
                        ieq = -geq * cap_v_prev[e.name] - cap_i_prev[e.name]
                        stamp_g(e.n1, e.n2, geq)
                        stamp_i(e.n1, e.n2, ieq)
                    elif isinstance(e, CurrentSource):
                        stamp_i(e.n1, e.n2, e.value_at_time(t))

                # Inductor branch rows with the coupled companion model.
                for b, ind in enumerate(inductors):
                    row = n_nodes + b
                    i, j = node_of(ind.n1), node_of(ind.n2)
                    if i is not None:
                        a[i, row] += 1.0
                        a[row, i] += 1.0
                    if j is not None:
                        a[j, row] -= 1.0
                        a[row, j] -= 1.0
                    a[row, n_nodes : n_nodes + n_ind] -= g_l[b, :]
                    rhs[row] = -float(g_l[b, :] @ ind_i_prev) - ind_e_prev[b]

                # Voltage sources.
                for k, src in enumerate(sources):
                    row = n_nodes + n_ind + k
                    i, j = node_of(src.n1), node_of(src.n2)
                    if i is not None:
                        a[i, row] += 1.0
                        a[row, i] += 1.0
                    if j is not None:
                        a[j, row] -= 1.0
                        a[row, j] -= 1.0
                    rhs[row] = src.value_at_time(t)

                x = np.linalg.solve(a, rhs)
                solve_count += 1

                # Re-evaluate diode states; repeat the step if any flipped.
                changed = False
                for e in self.circuit.elements:
                    if not isinstance(e, IdealDiode):
                        continue
                    i, j = node_of(e.n1), node_of(e.n2)
                    v1 = x[i] if i is not None else 0.0
                    v2 = x[j] if j is not None else 0.0
                    vd = v1 - v2
                    on = diode_states[e.name]
                    # While conducting, vd sits near +vf even for *reverse*
                    # current, so the off test must be on the branch current
                    # i_d = (vd - vf)/r_on < 0, i.e. vd < vf.
                    if on and vd < e.vf:
                        diode_states[e.name] = False
                        changed = True
                    elif not on and vd > e.vf:
                        diode_states[e.name] = True
                        changed = True
                if not changed:
                    break

            volts[step, :] = x[:n_nodes]
            ind_currents[step, :] = x[n_nodes : n_nodes + n_ind]

            # Update histories.
            for e in self.circuit.elements:
                if isinstance(e, Capacitor):
                    i, j = node_of(e.n1), node_of(e.n2)
                    v1 = x[i] if i is not None else 0.0
                    v2 = x[j] if j is not None else 0.0
                    v_now = v1 - v2
                    geq = 2.0 * e.capacitance / dt
                    i_now = geq * (v_now - cap_v_prev[e.name]) - cap_i_prev[e.name]
                    cap_v_prev[e.name] = v_now
                    cap_i_prev[e.name] = i_now
            i_now_vec = x[n_nodes : n_nodes + n_ind]
            e_now = g_l @ (i_now_vec - ind_i_prev) - ind_e_prev
            ind_i_prev = i_now_vec.copy()
            ind_e_prev = e_now

        tracer.count("circuit.transient_steps", n_steps)
        tracer.count("circuit.transient_solves", solve_count)
        node_series = {
            name: volts[:, idx] for name, idx in mna._node_idx.items()  # noqa: SLF001
        }
        ind_series = {
            ind.name: ind_currents[:, b] for b, ind in enumerate(inductors)
        }
        return TransientResult(times, node_series, ind_series)
