"""SPICE-flavoured ASCII netlist reader/writer.

The placement tool of the paper consumes *"all placement relevant circuit
data … using an ASCII-file interface"*; this module is the circuit half of
that interface.  Supported card types::

    R<name> n1 n2 <value>
    C<name> n1 n2 <value> [esr=<v>] [esl=<v>]
    L<name> n1 n2 <value> [esr=<v>] [epc=<v>]
    K<name> L<a> L<b> <k>
    V<name> n1 n2 [dc=<v>] [ac=<v>]
    I<name> n1 n2 [dc=<v>] [ac=<v>]
    * comment

Values accept engineering suffixes (``f p n u m k meg g``).  Capacitors and
inductors with parasitic keywords are expanded into their series/parallel
networks by the :class:`repro.circuit.Circuit` builders; couplings then
reference the expanded inductor names (``C3.ESL``, ``L1.L`` …) or the raw
name when no expansion occurred.
"""

from __future__ import annotations

import re

from ..units import approx_zero
from .netlist import Circuit

__all__ = ["parse_value", "parse_netlist", "format_netlist"]

_SUFFIXES = {
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "m": 1e-3,
    "k": 1e3,
    "meg": 1e6,
    "g": 1e9,
    "t": 1e12,
}

_VALUE_RE = re.compile(r"^([+-]?\d+\.?\d*(?:[eE][+-]?\d+)?)(meg|[fpnumkgt])?$", re.IGNORECASE)


def parse_value(token: str) -> float:
    """Parse an engineering-notation number (``4.7u`` -> 4.7e-6).

    Raises:
        ValueError: for malformed tokens.
    """
    m = _VALUE_RE.match(token.strip())
    if not m:
        raise ValueError(f"cannot parse value {token!r}")
    base = float(m.group(1))
    suffix = m.group(2)
    if suffix:
        base *= _SUFFIXES[suffix.lower()]
    return base


def _parse_kwargs(tokens: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for tok in tokens:
        if "=" not in tok:
            raise ValueError(f"expected key=value, got {tok!r}")
        key, _, val = tok.partition("=")
        out[key.lower()] = parse_value(val)
    return out


def parse_netlist(text: str, title: str = "") -> Circuit:
    """Build a :class:`Circuit` from netlist text.

    Raises:
        ValueError: on any malformed card, citing the line number.
    """
    circuit = Circuit(title=title)
    pending_couplings: list[tuple[str, str, str, float]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].strip()
        if not line or line.startswith("*") or line.startswith("."):
            continue
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        try:
            if kind == "R":
                circuit.add_resistor(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "C":
                kwargs = _parse_kwargs(tokens[4:])
                esr = kwargs.pop("esr", 0.0)
                esl = kwargs.pop("esl", 0.0)
                if kwargs:
                    raise ValueError(f"unknown keywords {sorted(kwargs)}")
                if approx_zero(esr) and approx_zero(esl):
                    circuit.add_capacitor(card, tokens[1], tokens[2], parse_value(tokens[3]))
                else:
                    circuit.add_real_capacitor(
                        card, tokens[1], tokens[2], parse_value(tokens[3]), esr=esr, esl=esl
                    )
            elif kind == "L":
                kwargs = _parse_kwargs(tokens[4:])
                esr = kwargs.pop("esr", 0.0)
                epc = kwargs.pop("epc", 0.0)
                if kwargs:
                    raise ValueError(f"unknown keywords {sorted(kwargs)}")
                if approx_zero(esr) and approx_zero(epc):
                    circuit.add_inductor(card, tokens[1], tokens[2], parse_value(tokens[3]))
                else:
                    circuit.add_real_inductor(
                        card, tokens[1], tokens[2], parse_value(tokens[3]), esr=esr, epc=epc
                    )
            elif kind == "K":
                pending_couplings.append(
                    (card, tokens[1], tokens[2], parse_value(tokens[3]))
                )
            elif kind == "V":
                kwargs = _parse_kwargs(tokens[3:])
                circuit.add_vsource(
                    card,
                    tokens[1],
                    tokens[2],
                    dc=kwargs.get("dc", 0.0),
                    ac=kwargs.get("ac", 0.0),
                )
            elif kind == "I":
                kwargs = _parse_kwargs(tokens[3:])
                circuit.add_isource(
                    card,
                    tokens[1],
                    tokens[2],
                    dc=kwargs.get("dc", 0.0),
                    ac=kwargs.get("ac", 0.0),
                )
            else:
                raise ValueError(f"unknown card type {card!r}")
        except (IndexError, ValueError, KeyError) as exc:
            raise ValueError(f"netlist line {lineno}: {raw.strip()!r}: {exc}") from exc

    inductor_names = {e.name for e in circuit.inductors()}

    def resolve(ref: str) -> str:
        # Accept the raw card name or its expanded branch (L cards expand
        # to "<name>.L", C cards with parasitics to "<name>.ESL").
        for candidate in (ref, f"{ref}.L", f"{ref}.ESL"):
            if candidate in inductor_names:
                return candidate
        raise ValueError(f"coupling references unknown inductor {ref!r}")

    for name, la, lb, k in pending_couplings:
        circuit.add_coupling(name, resolve(la), resolve(lb), k)
    return circuit


def format_netlist(circuit: Circuit) -> str:
    """Serialise a circuit back to netlist text (primitives, no re-folding)."""
    from .elements import (
        Capacitor,
        CurrentSource,
        IdealDiode,
        Inductor,
        Resistor,
        Switch,
        VoltageSource,
    )

    lines = [f"* {circuit.title}" if circuit.title else "* netlist"]
    for e in circuit.elements:
        if isinstance(e, Resistor):
            lines.append(f"{e.name} {e.n1} {e.n2} {e.resistance:.6g}")
        elif isinstance(e, Capacitor):
            lines.append(f"{e.name} {e.n1} {e.n2} {e.capacitance:.6g}")
        elif isinstance(e, Inductor):
            lines.append(f"{e.name} {e.n1} {e.n2} {e.inductance:.6g}")
        elif isinstance(e, VoltageSource):
            lines.append(f"{e.name} {e.n1} {e.n2} dc={e.dc:.6g} ac={abs(e.ac):.6g}")
        elif isinstance(e, CurrentSource):
            lines.append(f"{e.name} {e.n1} {e.n2} dc={e.dc:.6g} ac={abs(e.ac):.6g}")
        elif isinstance(e, (Switch, IdealDiode)):
            lines.append(f"* (behavioural element {e.name} not serialisable)")
    for c in circuit.couplings:
        lines.append(f"{c.name} {c.inductor_a} {c.inductor_b} {c.k:.6g}")
    return "\n".join(lines) + "\n"
