"""Circuit simulation substrate: MNA AC sweeps, transient, sources, netlists.

Mutual inductive couplings — the paper's central quantity — are first-class:
they stamp into the branch inductance matrix of both the AC and the
transient engine, so a coupling factor measured by the PEEC engine drops
straight into a system-level simulation.
"""

from .elements import (
    GROUND_NAMES,
    Capacitor,
    CircuitElement,
    CurrentSource,
    IdealDiode,
    Inductor,
    MutualCoupling,
    Resistor,
    Switch,
    VoltageSource,
)
from .mna import AcSolution, AcSweepResult, MnaSystem, SingularCircuitError
from .netlist import Circuit
from .parser import format_netlist, parse_netlist, parse_value
from .sources import TrapezoidSource, pwl_fourier_coefficient, trapezoid_breakpoints
from .transient import TransientResult, TransientSolver

__all__ = [
    "GROUND_NAMES",
    "CircuitElement",
    "Resistor",
    "Capacitor",
    "Inductor",
    "MutualCoupling",
    "VoltageSource",
    "CurrentSource",
    "Switch",
    "IdealDiode",
    "Circuit",
    "MnaSystem",
    "SingularCircuitError",
    "AcSolution",
    "AcSweepResult",
    "TransientSolver",
    "TransientResult",
    "TrapezoidSource",
    "pwl_fourier_coefficient",
    "trapezoid_breakpoints",
    "parse_netlist",
    "format_netlist",
    "parse_value",
]
