"""The :class:`Circuit` container — element bookkeeping and netlist helpers.

A circuit is a flat collection of primitive elements plus the mutual
couplings between its inductors.  Convenience builders add real passive
components *with their parasitics expanded* (a capacitor becomes C–ESR–ESL
in series, through internal nodes), which is exactly the modelling step the
paper calls "circuit simulation of the device including … parasitic
properties like ESL of capacitors or inductances of lines".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .elements import (
    GROUND_NAMES,
    Capacitor,
    CircuitElement,
    CurrentSource,
    IdealDiode,
    Inductor,
    MutualCoupling,
    Resistor,
    Switch,
    VoltageSource,
)

__all__ = ["Circuit"]


@dataclass
class Circuit:
    """A netlist of primitive elements with named nodes.

    Attributes:
        title: free-text description.
        elements: two-terminal elements in insertion order.
        couplings: mutual couplings between inductors (by inductor name).
    """

    title: str = ""
    elements: list[CircuitElement] = field(default_factory=list)
    couplings: list[MutualCoupling] = field(default_factory=list)

    # -- primitive adders -------------------------------------------------

    def add(self, element: CircuitElement) -> CircuitElement:
        """Insert a primitive element.

        Raises:
            ValueError: on duplicate element names (they address couplings
                and probes, so they must be unique).
        """
        if any(e.name == element.name for e in self.elements):
            raise ValueError(f"duplicate element name {element.name!r}")
        self.elements.append(element)
        return element

    def add_resistor(self, name: str, n1: str, n2: str, resistance: float) -> Resistor:
        """Add a resistor."""
        r = Resistor(name, n1, n2, resistance)
        self.add(r)
        return r

    def add_capacitor(self, name: str, n1: str, n2: str, capacitance: float) -> Capacitor:
        """Add an ideal capacitor."""
        c = Capacitor(name, n1, n2, capacitance)
        self.add(c)
        return c

    def add_inductor(self, name: str, n1: str, n2: str, inductance: float) -> Inductor:
        """Add an inductor."""
        ind = Inductor(name, n1, n2, inductance)
        self.add(ind)
        return ind

    def add_vsource(self, name: str, n1: str, n2: str, **kwargs) -> VoltageSource:
        """Add an independent voltage source (kwargs per VoltageSource)."""
        v = VoltageSource(name, n1, n2, **kwargs)
        self.add(v)
        return v

    def add_isource(self, name: str, n1: str, n2: str, **kwargs) -> CurrentSource:
        """Add an independent current source."""
        i = CurrentSource(name, n1, n2, **kwargs)
        self.add(i)
        return i

    def add_switch(self, name: str, n1: str, n2: str, **kwargs) -> Switch:
        """Add a time-controlled switch."""
        s = Switch(name, n1, n2, **kwargs)
        self.add(s)
        return s

    def add_diode(self, name: str, anode: str, cathode: str, **kwargs) -> IdealDiode:
        """Add a behavioural diode."""
        d = IdealDiode(name, anode, cathode, **kwargs)
        self.add(d)
        return d

    def add_coupling(self, name: str, inductor_a: str, inductor_b: str, k: float) -> MutualCoupling:
        """Couple two inductors magnetically with factor ``k``.

        Raises:
            KeyError: if either inductor does not exist (couplings must
                always reference real branches).
        """
        names = {e.name for e in self.elements if isinstance(e, Inductor)}
        for ind in (inductor_a, inductor_b):
            if ind not in names:
                raise KeyError(f"coupling {name!r}: no inductor {ind!r} in circuit")
        if any(c.name == name for c in self.couplings):
            raise ValueError(f"duplicate coupling name {name!r}")
        coupling = MutualCoupling(name, inductor_a, inductor_b, k)
        self.couplings.append(coupling)
        return coupling

    def set_coupling(self, inductor_a: str, inductor_b: str, k: float) -> None:
        """Create or update the coupling between two inductors.

        The sensitivity analysis perturbs couplings one by one; this helper
        keeps that loop free of name bookkeeping.
        """
        for c in self.couplings:
            if {c.inductor_a, c.inductor_b} == {inductor_a, inductor_b}:
                c.k = k
                return
        self.add_coupling(f"K_{inductor_a}_{inductor_b}", inductor_a, inductor_b, k)

    def remove_coupling(self, inductor_a: str, inductor_b: str) -> bool:
        """Delete a coupling if present; returns True when one was removed."""
        for i, c in enumerate(self.couplings):
            if {c.inductor_a, c.inductor_b} == {inductor_a, inductor_b}:
                del self.couplings[i]
                return True
        return False

    # -- component-level builders ------------------------------------------

    def add_real_capacitor(
        self,
        name: str,
        n1: str,
        n2: str,
        capacitance: float,
        esr: float = 0.0,
        esl: float = 0.0,
    ) -> Inductor | None:
        """Add a capacitor with series parasitics, expanding internal nodes.

        Topology: ``n1 --C-- name#a --ESR-- name#b --ESL-- n2`` (parasitic
        stages are skipped when zero).  Returns the ESL inductor so callers
        can attach magnetic couplings to it, or None if ``esl == 0``.
        """
        if esr < 0.0 or esl < 0.0:
            raise ValueError(f"{name}: parasitics must be non-negative")
        node = n1
        next_nodes = []
        stages = 1 + (1 if esr > 0.0 else 0) + (1 if esl > 0.0 else 0)
        for i in range(stages - 1):
            next_nodes.append(f"{name}#{i}")
        next_nodes.append(n2)
        self.add_capacitor(f"{name}.C", node, next_nodes[0], capacitance)
        node = next_nodes[0]
        idx = 1
        if esr > 0.0:
            self.add_resistor(f"{name}.ESR", node, next_nodes[idx], esr)
            node = next_nodes[idx]
            idx += 1
        esl_inductor = None
        if esl > 0.0:
            esl_inductor = self.add_inductor(f"{name}.ESL", node, next_nodes[idx], esl)
        return esl_inductor

    def add_real_inductor(
        self, name: str, n1: str, n2: str, inductance: float, esr: float = 0.0, epc: float = 0.0
    ) -> Inductor:
        """Add an inductor with winding resistance and parallel capacitance.

        Topology: series ``L``+``ESR`` with ``EPC`` bridging the terminals
        (the classic first-order choke model).  Returns the main inductor.
        """
        if esr < 0.0 or epc < 0.0:
            raise ValueError(f"{name}: parasitics must be non-negative")
        if esr > 0.0:
            mid = f"{name}#m"
            main = self.add_inductor(f"{name}.L", n1, mid, inductance)
            self.add_resistor(f"{name}.ESR", mid, n2, esr)
        else:
            main = self.add_inductor(f"{name}.L", n1, n2, inductance)
        if epc > 0.0:
            self.add_capacitor(f"{name}.EPC", n1, n2, epc)
        return main

    def add_trace(self, name: str, n1: str, n2: str, inductance: float, resistance: float = 1e-3) -> Inductor:
        """Add a board trace as series L+R; returns the inductor branch."""
        mid = f"{name}#m"
        ind = self.add_inductor(f"{name}.L", n1, mid, inductance)
        self.add_resistor(f"{name}.R", mid, n2, resistance)
        return ind

    # -- queries ------------------------------------------------------------

    def node_names(self) -> list[str]:
        """All non-ground nodes in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.elements:
            for n in e.nodes():
                if n not in GROUND_NAMES and n not in seen:
                    seen[n] = None
        return list(seen)

    def inductors(self) -> list[Inductor]:
        """All inductor branches in insertion order."""
        return [e for e in self.elements if isinstance(e, Inductor)]

    def find(self, name: str) -> CircuitElement:
        """Look up an element by exact name.

        Raises:
            KeyError: when absent.
        """
        for e in self.elements:
            if e.name == name:
                return e
        raise KeyError(f"no element named {name!r}")

    def coupling_value(self, inductor_a: str, inductor_b: str) -> float:
        """Current k between two inductors (0.0 when uncoupled)."""
        for c in self.couplings:
            if {c.inductor_a, c.inductor_b} == {inductor_a, inductor_b}:
                return c.k
        return 0.0

    def clone(self) -> "Circuit":
        """Deep copy (elements are small dataclasses; callables are shared)."""
        import copy

        return copy.deepcopy(self)

    def stats(self) -> dict[str, int]:
        """Element counts by class name, for reports."""
        out: dict[str, int] = {}
        for e in self.elements:
            out[type(e).__name__] = out.get(type(e).__name__, 0) + 1
        out["MutualCoupling"] = len(self.couplings)
        out["nodes"] = len(self.node_names())
        return out
