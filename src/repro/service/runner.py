"""Executes one job on a worker thread, with full artifact capture.

The runner is where the service meets :class:`~repro.core.EmiDesignFlow`:
it installs a *per-thread* tracer (``repro.obs.set_thread_tracer``) wired
to the job's own :class:`~repro.obs.EventBus`, runs the flow stage by
stage with a cancellation/timeout checkpoint between stages, and flushes
the artifact set whatever the outcome — on failure the run report is
stamped ``status: error`` exactly like the CLI's traced-failure flush,
so a partial run is always diagnosable.

Artifacts (``<data_dir>/jobs/<job_id>/``):

=====================  ==================================================
``run_report.json``    the job's :class:`~repro.obs.RunReport` (always)
``events.jsonl``       the full telemetry event stream (always)
``flight.html``        self-contained flight recorder (always)
``check_report.json``  the static design check, when one ran
``result.json``        the job's summary outcome, on success
``report.md``          flow job: the design-review Markdown report
``baseline.svg``       flow job: EMI-blind layout
``optimized.svg``      flow job: EMI-aware layout
``spectra.csv``        flow job: predicted spectra of both layouts
``placed.txt``         board job: the placed ASCII problem
``board.svg``          board job: the placed board view
=====================  ==================================================
"""

from __future__ import annotations

import json
import traceback
from collections.abc import Callable
from typing import Any

from ..check import CheckReport, DesignCheckError, run_checks
from ..core import EmiDesignFlow, flow_report
from ..io import write_problem
from ..obs import Tracer, render_flight_html, set_thread_tracer
from ..placement import AutoPlacer, DesignRuleChecker, PlacementError
from ..viz import render_board_svg, spectrum_to_csv
from .config import ServiceConfig
from .errors import JobCancelled, JobTimeout
from .jobs import Job, JobState
from .metrics import ServiceMetrics

__all__ = ["JobRunner"]

#: Test seam: called as ``hook(job, next_stage)`` right before each
#: stage; lets the tests pin a job mid-run deterministically.
StageHook = Callable[[Job, str], None]


class JobRunner:
    """Runs jobs to a terminal state; one instance serves every worker."""

    def __init__(self, config: ServiceConfig, metrics: ServiceMetrics):
        self.config = config
        self.metrics = metrics
        self.stage_hook: StageHook | None = None

    # -- plumbing ----------------------------------------------------------

    def _checkpoint(self, job: Job, next_stage: str) -> None:
        """Stop-point between stages (cancellation, timeout, test hook)."""
        job.checkpoint()
        hook = self.stage_hook
        if hook is not None:
            hook(job, next_stage)
            job.checkpoint()

    @staticmethod
    def _write_json(job: Job, name: str, payload: dict[str, Any]) -> None:
        path = job.artifacts_dir.joinpath(name)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    @staticmethod
    def _write_check_report(job: Job, report: CheckReport) -> None:
        JobRunner._write_json(job, "check_report.json", report.to_dict())

    # -- the one public entry point ----------------------------------------

    def run(self, job: Job) -> None:
        """Execute ``job`` to a terminal state (never raises).

        Must be called on the worker thread that owns the job for its
        whole run — the per-job tracer's span stack lives on it.
        """
        if not job.mark_running():
            return  # cancelled while queued; nothing to do
        if job.queue_wait_s is not None:
            self.metrics.set_gauge("service.job_queue_wait_s", job.queue_wait_s)
            self.metrics.observe("service.queue_wait_seconds", job.queue_wait_s)
        tracer = Tracer(
            meta={
                "command": "service.job",
                "job_id": job.id,
                "kind": job.request.kind,
                "content_hash": job.request.digest,
            },
            bus=job.bus,
            run_id=job.run_id or None,
        )
        previous = set_thread_tracer(tracer)
        state = JobState.SUCCEEDED
        error: dict[str, str] | None = None
        result: dict[str, Any] | None = None
        try:
            with tracer.span("service.job"):
                if job.request.kind == "board":
                    result = self._run_board(job, tracer)
                else:
                    result = self._run_flow(job, tracer)
        except JobCancelled:
            state = JobState.CANCELLED
            error = {"kind": "cancelled", "message": "cancelled while running"}
        except JobTimeout as exc:
            state = JobState.FAILED
            error = {"kind": "timeout", "message": str(exc)}
        except DesignCheckError as exc:
            state = JobState.FAILED
            self._write_check_report(job, exc.report)
            error = {
                "kind": "design_check",
                "message": f"design check failed with "
                f"{len(exc.report.errors())} error(s); see check_report.json",
            }
        except Exception as exc:
            state = JobState.FAILED
            error = {
                "kind": "exception",
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc()[-4000:],
            }
        finally:
            set_thread_tracer(previous)
        self._flush(job, tracer, state, error, result)

    def _flush(
        self,
        job: Job,
        tracer: Tracer,
        state: str,
        error: dict[str, str] | None,
        result: dict[str, Any] | None,
    ) -> None:
        """Write the always-on artifacts and finish the job."""
        status = "ok" if state == JobState.SUCCEEDED else "error"
        extra: dict[str, Any] = {"status": status}
        if error is not None:
            extra["error_type"] = error.get("error_type", error.get("kind", "error"))
        report = tracer.report(extra_meta=extra)
        try:
            report.write(job.artifacts_dir / "run_report.json")
            events = [e.to_dict() for e in job.ring.snapshot()]
            html = render_flight_html(
                report,
                events=events,
                title=f"repro-emi service job {job.id}",
            )
            (job.artifacts_dir / "flight.html").write_text(html, encoding="utf-8")
        except OSError as exc:  # artifact loss must not mask the verdict
            if error is None:
                error = {"kind": "artifact_io", "message": str(exc)}
        job.finish(state, error=error, result=result)
        job.bus.close()

    # -- flow jobs ---------------------------------------------------------

    def _run_flow(self, job: Job, tracer: Tracer) -> dict[str, Any]:
        options = job.request.options
        flow = EmiDesignFlow(
            job.request.build_design(),
            k_threshold=options.k_threshold,
            sensitivity_threshold_db=options.sensitivity_threshold_db,
            workers=options.workers,
            cache_dir=self.config.cache_dir,
        )
        try:
            if options.precheck:
                self._checkpoint(job, "check")
                self._write_check_report(job, flow.run_precheck())
            self._checkpoint(job, "sensitivity")
            flow.run_sensitivity()
            self._checkpoint(job, "rules")
            rules = flow.derive_rules()
            self._checkpoint(job, "placement")
            baseline_problem, _ = flow.place_baseline()
            optimized_problem, _ = flow.place_optimized()
            self._checkpoint(job, "verification")
            evaluations = {
                "baseline": flow.evaluate("baseline", baseline_problem),
                "optimized": flow.evaluate("optimized", optimized_problem),
            }
            stats = flow.coupling_stats
            self.metrics.inc("service.cache_hits", stats.hits)
            self.metrics.inc("service.cache_misses", stats.misses)
            tracer.gauge("service.cache_hits", float(stats.hits))
            tracer.gauge("service.cache_misses", float(stats.misses))

            for name, evaluation in evaluations.items():
                (job.artifacts_dir / f"{name}.svg").write_text(
                    render_board_svg(evaluation.problem, title=name)
                )
            (job.artifacts_dir / "spectra.csv").write_text(
                spectrum_to_csv({n: e.spectrum for n, e in evaluations.items()})
            )
            (job.artifacts_dir / "report.md").write_text(
                flow_report(flow, evaluations)
            )
            result = {
                "rules_derived": len(rules),
                "relevant_pairs": len(flow.relevant_pairs()),
                "cache": {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "persistent_hits": stats.persistent_hits,
                },
                "layouts": {
                    name: {
                        "violations": evaluation.violations,
                        "worst_margin_db": evaluation.worst_margin_db,
                        "passes_limits": evaluation.passes_limits(),
                    }
                    for name, evaluation in evaluations.items()
                },
            }
            self._write_json(job, "result.json", result)
            return result
        finally:
            flow.close()

    # -- board jobs --------------------------------------------------------

    def _run_board(self, job: Job, tracer: Tracer) -> dict[str, Any]:
        problem = job.request.build_problem()
        self._checkpoint(job, "check")
        with tracer.stage("check"), tracer.span("service.check"):
            check = run_checks(problem=problem, subject=job.id)
        self._write_check_report(job, check)
        if check.errors():
            raise DesignCheckError(check)
        self._checkpoint(job, "placement")
        with tracer.stage("placement"), tracer.span("service.placement"):
            try:
                placement = AutoPlacer(problem).run()
            except PlacementError as exc:
                raise RuntimeError(f"placement failed: {exc}") from exc
        self._checkpoint(job, "verification")
        with tracer.stage("verification"), tracer.span("service.verification"):
            violations = DesignRuleChecker(problem).check_all()
        (job.artifacts_dir / "placed.txt").write_text(
            write_problem(problem, title=f"placed by service job {job.id}")
        )
        (job.artifacts_dir / "board.svg").write_text(
            render_board_svg(problem, title=job.id)
        )
        result = {
            "placed_count": placement.placed_count,
            "violations": len(violations),
            "runtime_s": placement.runtime_s,
        }
        self._write_json(job, "result.json", result)
        return result
