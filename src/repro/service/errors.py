"""Typed failures of the service layer.

Every error the HTTP shell turns into a status code is a class here, so
the job machinery never imports (or even knows about) HTTP:

* :class:`PayloadError` — the submitted job payload is malformed or the
  submitted board fails the static design check; carries the
  :class:`~repro.check.CheckReport` when one exists (the 400 body cites
  it verbatim).
* :class:`JobCancelled` / :class:`JobTimeout` — raised *inside* a
  running job at the next stage checkpoint; the runner maps them to the
  ``cancelled`` / ``failed`` terminal states.
* :class:`UnknownJobError` — lookup of a job id the store never issued
  (HTTP 404).
* :class:`ServiceClosedError` — submission after shutdown began
  (HTTP 503) or over the queue bound (HTTP 429, ``retryable=True``).
"""

from __future__ import annotations

from ..check import CheckReport

__all__ = [
    "ServiceError",
    "PayloadError",
    "JobCancelled",
    "JobTimeout",
    "UnknownJobError",
    "ServiceClosedError",
]


class ServiceError(Exception):
    """Base class of every service-layer failure."""


class PayloadError(ServiceError):
    """A job submission that must be rejected before it is queued.

    Attributes:
        check_report: the static-validation report when the rejection
            came from the design linter (``None`` for shape/type
            problems with the payload itself).
    """

    def __init__(self, message: str, check_report: CheckReport | None = None):
        super().__init__(message)
        self.check_report = check_report


class JobCancelled(ServiceError):
    """Raised at a stage checkpoint after ``DELETE /jobs/{id}``."""


class JobTimeout(ServiceError):
    """Raised at a stage checkpoint once the job's deadline passed."""


class UnknownJobError(ServiceError):
    """The requested job id does not exist."""


class ServiceClosedError(ServiceError):
    """Submission refused: the service is shutting down or saturated.

    Attributes:
        retryable: True when the refusal is a full queue (the client may
            retry later), False when shutdown is in progress.
    """

    def __init__(self, message: str, retryable: bool = False):
        super().__init__(message)
        self.retryable = retryable
