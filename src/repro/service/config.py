"""Service configuration: one frozen object threaded through every layer.

Defaults are chosen for a local single-host deployment; the ``repro-emi
serve`` CLI maps its flags onto these fields one-to-one (see
``docs/SERVICE.md`` for the operational meaning of each knob).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from ..parallel import default_cache_dir

__all__ = ["ServiceConfig", "default_data_dir"]


def default_data_dir() -> Path:
    """The default artifact root.

    ``$REPRO_EMI_SERVICE_DIR`` wins when set; otherwise
    ``$XDG_CACHE_HOME/repro-emi/service`` (falling back to
    ``~/.cache/repro-emi/service``).
    """
    override = os.environ.get("REPRO_EMI_SERVICE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-emi" / "service"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service instance.

    Attributes:
        host, port: HTTP bind address (``port=0`` picks an ephemeral
            port — the test/smoke entry point).
        pool_workers: job worker threads draining the queue
            (dimensionless count; each runs one job at a time).
        data_dir: artifact root; per-job directories live under
            ``<data_dir>/jobs/<job_id>/``.
        cache_dir: shared persistent coupling cache for *all* jobs
            (``None`` disables the persistent tier).
        job_timeout_s: default per-job wall-clock timeout [s]
            (payloads may override via ``options.timeout_s``).
        max_queued: submissions refused with 429 once this many jobs
            are waiting (running jobs excluded).
        event_buffer: per-job ring-buffer capacity (events); an SSE
            consumer that falls further behind sees a cursor gap.
        sse_poll_s: SSE handler poll interval against the ring [s].
        drain_on_close: whether :meth:`JobManager.close` finishes
            queued jobs (True) or cancels them (False).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    pool_workers: int = 2
    data_dir: Path = field(default_factory=default_data_dir)
    cache_dir: Path | None = field(default_factory=default_cache_dir)
    job_timeout_s: float = 300.0
    max_queued: int = 64
    event_buffer: int = 65536
    sse_poll_s: float = 0.05
    drain_on_close: bool = True

    def jobs_root(self) -> Path:
        """The directory holding every per-job artifact directory."""
        return Path(self.data_dir) / "jobs"
