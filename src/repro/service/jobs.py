"""The job model: payloads, lifecycle states and per-job telemetry.

One :class:`Job` is one run of the paper's design flow on behalf of an
HTTP client.  The lifecycle is a small state machine::

    queued ──> running ──> succeeded
       │          ├──────> failed      (error / precheck / timeout)
       └──────────┴──────> cancelled   (DELETE /jobs/{id})

``queued -> cancelled`` is immediate; ``running -> cancelled`` is
cooperative — the runner polls :meth:`Job.checkpoint` between flow
stages, so a running job stops at the next stage boundary.

Every job owns its own telemetry fabric, wired at submission time:

* an :class:`~repro.obs.EventBus` the job's tracer publishes into;
* an :class:`~repro.obs.EventRingBuffer` — the SSE endpoint's cursor
  source (``GET /jobs/{id}/events`` resumes via ``since(seq)``);
* a :class:`~repro.obs.JsonlSink` persisting the full stream as the
  ``events.jsonl`` artifact;
* a :class:`_StageWatch` deriving the stage map and progress fraction
  that ``GET /jobs/{id}`` snapshots — status is *derived from the event
  stream*, never duplicated by hand.

Payload shape (``POST /jobs``, full reference in ``docs/SERVICE.md``)::

    {"design": {"kind": "buck", "params": {...}},   # flow job, or
     "board": "BOARD 70 50\\n...",                   # board job
     "options": {"workers": 1, "k_threshold": 0.01,
                 "sensitivity_threshold_db": 3.0,
                 "precheck": true, "timeout_s": 300}}

Job ids are content-addressed: ``j<seq>-<sha256(payload)[:12]>`` — the
hash names the artifact directory, the sequence keeps identical
resubmissions distinct.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from ..check import run_checks
from ..converters import BuckConverterDesign
from ..io import AsciiFormatError, read_problem
from ..obs import EventBus, EventRingBuffer, JsonlSink, TelemetryEvent
from ..placement import PlacementProblem
from .errors import JobCancelled, JobTimeout, PayloadError

__all__ = [
    "JobState",
    "JobOptions",
    "JobRequest",
    "Job",
    "TERMINAL_STATES",
    "FLOW_STAGES",
    "BOARD_STAGES",
    "content_hash",
    "parse_job_payload",
]


class JobState:
    """The closed set of lifecycle states (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED}
)

#: Stage sequence of a full-flow (design) job, in execution order.
FLOW_STAGES: tuple[str, ...] = (
    "check",
    "sensitivity",
    "rules",
    "placement",
    "verification",
)

#: Stage sequence of a board (check + place + DRC) job.
BOARD_STAGES: tuple[str, ...] = ("check", "placement", "verification")

#: ``design.params`` keys a flow job may override (all numeric knobs of
#: :class:`~repro.converters.BuckConverterDesign`).
DESIGN_PARAM_KEYS = frozenset(
    {
        "input_voltage",
        "output_voltage",
        "output_current",
        "switching_frequency",
        "t_rise",
        "t_fall",
        "board_width",
        "board_height",
        "hot_loop_esl",
    }
)

_MAX_WORKERS = 8
_MAX_TIMEOUT_S = 3600.0
_MAX_BOARD_BYTES = 1 << 20


def content_hash(payload: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON form of a job payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="milliseconds")


@dataclass(frozen=True)
class JobOptions:
    """Validated flow options of one job (defaults match the CLI)."""

    workers: int = 1
    k_threshold: float = 0.01
    sensitivity_threshold_db: float = 3.0
    precheck: bool = True
    timeout_s: float = 300.0

    def to_dict(self) -> dict[str, Any]:
        """The snapshot/echo form (stable key set)."""
        return {
            "workers": self.workers,
            "k_threshold": self.k_threshold,
            "sensitivity_threshold_db": self.sensitivity_threshold_db,
            "precheck": self.precheck,
            "timeout_s": self.timeout_s,
        }


@dataclass(frozen=True)
class JobRequest:
    """A parsed, validated submission (see :func:`parse_job_payload`).

    Attributes:
        kind: ``"flow"`` (buck design through the full chain) or
            ``"board"`` (check + place + DRC of an ASCII board file).
        design_params: constructor overrides for the flow job's design.
        board_text: the ASCII problem text of a board job.
        options: validated flow options.
        digest: SHA-256 content hash of the raw payload.
    """

    kind: str
    options: JobOptions
    digest: str
    design_params: dict[str, float] = field(default_factory=dict)
    board_text: str = ""

    def build_design(self) -> BuckConverterDesign:
        """A fresh converter design for a flow job."""
        return BuckConverterDesign(**self.design_params)

    def build_problem(self) -> PlacementProblem:
        """A fresh placement problem for a board job."""
        return read_problem(self.board_text)

    def stage_plan(self) -> tuple[str, ...]:
        """The stages this job is expected to pass through, in order."""
        if self.kind == "board":
            return BOARD_STAGES
        if self.options.precheck:
            return FLOW_STAGES
        return FLOW_STAGES[1:]


def _require_mapping(value: Any, where: str) -> dict[str, Any]:
    if not isinstance(value, dict):
        raise PayloadError(f"{where} must be a JSON object, got {type(value).__name__}")
    return value


def _number(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PayloadError(f"{where} must be a number, got {type(value).__name__}")
    return float(value)


def _parse_options(data: dict[str, Any], default_timeout_s: float) -> JobOptions:
    raw = _require_mapping(data.get("options", {}), "options")
    known = {
        "workers",
        "k_threshold",
        "sensitivity_threshold_db",
        "precheck",
        "timeout_s",
    }
    unknown = sorted(set(raw) - known)
    if unknown:
        raise PayloadError(
            f"unknown options key(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    workers = raw.get("workers", 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise PayloadError("options.workers must be an integer")
    if not 1 <= workers <= _MAX_WORKERS:
        raise PayloadError(f"options.workers must be in [1, {_MAX_WORKERS}]")
    k_threshold = _number(raw.get("k_threshold", 0.01), "options.k_threshold")
    if not 0.0 < k_threshold <= 1.0:
        raise PayloadError("options.k_threshold must be in (0, 1]")
    sens = _number(
        raw.get("sensitivity_threshold_db", 3.0),
        "options.sensitivity_threshold_db",
    )
    precheck = raw.get("precheck", True)
    if not isinstance(precheck, bool):
        raise PayloadError("options.precheck must be a boolean")
    timeout_s = _number(raw.get("timeout_s", default_timeout_s), "options.timeout_s")
    if not 0.0 < timeout_s <= _MAX_TIMEOUT_S:
        raise PayloadError(f"options.timeout_s must be in (0, {_MAX_TIMEOUT_S:g}]")
    return JobOptions(
        workers=workers,
        k_threshold=k_threshold,
        sensitivity_threshold_db=sens,
        precheck=precheck,
        timeout_s=timeout_s,
    )


def _parse_design(data: dict[str, Any]) -> dict[str, float]:
    design = _require_mapping(data["design"], "design")
    unknown = sorted(set(design) - {"kind", "params"})
    if unknown:
        raise PayloadError(f"unknown design key(s): {', '.join(unknown)}")
    kind = design.get("kind", "buck")
    if kind != "buck":
        raise PayloadError(f"design.kind must be 'buck', got {kind!r}")
    params = _require_mapping(design.get("params", {}), "design.params")
    unknown = sorted(set(params) - DESIGN_PARAM_KEYS)
    if unknown:
        raise PayloadError(
            f"unknown design.params key(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(DESIGN_PARAM_KEYS))})"
        )
    values = {
        key: _number(value, f"design.params.{key}") for key, value in params.items()
    }
    try:
        BuckConverterDesign(**values)
    except ValueError as exc:
        raise PayloadError(f"invalid design parameters: {exc}") from exc
    return values


def _parse_board(data: dict[str, Any]) -> str:
    board = data["board"]
    if not isinstance(board, str) or not board.strip():
        raise PayloadError("board must be a non-empty string (ASCII problem text)")
    if len(board.encode("utf-8", errors="replace")) > _MAX_BOARD_BYTES:
        raise PayloadError(f"board text exceeds {_MAX_BOARD_BYTES} bytes")
    try:
        problem = read_problem(board)
    except AsciiFormatError as exc:
        raise PayloadError(f"board does not parse: {exc}") from exc
    report = run_checks(problem=problem, subject="payload.board")
    if report.errors():
        raise PayloadError(
            f"board fails the design check with {len(report.errors())} error(s)",
            check_report=report,
        )
    return board


def parse_job_payload(
    data: Any, default_timeout_s: float = 300.0
) -> JobRequest:
    """Validate a ``POST /jobs`` payload into a :class:`JobRequest`.

    Exactly one of ``design`` (flow job) and ``board`` (board job) must
    be present.  Board payloads are statically validated *here*, at
    submission time, so a broken board is rejected with the
    :class:`~repro.check.CheckReport` before it ever occupies a worker.

    Raises:
        PayloadError: on any shape, type, range or design-check problem.
    """
    data = _require_mapping(data, "payload")
    unknown = sorted(set(data) - {"design", "board", "options"})
    if unknown:
        raise PayloadError(
            f"unknown payload key(s): {', '.join(unknown)} "
            "(known: design, board, options)"
        )
    has_design = "design" in data
    has_board = "board" in data
    if has_design == has_board:
        raise PayloadError("payload must carry exactly one of 'design' or 'board'")
    options = _parse_options(data, default_timeout_s)
    digest = content_hash(data)
    if has_board:
        return JobRequest(
            kind="board",
            options=options,
            digest=digest,
            board_text=_parse_board(data),
        )
    return JobRequest(
        kind="flow",
        options=options,
        digest=digest,
        design_params=_parse_design(data),
    )


class _StageWatch:
    """Bus subscriber deriving the stage map from ``stage`` events.

    The snapshot endpoint's ``stages``/``progress`` fields come from
    here — the job's progress story is read off the same event stream
    the SSE endpoint serves, so the two can never disagree.
    """

    def __init__(self, plan: tuple[str, ...]):
        self._lock = threading.Lock()
        self._plan = plan
        self._status: dict[str, str] = {}
        self._current = ""

    def __call__(self, event: TelemetryEvent) -> None:
        if event.kind != "stage":
            return
        status = str(event.attrs.get("status", "start"))
        with self._lock:
            if status == "start":
                self._status.setdefault(event.name, "running")
                self._current = event.name
            else:
                self._status[event.name] = status
                if self._current == event.name:
                    self._current = ""

    def snapshot(self) -> tuple[dict[str, str], str, float]:
        """``(stage -> status, current stage, done fraction of the plan)``."""
        with self._lock:
            status = dict(self._status)
            current = self._current
        credit = {"done": 1.0, "running": 0.5, "error": 0.5}
        done = sum(credit.get(status.get(name, ""), 0.0) for name in self._plan)
        progress = done / len(self._plan) if self._plan else 0.0
        return status, current, progress


@dataclass
class Job:
    """One submitted job: request, lifecycle state and telemetry fabric.

    ``run_id`` is the job's correlation id, minted by the manager at
    submission and stamped onto the job's bus before any event flows —
    the same id lands in every telemetry event, the ``run_report.json``
    meta, the perf-relevant artifacts and the ``X-Repro-Run-Id`` HTTP
    header, so any artifact of a job joins to any other.
    """

    id: str
    seq: int
    request: JobRequest
    artifacts_dir: Path
    bus: EventBus
    ring: EventRingBuffer
    sink: JsonlSink
    run_id: str = ""
    state: str = JobState.QUEUED
    submitted_at: str = field(default_factory=_utc_now)
    started_at: str | None = None
    finished_at: str | None = None
    queue_wait_s: float | None = None
    error: dict[str, str] | None = None
    result: dict[str, Any] | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _cancel: threading.Event = field(default_factory=threading.Event, repr=False)
    _deadline: float | None = field(default=None, repr=False)
    _queued_monotonic: float = field(default_factory=time.monotonic, repr=False)
    _watch: _StageWatch = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._watch = _StageWatch(self.request.stage_plan())
        if self.run_id and not self.bus.run_id:
            self.bus.run_id = self.run_id
        self.bus.subscribe(self.ring)
        self.bus.subscribe(self.sink)
        self.bus.subscribe(self._watch)
        self.bus.publish(
            "log",
            "service.job_queued",
            attrs={"job_id": self.id, "kind": self.request.kind},
        )

    # -- lifecycle ---------------------------------------------------------

    def mark_running(self) -> bool:
        """``queued -> running`` (False when the job was cancelled first).

        Stamps :attr:`queue_wait_s` — the monotonic delta between
        submission and worker pickup — for the snapshot, the
        ``service.job_queue_wait_s`` gauge and the queue-wait histogram.
        """
        with self._lock:
            if self.state != JobState.QUEUED:
                return False
            self.state = JobState.RUNNING
            self.started_at = _utc_now()
            self.queue_wait_s = time.monotonic() - self._queued_monotonic
            self._deadline = time.monotonic() + self.request.options.timeout_s
        self.bus.publish(
            "log",
            "service.job_started",
            attrs={"job_id": self.id, "queue_wait_s": self.queue_wait_s},
        )
        return True

    def finish(
        self,
        state: str,
        error: dict[str, str] | None = None,
        result: dict[str, Any] | None = None,
    ) -> None:
        """Enter a terminal state (idempotent; the first transition wins)."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            if self.state in TERMINAL_STATES:
                return
            self.state = state
            self.finished_at = _utc_now()
            self.error = error
            if result is not None:
                self.result = result
        self.bus.publish(
            "log",
            "service.job_finished",
            attrs={"job_id": self.id, "state": state},
        )

    def request_cancel(self) -> bool:
        """Flag the job for cancellation.

        A queued job transitions to ``cancelled`` immediately; a running
        job stops at its next stage checkpoint.  Returns False when the
        job is already terminal.
        """
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            was_queued = self.state == JobState.QUEUED
        self._cancel.set()
        if was_queued:
            self.finish(
                JobState.CANCELLED,
                error={"kind": "cancelled", "message": "cancelled while queued"},
            )
        return True

    @property
    def cancel_event(self) -> threading.Event:
        """The cancellation flag (set by ``DELETE``, polled by the runner)."""
        return self._cancel

    def checkpoint(self) -> None:
        """Raise if the job must stop (called between flow stages).

        Raises:
            JobCancelled: cancellation was requested.
            JobTimeout: the per-job deadline has passed.
        """
        if self._cancel.is_set():
            raise JobCancelled(f"job {self.id} cancelled")
        deadline = self._deadline
        if deadline is not None and time.monotonic() > deadline:
            raise JobTimeout(
                f"job {self.id} exceeded its {self.request.options.timeout_s:g} s timeout"
            )

    def is_terminal(self) -> bool:
        """Whether the job reached a terminal state."""
        with self._lock:
            return self.state in TERMINAL_STATES

    def elapsed_since_submit_s(self) -> float:
        """Monotonic seconds since submission (end-to-end latency base)."""
        return time.monotonic() - self._queued_monotonic

    # -- artifacts & snapshots ---------------------------------------------

    def artifact_names(self) -> list[str]:
        """Sorted file names currently present in the artifact directory."""
        if not self.artifacts_dir.is_dir():
            return []
        return sorted(p.name for p in self.artifacts_dir.iterdir() if p.is_file())

    def snapshot(self) -> dict[str, Any]:
        """The ``GET /jobs/{id}`` JSON body (derived, never cached)."""
        with self._lock:
            state = self.state
            started = self.started_at
            finished = self.finished_at
            queue_wait = self.queue_wait_s
            error = dict(self.error) if self.error else None
            result = dict(self.result) if self.result else None
        stages, current, progress = self._watch.snapshot()
        return {
            "id": self.id,
            "run_id": self.run_id,
            "kind": self.request.kind,
            "state": state,
            "content_hash": self.request.digest,
            "submitted_at": self.submitted_at,
            "queued_at": self.submitted_at,
            "started_at": started,
            "finished_at": finished,
            "queue_wait_s": queue_wait,
            "options": self.request.options.to_dict(),
            "stages": stages,
            "current_stage": current,
            "progress": round(progress, 4),
            "error": error,
            "result": result,
            "artifacts": self.artifact_names(),
            "last_seq": self.bus.last_seq,
            "events_dropped": self.ring.dropped,
        }
