"""Service-level counters and gauges, exported through the obs stack.

The per-job story is already covered by each job's own tracer and event
stream; this module aggregates the *fleet* view — queue depth, worker
utilisation, lifetime job counts, shared-cache hit totals — behind one
thread-safe :class:`ServiceMetrics`.

There is deliberately no second exposition-format implementation: the
metrics freeze into a :class:`~repro.obs.RunReport` (counters on a
synthetic ``service`` root span, gauges as report gauges) and
``GET /metrics`` renders that report through the *existing*
:func:`repro.obs.to_prometheus` exporter — the same golden-tested path
``repro-emi perf export --format prometheus`` uses.

Catalogue (names as they appear in the exposition):

=============================  =======  ====================================
``service.jobs_submitted``     counter  accepted ``POST /jobs`` submissions
``service.jobs_completed``     counter  jobs that reached ``succeeded``
``service.jobs_failed``        counter  jobs that reached ``failed``
``service.jobs_cancelled``     counter  jobs that reached ``cancelled``
``service.jobs_rejected``      counter  submissions refused with 4xx/5xx
``service.http_requests``      counter  HTTP requests served (all routes)
``service.sse_streams``        counter  ``/events`` streams opened
``service.cache_hits``         counter  shared coupling-cache hits (all jobs)
``service.cache_misses``       counter  shared coupling-cache field solves
``service.queue_depth``        gauge    jobs waiting in the queue
``service.jobs_running``       gauge    jobs currently executing
``service.workers_busy``       gauge    pool threads executing a job
``service.workers_total``      gauge    pool size
``service.uptime_s``           gauge    seconds since the service started
=============================  =======  ====================================
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..obs import RunReport, Span, to_prometheus

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe counter/gauge registry for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._t0 = time.monotonic()

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to a named counter (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to an absolute value (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def adjust_gauge(self, name: str, delta: float) -> None:
        """Add ``delta`` to a gauge (atomic read-modify-write)."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        """Current value of a gauge (0 when never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{"counters": {...}, "gauges": {...}}`` (uptime included)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
        gauges["service.uptime_s"] = time.monotonic() - self._t0
        return {"counters": counters, "gauges": gauges}

    def run_report(self, meta: dict[str, Any] | None = None) -> RunReport:
        """Freeze the current state into a :class:`~repro.obs.RunReport`.

        Counters land on a synthetic ``service`` root span so the
        standard exporter renders them as ``counter_total`` samples.
        """
        state = self.snapshot()
        root = Span("service")
        root.count = 1
        root.counters = dict(state["counters"])
        report_meta = {"command": "serve"}
        if meta:
            report_meta.update(meta)
        return RunReport(root=root, gauges=dict(state["gauges"]), meta=report_meta)

    def prometheus(self, meta: dict[str, Any] | None = None) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition)."""
        return to_prometheus(self.run_report(meta))
