"""Service-level counters and gauges, exported through the obs stack.

The per-job story is already covered by each job's own tracer and event
stream; this module aggregates the *fleet* view — queue depth, worker
utilisation, lifetime job counts, shared-cache hit totals — behind one
thread-safe :class:`ServiceMetrics`.

There is deliberately no second exposition-format implementation: the
metrics freeze into a :class:`~repro.obs.RunReport` (counters on a
synthetic ``service`` root span, gauges as report gauges) and
``GET /metrics`` renders that report through the *existing*
:func:`repro.obs.to_prometheus` exporter — the same golden-tested path
``repro-emi perf export --format prometheus`` uses.

Catalogue (names as they appear in the exposition):

=============================  =======  ====================================
``service.jobs_submitted``     counter  accepted ``POST /jobs`` submissions
``service.jobs_completed``     counter  jobs that reached ``succeeded``
``service.jobs_failed``        counter  jobs that reached ``failed``
``service.jobs_cancelled``     counter  jobs that reached ``cancelled``
``service.jobs_rejected``      counter  submissions refused with 4xx/5xx
``service.http_requests``      counter  HTTP requests served (all routes)
``service.sse_streams``        counter  ``/events`` streams opened
``service.cache_hits``         counter  shared coupling-cache hits (all jobs)
``service.cache_misses``       counter  shared coupling-cache field solves
``service.queue_depth``        gauge    jobs waiting in the queue
``service.jobs_running``       gauge    jobs currently executing
``service.workers_busy``       gauge    pool threads executing a job
``service.workers_total``      gauge    pool size
``service.job_queue_wait_s``   gauge    queue wait of the last started job
``service.uptime_s``           gauge    seconds since the service started
=============================  =======  ====================================

Latency distributions are :class:`~repro.obs.Histogram` metrics recorded
via :meth:`ServiceMetrics.observe` and exported as proper Prometheus
histogram families through the same single exposition path:

==================================  =====================================
``service.queue_wait_seconds``      submission → worker pickup per job
``service.job_latency_seconds``     submission → terminal state per job
``service.sse_flush_seconds``       one SSE event-batch write + flush
==================================  =====================================
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..obs import Histogram, RunReport, Span, to_prometheus

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe counter/gauge registry for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._t0 = time.monotonic()

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to a named counter (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to an absolute value (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def adjust_gauge(self, name: str, delta: float) -> None:
        """Add ``delta`` to a gauge (atomic read-modify-write)."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram.

        Histograms are created on first use with the shared default
        log-spaced boundaries (:data:`~repro.obs.DEFAULT_BUCKETS`), the
        same contract as :meth:`~repro.obs.Tracer.observe`.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(name)
                self._histograms[name] = hist
            hist.observe(float(value))

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        """Current value of a gauge (0 when never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{"counters": {...}, "gauges": {...}}`` (uptime included)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
        gauges["service.uptime_s"] = time.monotonic() - self._t0
        return {"counters": counters, "gauges": gauges}

    def histogram_summaries(self) -> dict[str, dict[str, Any]]:
        """Per-histogram ``{count, sum, p50, p95, p99, buckets}`` view.

        The ``buckets`` list carries ``[le_label, cumulative_count]``
        pairs (ending at ``+Inf``) — the chartable form the
        ``GET /stats`` endpoint serves to the dashboard.
        """
        with self._lock:
            histograms = {
                name: hist for name, hist in self._histograms.items()
                if hist.count > 0
            }
            out: dict[str, dict[str, Any]] = {}
            for name in sorted(histograms):
                hist = histograms[name]
                summary = hist.snapshot()
                summary["buckets"] = [
                    [le, count] for le, count in hist.cumulative()
                ]
                out[name] = summary
        return out

    def run_report(self, meta: dict[str, Any] | None = None) -> RunReport:
        """Freeze the current state into a :class:`~repro.obs.RunReport`.

        Counters land on a synthetic ``service`` root span so the
        standard exporter renders them as ``counter_total`` samples;
        histograms ride the report's ``histograms`` mapping and come out
        of :func:`~repro.obs.to_prometheus` as ``_bucket``/``_sum``/
        ``_count`` families.
        """
        state = self.snapshot()
        root = Span("service")
        root.count = 1
        root.counters = dict(state["counters"])
        report_meta = {"command": "serve"}
        if meta:
            report_meta.update(meta)
        with self._lock:
            histograms = dict(self._histograms)
        return RunReport(
            root=root,
            gauges=dict(state["gauges"]),
            meta=report_meta,
            histograms=histograms,
        )

    def prometheus(self, meta: dict[str, Any] | None = None) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition)."""
        return to_prometheus(self.run_report(meta))
