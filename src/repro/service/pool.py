"""The bounded worker pool draining the job queue.

Plain ``threading.Thread`` workers over a ``queue.Queue`` — no executor
abstraction, because the pool's whole contract is lifecycle: workers are
non-daemon and :meth:`WorkerPool.stop` always joins them, so a service
shutdown provably leaves no job mid-write.  Two shutdown modes:

* **drain** (the default) — stop accepting, let every queued and
  running job finish, then join;
* **abort** — flag every queued *and running* job for cancellation
  (running jobs stop at their next stage checkpoint), then join.

Queue depth and worker utilisation are exported live via
:class:`~repro.service.metrics.ServiceMetrics`
(``service.queue_depth`` / ``service.workers_busy``).
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable

from .errors import ServiceClosedError
from .jobs import Job
from .metrics import ServiceMetrics

__all__ = ["WorkerPool"]


class WorkerPool:
    """Fixed-size thread pool executing jobs in submission order."""

    def __init__(
        self,
        workers: int,
        handler: Callable[[Job], None],
        metrics: ServiceMetrics,
        max_queued: int = 64,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._handler = handler
        self._metrics = metrics
        self._max_queued = max_queued
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._lock = threading.Lock()
        self._accepting = True
        self._queued: list[Job] = []
        self._running: dict[str, Job] = {}
        metrics.set_gauge("service.workers_total", float(workers))
        metrics.set_gauge("service.workers_busy", 0.0)
        metrics.set_gauge("service.queue_depth", 0.0)
        metrics.set_gauge("service.jobs_running", 0.0)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"emi-svc-worker-{i}", daemon=False
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue a job for execution.

        Raises:
            ServiceClosedError: after :meth:`stop` began (503-shaped) or
                when the queue bound is reached (429-shaped,
                ``retryable=True``).
        """
        with self._lock:
            if not self._accepting:
                raise ServiceClosedError("service is shutting down")
            if len(self._queued) >= self._max_queued:
                raise ServiceClosedError(
                    f"job queue is full ({self._max_queued} waiting)",
                    retryable=True,
                )
            self._queued.append(job)
            depth = len(self._queued)
        self._metrics.set_gauge("service.queue_depth", float(depth))
        self._queue.put(job)

    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a worker."""
        with self._lock:
            return len(self._queued)

    def running_ids(self) -> set[str]:
        """Ids of jobs currently executing."""
        with self._lock:
            return set(self._running)

    def idle(self) -> bool:
        """True when nothing is queued and nothing is running."""
        with self._lock:
            return not self._queued and not self._running

    # -- the worker loop ---------------------------------------------------

    def _worker(self) -> None:
        queued, running_map = self._queued, self._running
        set_gauge = self._metrics.set_gauge
        adjust_gauge = self._metrics.adjust_gauge
        while True:
            job = self._queue.get()
            if job is None:
                break
            with self._lock:
                if job in queued:
                    queued.remove(job)
                depth = len(queued)
                running_map[job.id] = job
                running = len(running_map)
            set_gauge("service.queue_depth", float(depth))
            set_gauge("service.jobs_running", float(running))
            adjust_gauge("service.workers_busy", 1.0)
            try:
                self._handler(job)
            finally:
                with self._lock:
                    running_map.pop(job.id, None)
                    running = len(running_map)
                set_gauge("service.jobs_running", float(running))
                adjust_gauge("service.workers_busy", -1.0)

    # -- shutdown ----------------------------------------------------------

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the pool and join every worker (idempotent).

        Args:
            drain: when True, queued jobs still run to completion; when
                False, queued and running jobs are flagged for
                cancellation first (running jobs stop at their next
                stage checkpoint).
            timeout: per-thread join timeout [s] (``None`` waits
                indefinitely — jobs are finite by construction thanks to
                the per-job timeout).
        """
        with self._lock:
            already_stopped = not self._accepting
            self._accepting = False
            to_cancel = (
                [] if drain else list(self._queued) + list(self._running.values())
            )
        for job in to_cancel:
            job.request_cancel()
        if not already_stopped:
            for _ in self._threads:
                self._queue.put(None)
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=timeout)
