"""The HTTP/JSON shell: stdlib ``ThreadingHTTPServer`` over the manager.

Routes (full reference with payloads in ``docs/SERVICE.md``):

====== =============================== =====================================
POST   ``/jobs``                       submit a job (202; 400/429/503)
GET    ``/jobs``                       list every job snapshot
GET    ``/jobs/{id}``                  one job snapshot (404)
DELETE ``/jobs/{id}``                  request cancellation (404)
GET    ``/jobs/{id}/events``           live SSE stream (``?since=SEQ`` or
                                       ``Last-Event-ID`` resume cursor)
GET    ``/jobs/{id}/artifacts``        artifact name list
GET    ``/jobs/{id}/artifacts/{name}`` one artifact's bytes (404)
GET    ``/metrics``                    Prometheus text exposition
GET    ``/stats``                      JSON aggregation for the dashboard
GET    ``/dashboard``                  self-contained live HTML dashboard
GET    ``/healthz``                    liveness probe
====== =============================== =====================================

Every job-scoped response (the ``POST /jobs`` 202, job snapshots,
cancellation) carries the job's run-correlation id in an
``X-Repro-Run-Id`` header — the same id stamped into the job's
``RunReport.meta``, every telemetry event, and its artifact stream.

The SSE stream is backed by the job's
:class:`~repro.obs.EventRingBuffer` ``since()`` cursor: each telemetry
event goes out as one ``event: telemetry`` frame whose ``id:`` is the
bus sequence number, so reconnecting clients resume gap-free via
``Last-Event-ID`` as long as the ring has not overflowed (a consumer
that does fall behind sees the seq jump).  When the job reaches a
terminal state the stream closes with one final ``event: end`` frame
carrying the job snapshot.

Every handler thread is a ``ThreadingHTTPServer`` daemon thread; the
blocking SSE loop additionally watches the server's ``stopping`` flag so
a graceful shutdown is never held open by an idle subscriber.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .config import ServiceConfig
from .dashboard import render_dashboard_html
from .errors import PayloadError, ServiceClosedError, UnknownJobError
from .jobs import Job
from .manager import JobManager

__all__ = ["EmiServiceServer", "EmiService", "ServiceRequestHandler"]

_MAX_BODY_BYTES = 4 << 20

_ARTIFACT_TYPES = {
    ".json": "application/json",
    ".jsonl": "application/x-ndjson",
    ".svg": "image/svg+xml",
    ".html": "text/html; charset=utf-8",
    ".md": "text/markdown; charset=utf-8",
    ".csv": "text/csv",
    ".txt": "text/plain; charset=utf-8",
}

_JOB_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9-]+)$")
_EVENTS_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9-]+)/events$")
_ARTIFACTS_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9-]+)/artifacts$")
_ARTIFACT_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9-]+)/artifacts/([A-Za-z0-9._-]+)$")


class EmiServiceServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the manager and shutdown flag."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServiceConfig, manager: JobManager | None = None):
        self.config = config
        self.manager = manager if manager is not None else JobManager(config)
        #: Set when a graceful shutdown begins; SSE loops observe it.
        self.stopping = threading.Event()
        super().__init__((config.host, config.port), ServiceRequestHandler)

    @property
    def url(self) -> str:
        """The reachable base URL (real port, also when bound to 0)."""
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the :class:`JobManager` API."""

    server: EmiServiceServer
    protocol_version = "HTTP/1.1"
    server_version = "repro-emi-service"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (metrics count instead)."""

    # -- plumbing ----------------------------------------------------------

    def _send_json(
        self,
        code: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _run_id_headers(job: Job) -> dict[str, str] | None:
        return {"X-Repro-Run-Id": job.run_id} if job.run_id else None

    def _send_error_json(self, code: int, message: str, **extra: Any) -> None:
        self._send_json(code, {"error": message, **extra})

    def _count(self) -> None:
        self.server.manager.metrics.inc("service.http_requests")

    def _job_or_404(self, job_id: str) -> Job | None:
        try:
            return self.server.manager.get(job_id)
        except UnknownJobError:
            self._send_error_json(404, f"unknown job id {job_id!r}")
            return None

    def _stats_payload(self, last_n: int = 20) -> dict[str, Any]:
        """The ``GET /stats`` aggregation the dashboard polls.

        One JSON document carrying the counter/gauge snapshot, every
        non-empty latency histogram in chartable form, the shared-cache
        hit ratio, and the last ``last_n`` job snapshots (newest first).
        """
        manager = self.server.manager
        state = manager.metrics.snapshot()
        counters = state["counters"]
        hits = counters.get("service.cache_hits", 0.0)
        misses = counters.get("service.cache_misses", 0.0)
        lookups = hits + misses
        jobs = manager.jobs()
        return {
            "counters": counters,
            "gauges": state["gauges"],
            "histograms": manager.metrics.histogram_summaries(),
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_ratio": (hits / lookups) if lookups else None,
            },
            "jobs": [job.snapshot() for job in jobs[-last_n:]][::-1],
            "jobs_total": len(jobs),
        }

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._count()
        split = urlsplit(self.path)
        path = split.path
        if path == "/healthz":
            manager = self.server.manager
            self._send_json(
                200,
                {
                    "status": "shutting-down" if manager.closed else "ok",
                    "jobs": len(manager.jobs()),
                },
            )
            return
        if path == "/metrics":
            body = self.server.manager.metrics.prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path == "/stats":
            self._send_json(200, self._stats_payload())
            return
        if path == "/dashboard":
            body = render_dashboard_html(
                title="repro-emi service", stats=self._stats_payload()
            ).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path == "/jobs":
            snapshots = [job.snapshot() for job in self.server.manager.jobs()]
            self._send_json(200, {"jobs": snapshots})
            return
        match = _JOB_ROUTE.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is not None:
                self._send_json(200, job.snapshot(), headers=self._run_id_headers(job))
            return
        match = _EVENTS_ROUTE.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is not None:
                self._stream_events(job, urlsplit(self.path).query)
            return
        match = _ARTIFACTS_ROUTE.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is not None:
                self._send_json(200, {"artifacts": job.artifact_names()})
            return
        match = _ARTIFACT_ROUTE.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is not None:
                self._send_artifact(job, match.group(2))
            return
        self._send_error_json(404, f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._count()
        if urlsplit(self.path).path != "/jobs":
            self._send_error_json(404, f"no route for POST {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(411, "Content-Length required")
            return
        if length <= 0:
            self._send_error_json(411, "Content-Length required")
            return
        if length > _MAX_BODY_BYTES:
            self._send_error_json(413, f"body exceeds {_MAX_BODY_BYTES} bytes")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"body is not valid JSON: {exc}")
            return
        manager = self.server.manager
        try:
            job = manager.submit(payload)
        except PayloadError as exc:
            extra: dict[str, Any] = {}
            if exc.check_report is not None:
                extra["check_report"] = exc.check_report.to_dict()
            self._send_error_json(400, str(exc), **extra)
            return
        except ServiceClosedError as exc:
            manager.metrics.inc("service.jobs_rejected")
            self._send_error_json(429 if exc.retryable else 503, str(exc))
            return
        self._send_json(202, job.snapshot(), headers=self._run_id_headers(job))

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._count()
        match = _JOB_ROUTE.match(urlsplit(self.path).path)
        if not match:
            self._send_error_json(404, f"no route for DELETE {self.path}")
            return
        job = self._job_or_404(match.group(1))
        if job is not None:
            job = self.server.manager.cancel(job.id)
            self._send_json(200, job.snapshot(), headers=self._run_id_headers(job))

    # -- artifacts ---------------------------------------------------------

    def _send_artifact(self, job: Job, name: str) -> None:
        # The allow-list lookup (not path joining) is the traversal guard.
        if name not in job.artifact_names():
            self._send_error_json(404, f"job {job.id} has no artifact {name!r}")
            return
        path = job.artifacts_dir / name
        try:
            body = path.read_bytes()
        except OSError as exc:
            self._send_error_json(500, f"cannot read artifact: {exc}")
            return
        content_type = _ARTIFACT_TYPES.get(path.suffix, "application/octet-stream")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- SSE ---------------------------------------------------------------

    def _stream_events(self, job: Job, query: str) -> None:
        manager = self.server.manager
        manager.metrics.inc("service.sse_streams")
        cursor = 0
        params = parse_qs(query)
        if "since" in params:
            try:
                cursor = int(params["since"][0])
            except ValueError:
                self._send_error_json(400, "since must be an integer sequence number")
                return
        elif self.headers.get("Last-Event-ID"):
            try:
                cursor = int(str(self.headers.get("Last-Event-ID")))
            except ValueError:
                cursor = 0
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        poll_s = self.server.config.sse_poll_s
        write, raw_flush = self.wfile.write, self.wfile.flush
        monotonic = time.monotonic
        observe = manager.metrics.observe

        def flush() -> None:
            t0 = monotonic()
            raw_flush()
            observe("service.sse_flush_seconds", monotonic() - t0)
        last_write = monotonic()
        try:
            while True:
                events = job.ring.since(cursor)
                for event in events:
                    data = json.dumps(event.to_dict(), sort_keys=True)
                    frame = f"id: {event.seq}\nevent: telemetry\ndata: {data}\n\n"
                    write(frame.encode("utf-8"))
                    cursor = event.seq
                if events:
                    flush()
                    last_write = monotonic()
                if job.is_terminal() and not job.ring.since(cursor):
                    snapshot = json.dumps(job.snapshot(), sort_keys=True)
                    write(f"event: end\ndata: {snapshot}\n\n".encode())
                    flush()
                    return
                if self.server.stopping.is_set():
                    write(b": server shutting down\n\n")
                    flush()
                    return
                if monotonic() - last_write > 10.0:
                    write(b": keep-alive\n\n")
                    flush()
                    last_write = monotonic()
                time.sleep(poll_s)
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; nothing to clean up


class EmiService:
    """Owns one server + its serving thread: the embeddable entry point.

    Usage (tests, the smoke harness, the example client)::

        service = EmiService(ServiceConfig(port=0, ...))
        url = service.start()
        ...  # talk HTTP to url
        service.stop()  # drains jobs, joins workers, closes the socket
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.server = EmiServiceServer(self.config)
        self._thread: threading.Thread | None = None

    @property
    def manager(self) -> JobManager:
        """The underlying job manager (for in-process orchestration)."""
        return self.server.manager

    @property
    def url(self) -> str:
        """The reachable base URL."""
        return self.server.url

    def start(self) -> str:
        """Serve in a background thread; returns the base URL."""
        if self._thread is not None:
            return self.url
        thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="emi-svc-http",
            daemon=False,
        )
        self._thread = thread
        thread.start()
        return self.url

    def stop(self, drain: bool | None = None, timeout: float | None = None) -> None:
        """Graceful shutdown: drain jobs, then stop serving (idempotent).

        The manager closes *first* so SSE subscribers observe their
        job's terminal event before the listener goes away; the
        ``stopping`` flag unblocks any stream that would otherwise wait
        forever.
        """
        self.server.stopping.set()
        self.manager.close(drain=drain, timeout=timeout)
        self.server.shutdown()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None
        self.server.server_close()
