"""EMI-design-as-a-service: an async job layer over ``EmiDesignFlow``.

The package turns the library's design flow into a long-running service:
jobs are submitted as JSON payloads (a buck-converter parameter set or
an ASCII board), validated up front, executed by a bounded worker pool,
and observable live — every job gets its own telemetry fabric
(:class:`~repro.obs.EventBus` + ring buffer + JSONL sink) streamed over
Server-Sent Events, plus a content-addressed artifact directory holding
the run report, flight recorder, SVGs and result summary.

Layering: ``service`` sits directly below ``cli`` and above ``core`` —
the HTTP shell (:mod:`repro.service.http`) is a thin translation over
:class:`~repro.service.manager.JobManager`, which tests and embedders
can drive directly.  Start here::

    from repro.service import EmiService, ServiceConfig

    service = EmiService(ServiceConfig(port=0))
    url = service.start()   # e.g. http://127.0.0.1:43117
    ...
    service.stop()          # drains in-flight jobs, joins workers

or from a shell: ``repro-emi serve``.  The full API reference lives in
``docs/SERVICE.md``.
"""

from .config import ServiceConfig, default_data_dir
from .dashboard import render_dashboard_html
from .errors import (
    JobCancelled,
    JobTimeout,
    PayloadError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)
from .http import EmiService, EmiServiceServer
from .jobs import (
    FLOW_STAGES,
    TERMINAL_STATES,
    Job,
    JobOptions,
    JobRequest,
    JobState,
    content_hash,
    parse_job_payload,
)
from .manager import JobManager
from .metrics import ServiceMetrics
from .pool import WorkerPool
from .runner import JobRunner

__all__ = [
    "FLOW_STAGES",
    "TERMINAL_STATES",
    "EmiService",
    "EmiServiceServer",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobOptions",
    "JobRequest",
    "JobRunner",
    "JobState",
    "JobTimeout",
    "PayloadError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "UnknownJobError",
    "WorkerPool",
    "content_hash",
    "default_data_dir",
    "parse_job_payload",
    "render_dashboard_html",
]
