"""The live service dashboard: one self-contained HTML page.

``GET /dashboard`` serves this page with the *current* ``/stats``
aggregation embedded as a bootstrap JSON block — the raw HTML therefore
already carries real queue/latency numbers (curl-able, archivable, no
JavaScript required to read the percentiles) — and a small inline script
then re-polls ``GET /stats`` every two seconds to keep the view live.

Like the flight recorder (:mod:`repro.obs.flight`) the page has zero
external dependencies: no CDN fonts, no chart library, no framework.
Styling follows the repo's dashboard conventions: ink/surface design
tokens with an automatic dark mode, one blue series hue for the
single-series latency histograms (status colors are reserved for job
states and always paired with a glyph, never color alone), thin bars
with rounded data-ends and 2px surface gaps, and a hover tooltip layer.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any

__all__ = ["render_dashboard_html"]


def render_dashboard_html(
    title: str = "repro-emi service",
    stats: dict[str, Any] | None = None,
) -> str:
    """Render the dashboard page.

    Args:
        title: page heading.
        stats: the ``GET /stats`` payload to embed as the bootstrap
            snapshot; ``None`` embeds an empty snapshot (the page then
            fills in on its first poll).

    Returns:
        A complete, self-contained HTML document.
    """
    payload = stats if stats is not None else {}
    bootstrap = json.dumps(payload, sort_keys=True).replace("</", "<\\/")
    return (
        _PAGE.replace("__TITLE__", _html.escape(title))
        .replace("__BOOTSTRAP__", bootstrap)
    )


_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__ — dashboard</title>
<style>
  :root {
    color-scheme: light;
    --page: #f9f9f7; --surface: #fcfcfb;
    --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
    --grid: #e1e0d9; --baseline: #c3c2b7;
    --border: rgba(11, 11, 11, 0.10);
    --series: #2a78d6; --track: #cde2fb;
    --good: #0ca30c; --critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --page: #0d0d0d; --surface: #1a1a19;
      --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
      --grid: #2c2c2a; --baseline: #383835;
      --border: rgba(255, 255, 255, 0.10);
      --series: #3987e5; --track: #0d366b;
      --good: #0ca30c; --critical: #d03b3b;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 20px 24px 40px; background: var(--page);
    color: var(--ink);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 2px; }
  .sub { color: var(--muted); font-size: 12px; margin-bottom: 18px; }
  h2 {
    font-size: 12px; font-weight: 600; color: var(--ink-2);
    text-transform: uppercase; letter-spacing: 0.06em; margin: 26px 0 10px;
  }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
  .tile {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; min-width: 150px; flex: 0 1 auto;
  }
  .tile .label { color: var(--ink-2); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .note { color: var(--muted); font-size: 11px; margin-top: 2px; }
  .meter {
    height: 6px; border-radius: 3px; background: var(--track);
    margin-top: 8px; overflow: hidden;
  }
  .meter > div { height: 100%; background: var(--series); border-radius: 3px; }
  .cards { display: flex; flex-wrap: wrap; gap: 12px; }
  .card {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px 10px; flex: 0 1 auto;
  }
  .card .name { font-size: 13px; font-weight: 600; }
  .card .pcts { color: var(--ink-2); font-size: 12px; margin: 2px 0 8px; }
  .card .pcts b { color: var(--ink); font-weight: 600; font-variant-numeric: tabular-nums; }
  .axis { display: flex; justify-content: space-between; color: var(--muted);
          font-size: 10px; font-variant-numeric: tabular-nums; margin-top: 2px; }
  svg .bar { fill: var(--series); }
  svg .hit { fill: transparent; }
  svg .base { stroke: var(--baseline); stroke-width: 1; }
  table { border-collapse: collapse; width: 100%; background: var(--surface);
          border: 1px solid var(--border); border-radius: 8px; overflow: hidden; }
  th, td { text-align: left; padding: 7px 12px; font-size: 13px;
           border-top: 1px solid var(--grid); white-space: nowrap; }
  th { color: var(--ink-2); font-size: 11px; text-transform: uppercase;
       letter-spacing: 0.05em; border-top: none; }
  td.num { font-variant-numeric: tabular-nums; }
  td .runid { color: var(--muted); font-size: 11px; }
  a { color: var(--series); text-decoration: none; }
  a:hover { text-decoration: underline; }
  .state { display: inline-flex; align-items: center; gap: 5px; }
  .state .dot { font-size: 12px; }
  .state.succeeded .dot { color: var(--good); }
  .state.failed .dot, .state.cancelled .dot { color: var(--critical); }
  .state.running .dot { color: var(--series); }
  .state.queued .dot { color: var(--muted); }
  .empty { color: var(--muted); font-size: 13px; padding: 8px 2px; }
  #tooltip {
    position: fixed; display: none; pointer-events: none; z-index: 10;
    background: var(--surface); color: var(--ink); border: 1px solid var(--border);
    border-radius: 6px; box-shadow: 0 2px 8px rgba(0,0,0,0.18);
    padding: 5px 9px; font-size: 12px; font-variant-numeric: tabular-nums;
  }
  #stale { color: var(--critical); font-size: 12px; display: none; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div class="sub">live dashboard · polls <code>/stats</code> every 2&thinsp;s ·
  <a href="metrics">/metrics</a> · <a href="stats">/stats</a> · <a href="jobs">/jobs</a>
  <span id="stale">· poll failed — showing last snapshot</span></div>

<h2>Service</h2>
<div class="tiles" id="tiles"></div>

<h2>Latency histograms</h2>
<div class="cards" id="hists"><div class="empty">No observations yet.</div></div>

<h2>Recent jobs</h2>
<div id="jobs"><div class="empty">No jobs submitted yet.</div></div>

<div id="tooltip"></div>
<script id="bootstrap" type="application/json">__BOOTSTRAP__</script>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const tooltip = $("tooltip");

function el(tag, attrs, ...children) {
  const node = document.createElement(tag);
  for (const [k, v] of Object.entries(attrs || {})) {
    if (k === "class") node.className = v; else node.setAttribute(k, v);
  }
  for (const child of children) {
    node.append(child);
  }
  return node;
}

function fmtSeconds(v) {
  if (!isFinite(v)) return "–";
  if (v === 0) return "0 s";
  if (v < 1e-3) return (v * 1e6).toPrecision(3) + " µs";
  if (v < 1) return (v * 1e3).toPrecision(3) + " ms";
  return v.toFixed(v < 10 ? 3 : 1) + " s";
}

function fmtCount(v) { return Number(v).toLocaleString("en-US"); }

function tile(label, value, note, fraction) {
  const t = el("div", {class: "tile"},
    el("div", {class: "label"}, label),
    el("div", {class: "value"}, value));
  if (note) t.append(el("div", {class: "note"}, note));
  if (fraction !== undefined) {
    const fill = el("div", {});
    fill.style.width = Math.max(0, Math.min(1, fraction)) * 100 + "%";
    t.append(el("div", {class: "meter"}, fill));
  }
  return t;
}

function renderTiles(data) {
  const c = data.counters || {}, g = data.gauges || {};
  const busy = g["service.workers_busy"] || 0;
  const total = g["service.workers_total"] || 0;
  const cache = data.cache || {};
  const ratio = cache.hit_ratio;
  const box = $("tiles");
  box.replaceChildren(
    tile("Queue depth", fmtCount(g["service.queue_depth"] || 0),
         "waiting for a worker"),
    tile("Workers busy", fmtCount(busy) + " / " + fmtCount(total),
         "utilisation", total ? busy / total : 0),
    tile("Jobs running", fmtCount(g["service.jobs_running"] || 0),
         fmtCount(c["service.jobs_submitted"] || 0) + " submitted"),
    tile("Completed", fmtCount(c["service.jobs_completed"] || 0),
         fmtCount(c["service.jobs_failed"] || 0) + " failed · " +
         fmtCount(c["service.jobs_cancelled"] || 0) + " cancelled"),
    tile("Cache hit ratio",
         ratio === null || ratio === undefined ? "–" : (ratio * 100).toFixed(1) + "%",
         fmtCount(cache.hits || 0) + " hits / " + fmtCount(cache.misses || 0) + " misses",
         ratio === null || ratio === undefined ? undefined : ratio),
    tile("Uptime", fmtSeconds(g["service.uptime_s"] || 0),
         fmtCount(c["service.http_requests"] || 0) + " HTTP requests"));
}

function showTip(evt, text) {
  tooltip.textContent = text;
  tooltip.style.display = "block";
  tooltip.style.left = Math.min(evt.clientX + 12, window.innerWidth - 180) + "px";
  tooltip.style.top = (evt.clientY + 14) + "px";
}
function hideTip() { tooltip.style.display = "none"; }

// Thin bars, 4px rounded top (data end), square baseline, 2px surface gaps.
function barPath(x, y, w, h, base) {
  const r = Math.min(4, h, w / 2);
  return "M" + x + "," + base + " L" + x + "," + (y + r) +
         " Q" + x + "," + y + " " + (x + r) + "," + y +
         " L" + (x + w - r) + "," + y +
         " Q" + (x + w) + "," + y + " " + (x + w) + "," + (y + r) +
         " L" + (x + w) + "," + base + " Z";
}

function histCard(name, h) {
  const buckets = h.buckets || [];
  const counts = [], labels = [];
  let prev = 0;
  for (const [le, cum] of buckets) {
    counts.push(cum - prev); labels.push(le); prev = cum;
  }
  let lo = counts.findIndex((c) => c > 0);
  let hi = counts.length - 1;
  while (hi > lo && counts[hi] === 0) hi--;
  if (lo < 0) { lo = 0; hi = -1; }
  const n = hi - lo + 1;
  const slot = 16, gap = 2, height = 64, padTop = 4;
  const width = Math.max(n * (slot + gap) - gap, slot);
  const peak = Math.max(1, ...counts.slice(lo, hi + 1));
  const svgNS = "http://www.w3.org/2000/svg";
  const svg = document.createElementNS(svgNS, "svg");
  svg.setAttribute("viewBox", "0 0 " + width + " " + (height + 1));
  svg.setAttribute("width", width);
  svg.setAttribute("height", height + 1);
  for (let i = lo; i <= hi; i++) {
    const x = (i - lo) * (slot + gap);
    const hh = counts[i] > 0
      ? Math.max(2, (counts[i] / peak) * (height - padTop)) : 0;
    if (hh > 0) {
      const bar = document.createElementNS(svgNS, "path");
      bar.setAttribute("d", barPath(x, height - hh, slot, hh, height));
      bar.setAttribute("class", "bar");
      svg.append(bar);
    }
    const hit = document.createElementNS(svgNS, "rect");
    hit.setAttribute("x", x - gap / 2); hit.setAttribute("y", 0);
    hit.setAttribute("width", slot + gap); hit.setAttribute("height", height);
    hit.setAttribute("class", "hit");
    const lower = i === 0 ? "0" : labels[i - 1];
    const tip = counts[i] + " in (" + lower + ", " + labels[i] + "] s";
    hit.addEventListener("mousemove", (evt) => showTip(evt, tip));
    hit.addEventListener("mouseleave", hideTip);
    svg.append(hit);
  }
  const base = document.createElementNS(svgNS, "line");
  base.setAttribute("x1", 0); base.setAttribute("x2", width);
  base.setAttribute("y1", height + 0.5); base.setAttribute("y2", height + 0.5);
  base.setAttribute("class", "base");
  svg.append(base);
  const pcts = el("div", {class: "pcts"},
    fmtCount(h.count) + " obs · p50 ", el("b", {}, fmtSeconds(h.p50)),
    " · p95 ", el("b", {}, fmtSeconds(h.p95)),
    " · p99 ", el("b", {}, fmtSeconds(h.p99)));
  const axis = el("div", {class: "axis"},
    el("span", {}, "≤" + (hi >= lo ? labels[lo] : "0") + " s"),
    el("span", {}, "≤" + (hi >= lo ? labels[hi] : "+Inf") + " s"));
  return el("div", {class: "card"},
    el("div", {class: "name"}, name), pcts, svg, axis);
}

function renderHists(data) {
  const hists = data.histograms || {};
  const names = Object.keys(hists).sort();
  const box = $("hists");
  if (!names.length) {
    box.replaceChildren(el("div", {class: "empty"}, "No observations yet."));
    return;
  }
  box.replaceChildren(...names.map((name) => histCard(name, hists[name])));
}

const STATE_GLYPH = {queued: "\\u25cc", running: "\\u25b6",
                     succeeded: "\\u2713", failed: "\\u2715",
                     cancelled: "\\u2298"};

function artifactLink(jobId, name, text) {
  return el("a", {href: "jobs/" + encodeURIComponent(jobId) +
                        "/artifacts/" + encodeURIComponent(name)}, text);
}

function jobDuration(job) {
  if (!job.started_at) return null;
  const start = Date.parse(job.started_at);
  const end = job.finished_at ? Date.parse(job.finished_at) : Date.now();
  return isNaN(start) || isNaN(end) ? null : Math.max(0, (end - start) / 1000);
}

function jobRow(job) {
  const state = el("span", {class: "state " + job.state},
    el("span", {class: "dot"}, STATE_GLYPH[job.state] || "?"), job.state);
  const links = el("td", {});
  links.append(el("a", {href: "jobs/" + encodeURIComponent(job.id)}, "snapshot"));
  if (job.state === "succeeded" || job.state === "failed" ||
      job.state === "cancelled") {
    links.append(" · ", artifactLink(job.id, "flight.html", "flight"),
                 " · ", artifactLink(job.id, "run_report.json", "report"),
                 " · ", artifactLink(job.id, "events.jsonl", "events"));
  }
  const idCell = el("td", {}, job.id, document.createElement("br"),
    el("span", {class: "runid"}, job.run_id || ""));
  return el("tr", {},
    idCell,
    el("td", {}, job.kind || ""),
    el("td", {}, state),
    el("td", {class: "num"},
       job.queue_wait_s === null || job.queue_wait_s === undefined
         ? "–" : fmtSeconds(job.queue_wait_s)),
    el("td", {class: "num"},
       jobDuration(job) === null ? "–" : fmtSeconds(jobDuration(job))),
    links);
}

function renderJobs(data) {
  const jobs = data.jobs || [];
  const box = $("jobs");
  if (!jobs.length) {
    box.replaceChildren(el("div", {class: "empty"}, "No jobs submitted yet."));
    return;
  }
  const head = el("tr", {}, ...["job / run id", "kind", "state", "queue wait",
                                "duration", "artifacts"]
    .map((t) => el("th", {}, t)));
  const table = el("table", {}, el("thead", {}, head),
                   el("tbody", {}, ...jobs.map(jobRow)));
  box.replaceChildren(table);
}

function render(data) {
  renderTiles(data);
  renderHists(data);
  renderJobs(data);
}

async function poll() {
  try {
    const res = await fetch("stats", {cache: "no-store"});
    if (!res.ok) throw new Error("HTTP " + res.status);
    render(await res.json());
    $("stale").style.display = "none";
  } catch (err) {
    $("stale").style.display = "inline";
  }
}

render(JSON.parse($("bootstrap").textContent || "{}"));
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""
