"""The job manager: the service's one stateful core object.

Owns the job store, the worker pool, the runner and the metrics — the
HTTP shell is a thin translation layer over exactly this API, and the
tests/smoke drive it both through HTTP and directly.

Submission path: parse + validate the payload (rejections never occupy
a worker), mint the content-addressed job id, create the per-job
artifact directory and telemetry fabric, enqueue.  Shutdown path:
:meth:`close` drains (or aborts) the pool and joins every worker before
returning, so callers can rely on all artifacts being flushed.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any

from ..obs import EventRingBuffer, EventBus, JsonlSink, new_run_id
from .config import ServiceConfig
from .errors import PayloadError, UnknownJobError
from .jobs import Job, JobState, parse_job_payload
from .metrics import ServiceMetrics
from .pool import WorkerPool
from .runner import JobRunner

__all__ = ["JobManager"]


class JobManager:
    """Job store + worker pool + metrics for one service instance."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.runner = JobRunner(self.config, self.metrics)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._closed = False
        self.config.jobs_root().mkdir(parents=True, exist_ok=True)
        if self.config.cache_dir is not None:
            self.config.cache_dir.mkdir(parents=True, exist_ok=True)
        self._pool = WorkerPool(
            self.config.pool_workers,
            self._execute,
            self.metrics,
            max_queued=self.config.max_queued,
        )

    # -- submission --------------------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Validate and enqueue one job; returns it in ``queued`` state.

        Raises:
            PayloadError: malformed payload or failing design check
                (counted as ``service.jobs_rejected``).
            ServiceClosedError: shutting down, or the queue is full.
        """
        try:
            request = parse_job_payload(
                payload, default_timeout_s=self.config.job_timeout_s
            )
        except PayloadError:
            self.metrics.inc("service.jobs_rejected")
            raise
        seq = next(self._seq)
        job_id = f"j{seq:04d}-{request.digest[:12]}"
        artifacts_dir = self.config.jobs_root().joinpath(job_id)
        artifacts_dir.mkdir(parents=True, exist_ok=True)
        job = Job(
            id=job_id,
            seq=seq,
            request=request,
            artifacts_dir=artifacts_dir,
            bus=EventBus(),
            ring=EventRingBuffer(capacity=self.config.event_buffer),
            sink=JsonlSink(artifacts_dir / "events.jsonl"),
            run_id=new_run_id(),
        )
        with self._lock:
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._pool.submit(job)  # raises ServiceClosedError when refused
        self.metrics.inc("service.jobs_submitted")
        return job

    def _execute(self, job: Job) -> None:
        self.runner.run(job)
        self.metrics.observe(
            "service.job_latency_seconds", job.elapsed_since_submit_s()
        )
        terminal_counter = {
            JobState.SUCCEEDED: "service.jobs_completed",
            JobState.FAILED: "service.jobs_failed",
            JobState.CANCELLED: "service.jobs_cancelled",
        }.get(job.state)
        if terminal_counter is not None:
            self.metrics.inc(terminal_counter)

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job of that id.

        Raises:
            UnknownJobError: the id was never issued.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job id {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Request cancellation (see :meth:`Job.request_cancel`).

        Raises:
            UnknownJobError: the id was never issued.
        """
        job = self.get(job_id)
        # Terminal counting happens in _execute — every submitted job,
        # cancelled-while-queued included, passes through the worker loop
        # exactly once.
        job.request_cancel()
        return job

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (True on success)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._pool.idle():
                return True
            time.sleep(0.02)
        return self._pool.idle()

    # -- shutdown ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        with self._lock:
            return self._closed

    def close(self, drain: bool | None = None, timeout: float | None = None) -> None:
        """Stop the pool and join every worker (idempotent).

        Args:
            drain: finish queued jobs (True) or cancel them (False);
                defaults to ``config.drain_on_close``.
            timeout: per-worker join timeout [s].
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        effective_drain = self.config.drain_on_close if drain is None else drain
        self._pool.stop(drain=effective_drain, timeout=timeout)
