"""Trace parasitics: route inductance and trace-level field models.

Closes the paper's loop between layout and circuit for the *connecting
structures*: a route's partial inductance enters the EMI circuit as a
series "inductance of lines" (section 2 of the paper), and the route's
filament model can be coupled magnetically against component loops.
"""

from __future__ import annotations

from ..peec import (
    CurrentPath,
    Filament,
    mutual_inductance_paths_fast,
    self_inductance_bar,
)
from .router import DEFAULT_COPPER_THICKNESS, Route

__all__ = [
    "route_inductance",
    "route_current_path",
    "route_mutual_inductance",
    "via_inductance",
    "INDUCTANCE_PER_LENGTH_ESTIMATE",
]

#: Rule-of-thumb trace inductance per length for sanity checks [H/m].
INDUCTANCE_PER_LENGTH_ESTIMATE = 0.7e-6  # ~0.7 nH/mm


def route_inductance(
    route: Route, copper_thickness: float = DEFAULT_COPPER_THICKNESS
) -> float:
    """Partial inductance of a route [H]: sum of segment partials.

    Mutual terms between the (mostly perpendicular) L-bend legs are
    neglected — perpendicular segments do not couple at all, and collinear
    same-net segments add a few percent that is far below the modelling
    budget.
    """
    total = 0.0
    for segment in route.segments:
        if segment.length < 1e-9:
            continue
        total += self_inductance_bar(segment.length, segment.width, copper_thickness)
    return total


def route_current_path(
    route: Route,
    z: float = 0.0,
    copper_thickness: float = DEFAULT_COPPER_THICKNESS,
) -> CurrentPath | None:
    """Filament model of a route for field coupling (None when empty)."""
    filaments = [
        Filament(
            segment.start.as_vec3(z),
            segment.end.as_vec3(z),
            width=segment.width,
            thickness=copper_thickness,
        )
        for segment in route.segments
        if segment.length > 1e-9
    ]
    if not filaments:
        return None
    return CurrentPath(filaments, name=f"trace:{route.net}")


def via_inductance(height: float = 1.6e-3, diameter: float = 0.4e-3) -> float:
    """Partial inductance of a plated through-hole via [H].

    The standard approximation ``L = (mu0 h / 2 pi) (ln(4h/d) + 1)`` — about
    1.2 nH for a 1.6 mm board with a 0.4 mm barrel.  The paper's Fig. 11
    PEEC model explicitly includes vias; layer changes on a route add one
    of these per transition.

    Raises:
        ValueError: for non-positive dimensions.
    """
    import math

    from ..peec import MU0

    if height <= 0.0 or diameter <= 0.0:
        raise ValueError("via dimensions must be positive")
    return MU0 * height / (2.0 * math.pi) * (math.log(4.0 * height / diameter) + 1.0)


def route_mutual_inductance(route_a: Route, route_b: Route, z: float = 0.0) -> float:
    """Mutual inductance between two routes' copper [H] (0 when empty)."""
    path_a = route_current_path(route_a, z)
    path_b = route_current_path(route_b, z)
    if path_a is None or path_b is None:
        return 0.0
    return mutual_inductance_paths_fast(path_a, path_b)
