"""Trace routing and trace parasitics: the board's connecting structures.

A deterministic Manhattan router turns a placement into per-net routes;
their partial inductances feed the circuit model ("inductances of lines")
and their filament models can be field-coupled like any component loop.
"""

from .parasitics import (
    INDUCTANCE_PER_LENGTH_ESTIMATE,
    route_current_path,
    route_inductance,
    route_mutual_inductance,
    via_inductance,
)
from .router import ManhattanRouter, Route, TraceSegment

__all__ = [
    "ManhattanRouter",
    "Route",
    "TraceSegment",
    "route_inductance",
    "route_current_path",
    "route_mutual_inductance",
    "via_inductance",
    "INDUCTANCE_PER_LENGTH_ESTIMATE",
]
