"""Manhattan trace routing from a placement.

The paper's board model (Fig. 11) includes "traces, vias and GND" in the
PEEC model — the connecting structures are field sources too, and their
inductance is one of the parasitics the circuit simulation must carry
("inductances of lines", section 2).

This router produces a deterministic, simple route per net: the pins are
chained along a Euclidean minimum spanning tree and each tree edge becomes
an L-shaped (horizontal-then-vertical) two-segment Manhattan connection.
That is not a production router — it is the placement-dependent *estimate*
the flow needs: route lengths (hence trace inductances) that respond to
component positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Vec2
from ..placement import Net, PlacementProblem

__all__ = ["TraceSegment", "Route", "ManhattanRouter"]

#: Default trace geometry [m].
DEFAULT_TRACE_WIDTH = 1.5e-3
DEFAULT_COPPER_THICKNESS = 35e-6


@dataclass(frozen=True)
class TraceSegment:
    """One straight copper segment of a route."""

    start: Vec2
    end: Vec2
    width: float = DEFAULT_TRACE_WIDTH

    @property
    def length(self) -> float:
        """Segment length [m]."""
        return self.start.distance_to(self.end)


@dataclass
class Route:
    """All segments of one net's copper."""

    net: str
    segments: list[TraceSegment] = field(default_factory=list)

    def total_length(self) -> float:
        """Total copper length [m]."""
        return sum(s.length for s in self.segments)

    def is_empty(self) -> bool:
        """True when the net had fewer than two placed pins."""
        return not self.segments


class ManhattanRouter:
    """Routes every net of a placed problem with MST + L-bends."""

    def __init__(
        self,
        problem: PlacementProblem,
        trace_width: float = DEFAULT_TRACE_WIDTH,
    ):
        if trace_width <= 0.0:
            raise ValueError("trace width must be positive")
        self.problem = problem
        self.trace_width = trace_width

    def _pin_positions(self, net: Net) -> list[Vec2]:
        out: list[Vec2] = []
        for ref, pad in net.pins:
            comp = self.problem.components.get(ref)
            if comp is None or comp.placement is None:
                continue
            try:
                local = comp.component.pad_position(pad)
            except KeyError:
                local = Vec2.zero()
            out.append(comp.placement.apply(local))
        return out

    @staticmethod
    def _mst_edges(points: list[Vec2]) -> list[tuple[int, int]]:
        """Prim's MST over the pin set (O(n^2), fine for net sizes here)."""
        n = len(points)
        if n < 2:
            return []
        in_tree = [False] * n
        best_dist = [float("inf")] * n
        best_from = [0] * n
        in_tree[0] = True
        for j in range(1, n):
            best_dist[j] = points[0].distance_to(points[j])
        edges: list[tuple[int, int]] = []
        for _ in range(n - 1):
            candidates = [
                (d, j) for j, d in enumerate(best_dist) if not in_tree[j]
            ]
            _, next_node = min(candidates)
            edges.append((best_from[next_node], next_node))
            in_tree[next_node] = True
            for j in range(n):
                if not in_tree[j]:
                    d = points[next_node].distance_to(points[j])
                    if d < best_dist[j]:
                        best_dist[j] = d
                        best_from[j] = next_node
        return edges

    def _l_bend(self, a: Vec2, b: Vec2) -> list[TraceSegment]:
        """Horizontal-then-vertical connection (degenerate legs dropped)."""
        corner = Vec2(b.x, a.y)
        segments = []
        if abs(b.x - a.x) > 1e-9:
            segments.append(TraceSegment(a, corner, self.trace_width))
        if abs(b.y - a.y) > 1e-9:
            segments.append(TraceSegment(corner, b, self.trace_width))
        return segments

    def route_net(self, net: Net) -> Route:
        """Route one net; empty route when fewer than two pins are placed."""
        points = self._pin_positions(net)
        route = Route(net.name)
        for i, j in self._mst_edges(points):
            route.segments.extend(self._l_bend(points[i], points[j]))
        return route

    def route_all(self) -> dict[str, Route]:
        """Route every net of the problem."""
        return {net.name: self.route_net(net) for net in self.problem.nets}
