"""Step 2 of the automatic method: circuit partitioning onto two boards.

Paper, section 4: *"2) Partitioning (optional) — In the case of two boards
for placement the circuit can be partitioned.  The resulting partitions are
assigned to board sides for placement."*

Implementation: a Fiduccia–Mattheyses-flavoured move-based bipartitioner on
the net graph.  Functional groups are contracted into super-nodes (a group
may never be split across boards — it must stay in one coherent area), and
fixed/preplaced components pin their unit to its current board.  Balance is
measured in *footprint area*, not component count.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import PlacementProblem

__all__ = ["PartitionResult", "Partitioner"]


@dataclass
class PartitionResult:
    """Assignment and quality metrics of one partitioning run."""

    assignment: dict[str, int]
    cut_nets: int
    area_balance: float  # |areaA - areaB| / (areaA + areaB)
    passes: int


class Partitioner:
    """Area-balanced min-cut bipartitioning with group contraction."""

    def __init__(self, problem: PlacementProblem, balance_tolerance: float = 0.2):
        if len(problem.boards) != 2:
            raise ValueError("partitioning needs exactly two boards")
        if not 0.0 < balance_tolerance < 1.0:
            raise ValueError("balance tolerance must be in (0, 1)")
        self.problem = problem
        self.balance_tolerance = balance_tolerance

    # -- graph construction -------------------------------------------------

    def _units(self) -> dict[str, list[str]]:
        """Unit name -> member refdes (groups contracted)."""
        units: dict[str, list[str]] = {}
        grouped: set[str] = set()
        for group in self.problem.groups:
            units[f"group:{group.name}"] = list(group.members)
            grouped.update(group.members)
        for ref in self.problem.components:
            if ref not in grouped:
                units[ref] = [ref]
        return units

    def _unit_area(self, members: list[str]) -> float:
        return sum(
            self.problem.components[r].component.footprint_area() for r in members
        )

    def _unit_nets(self, units: dict[str, list[str]]) -> dict[str, set[str]]:
        """Net name -> set of unit names it touches."""
        owner: dict[str, str] = {}
        for unit, members in units.items():
            for ref in members:
                owner[ref] = unit
        net_units: dict[str, set[str]] = {}
        for net in self.problem.nets:
            touched = {owner[r] for r in net.refdes_set() if r in owner}
            if len(touched) > 1:
                net_units[net.name] = touched
        return net_units

    # -- algorithm ---------------------------------------------------------

    def run(self) -> PartitionResult:
        """Partition and apply the board assignment to the components."""
        units = self._units()
        areas = {u: self._unit_area(m) for u, m in units.items()}
        net_units = self._unit_nets(units)
        total_area = sum(areas.values()) or 1.0

        # Pinned units (containing fixed or already-assigned-and-placed parts).
        pinned: dict[str, int] = {}
        for unit, members in units.items():
            for ref in members:
                comp = self.problem.components[ref]
                if comp.fixed:
                    pinned[unit] = comp.board
                    break

        # Greedy initial assignment: big units first onto the lighter board.
        side: dict[str, int] = dict(pinned)
        load = {0: 0.0, 1: 0.0}
        for unit in pinned:
            load[side[unit]] += areas[unit]
        for unit in sorted(units, key=lambda u: areas[u], reverse=True):
            if unit in side:
                continue
            board = 0 if load[0] <= load[1] else 1
            side[unit] = board
            load[board] += areas[unit]

        def cut_count() -> int:
            return sum(
                1
                for touched in net_units.values()
                if len({side[u] for u in touched}) > 1
            )

        def balanced_after_move(unit: str, to: int) -> bool:
            new_load = dict(load)
            new_load[side[unit]] -= areas[unit]
            new_load[to] += areas[unit]
            imbalance = abs(new_load[0] - new_load[1]) / total_area
            return imbalance <= self.balance_tolerance

        def balanced_after_swap(unit_a: str, unit_b: str) -> bool:
            new_load = dict(load)
            new_load[side[unit_a]] += areas[unit_b] - areas[unit_a]
            new_load[side[unit_b]] += areas[unit_a] - areas[unit_b]
            imbalance = abs(new_load[0] - new_load[1]) / total_area
            return imbalance <= self.balance_tolerance

        def apply_swap(unit_a: str, unit_b: str) -> None:
            side[unit_a], side[unit_b] = side[unit_b], side[unit_a]
            load[side[unit_b]] += areas[unit_b] - areas[unit_a]
            load[side[unit_a]] += areas[unit_a] - areas[unit_b]

        # FM-style improvement: positive-gain single moves, balance-neutral
        # pair swaps, and a bounded number of *sideways* swaps (equal cut)
        # to walk off plateaus — with a one-step tabu against undoing the
        # previous sideways swap.  Everything is deterministic.
        passes = 0
        improved = True
        movable = [u for u in units if u not in pinned]
        sideways_budget = len(movable)
        tabu_pair: tuple[str, str] | None = None
        while improved and passes < 4 * max(1, len(movable)):
            passes += 1
            improved = False
            base_cut = cut_count()
            for unit in movable:
                to = 1 - side[unit]
                if not balanced_after_move(unit, to):
                    continue
                old = side[unit]
                side[unit] = to
                new_cut = cut_count()
                if new_cut < base_cut:
                    load[old] -= areas[unit]
                    load[to] += areas[unit]
                    base_cut = new_cut
                    improved = True
                else:
                    side[unit] = old
            sideways_candidate: tuple[str, str] | None = None
            for i, unit_a in enumerate(movable):
                for unit_b in movable[i + 1 :]:
                    if side[unit_a] == side[unit_b]:
                        continue
                    if not balanced_after_swap(unit_a, unit_b):
                        continue
                    side[unit_a], side[unit_b] = side[unit_b], side[unit_a]
                    new_cut = cut_count()
                    side[unit_a], side[unit_b] = side[unit_b], side[unit_a]
                    if new_cut < base_cut:
                        apply_swap(unit_a, unit_b)
                        base_cut = new_cut
                        improved = True
                        tabu_pair = None
                    elif (
                        new_cut == base_cut
                        and sideways_candidate is None
                        and (unit_a, unit_b) != tabu_pair
                    ):
                        sideways_candidate = (unit_a, unit_b)
            if not improved and sideways_candidate and sideways_budget > 0:
                apply_swap(*sideways_candidate)
                tabu_pair = sideways_candidate
                sideways_budget -= 1
                improved = True

        # Apply to components.
        assignment: dict[str, int] = {}
        for unit, members in units.items():
            for ref in members:
                assignment[ref] = side[unit]
                self.problem.components[ref].board = side[unit]

        imbalance = abs(load[0] - load[1]) / total_area
        return PartitionResult(
            assignment=assignment,
            cut_nets=cut_count(),
            area_balance=imbalance,
            passes=passes,
        )
