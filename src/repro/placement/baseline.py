"""EMI-unaware baseline placer — the paper's "unfavourable placement".

The paper's Figs. 1/2 compare two layouts with *"the same components,
circuit topology and placement area"* where only EMI awareness differs, and
notes both *"obey all commonly known EMC design rules"* — the baseline is
not sloppy, it is simply blind to magnetic coupling.

:class:`BaselinePlacer` therefore runs the very same sequential engine with
the minimum-distance rules disabled and compactness/wirelength weighted up:
the result is a tight, production-plausible layout that happens to park
filter components inside each other's stray fields.
"""

from __future__ import annotations

from .model import PlacementProblem
from .placer import AutoPlacer, PlacementReport, PlacerWeights

__all__ = ["BaselinePlacer"]


class BaselinePlacer:
    """Wirelength/compactness-driven placement ignoring coupling rules."""

    def __init__(self, problem: PlacementProblem):
        self.problem = problem

    def run(self) -> PlacementReport:
        """Place all components tightly, without the EMC min distances.

        Raises:
            PlacementError: when even the unconstrained problem does not
                fit the board (genuinely too small an area).
        """
        placer = AutoPlacer(
            self.problem,
            optimize_rotation=False,
            partition=False,
            respect_min_distance=False,
            weights=PlacerWeights(
                wirelength=1.5,
                group_cohesion=1.0,
                compactness=1.0,
                emd_margin=0.0,
            ),
        )
        return placer.run()
