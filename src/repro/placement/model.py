"""Placement data model: boards, areas, keepouts, components, nets, groups.

Mirrors the constraint system of the paper's tool (section 4):

* *"1 or 2 rigid connected boards can be given for placement"*
* *"different arbitrary shaped placement areas, keepins and 3D keepouts
  with/without z-offset"*
* *"preplaced components"*
* *"allowed and preferred placement areas and rotation angles for each
  component"*
* *"clearances"*, *"groups of components"*, *"maximum total length of
  electrical nets"*, *"minimal distance rules for component pairs"*.

The live state is :class:`PlacementProblem`; rules live in a
:class:`repro.rules.RuleSet` referenced by it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..components import Component
from ..geometry import Cuboid, OrientedRect, Placement2D, Polygon2D, Rect, Vec2
from ..rules import RuleSet

__all__ = [
    "PlacementArea",
    "Keepout3D",
    "Board",
    "PlacedComponent",
    "Net",
    "Group",
    "PlacementProblem",
    "PlacementError",
]


class PlacementError(RuntimeError):
    """Raised when the automatic placer cannot produce a legal layout."""


@dataclass
class PlacementArea:
    """A named region where components may be placed (a keepin)."""

    name: str
    polygon: Polygon2D
    board: int = 0

    def contains_footprint(self, rect: Rect) -> bool:
        """True if an axis-aligned footprint lies fully inside."""
        return self.polygon.contains_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax)


@dataclass
class Keepout3D:
    """A blocked volume; the z-offset admits parts shorter than the gap."""

    name: str
    cuboid: Cuboid
    board: int = 0


@dataclass
class Board:
    """One rigid board: outline, placement areas and keepouts.

    A solid ground plane (``ground_plane = True``) shields magnetic
    couplings; the flow threads this through to the field simulations.
    """

    index: int
    outline: Polygon2D
    areas: list[PlacementArea] = field(default_factory=list)
    keepouts: list[Keepout3D] = field(default_factory=list)
    ground_plane: bool = True

    def area_by_name(self, name: str) -> PlacementArea:
        """Look up a placement area.

        Raises:
            KeyError: when the area does not exist on this board.
        """
        for area in self.areas:
            if area.name == name:
                return area
        raise KeyError(f"board {self.index} has no area {name!r}")

    def default_area(self) -> PlacementArea:
        """The whole outline as an implicit area when none are defined."""
        if self.areas:
            return self.areas[0]
        return PlacementArea(f"board{self.index}", self.outline, self.index)


@dataclass
class PlacedComponent:
    """A component instance on (or destined for) a board.

    Attributes:
        refdes: unique reference designator ("C3", "L1", ...).
        component: the library part (geometry + field + parasitics).
        placement: current pose, or None while unplaced.
        board: board index the part is assigned to.
        fixed: preplaced parts the placer must not move.
        group: functional group name, or None.
        allowed_areas: names of areas the part may occupy (empty = any).
        preferred_area: area the placer tries first.
        allowed_rotations_deg: override of the part's default rotation set.
        preferred_rotation_deg: rotation the placer favours when the EMC
            rules leave a choice (the paper's "preferred ... rotation
            angles for each component").
    """

    refdes: str
    component: Component
    placement: Placement2D | None = None
    board: int = 0
    fixed: bool = False
    group: str | None = None
    allowed_areas: tuple[str, ...] = ()
    preferred_area: str | None = None
    allowed_rotations_deg: tuple[float, ...] | None = None
    preferred_rotation_deg: float | None = None

    def __post_init__(self) -> None:
        if not self.refdes:
            raise ValueError("a placed component needs a refdes")

    @property
    def is_placed(self) -> bool:
        """Whether the part currently has a pose."""
        return self.placement is not None

    def rotations(self) -> tuple[float, ...]:
        """The rotation angles the placer may choose from [deg], with the
        preferred angle (when allowed) listed first."""
        allowed = (
            self.allowed_rotations_deg
            if self.allowed_rotations_deg is not None
            else self.component.allowed_rotations_deg
        )
        if (
            self.preferred_rotation_deg is not None
            and self.preferred_rotation_deg in allowed
        ):
            rest = tuple(a for a in allowed if a != self.preferred_rotation_deg)
            return (self.preferred_rotation_deg,) + rest
        return allowed

    def footprint_aabb(self) -> Rect:
        """Rectilinear approximation of the placed footprint.

        Raises:
            ValueError: if the part is unplaced.
        """
        if self.placement is None:
            raise ValueError(f"{self.refdes} is not placed")
        oriented = OrientedRect.from_footprint(
            self.component.footprint_w, self.component.footprint_h, self.placement
        )
        return oriented.aabb()

    def body_cuboid(self) -> Cuboid:
        """The 3-D body volume (for keepout checks)."""
        if self.placement is None:
            raise ValueError(f"{self.refdes} is not placed")
        return Cuboid(
            self.footprint_aabb(),
            self.placement.z_offset,
            self.placement.z_offset + self.component.body_height,
        )

    def center(self) -> Vec2:
        """Placement position.

        Raises:
            ValueError: if unplaced.
        """
        if self.placement is None:
            raise ValueError(f"{self.refdes} is not placed")
        return self.placement.position


@dataclass
class Net:
    """An electrical net connecting component pins."""

    name: str
    pins: list[tuple[str, str]] = field(default_factory=list)  # (refdes, pad)

    def refdes_set(self) -> set[str]:
        """Components touched by the net."""
        return {ref for ref, _ in self.pins}


@dataclass
class Group:
    """A functional group that must occupy a coherent area."""

    name: str
    members: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.members) < 1:
            raise ValueError(f"group {self.name!r} has no members")


@dataclass
class PlacementProblem:
    """Everything the placer and the DRC need, in one object."""

    boards: list[Board]
    components: dict[str, PlacedComponent] = field(default_factory=dict)
    nets: list[Net] = field(default_factory=list)
    groups: list[Group] = field(default_factory=list)
    rules: RuleSet = field(default_factory=RuleSet)
    default_clearance: float = 0.5e-3

    def __post_init__(self) -> None:
        if not 1 <= len(self.boards) <= 2:
            raise ValueError("the tool supports 1 or 2 boards")

    # -- construction -----------------------------------------------------

    def add_component(self, placed: PlacedComponent) -> PlacedComponent:
        """Register a component instance.

        Raises:
            ValueError: on duplicate refdes.
        """
        if placed.refdes in self.components:
            raise ValueError(f"duplicate refdes {placed.refdes!r}")
        self.components[placed.refdes] = placed
        return placed

    def add_net(self, name: str, pins: list[tuple[str, str]]) -> Net:
        """Register a net; pins reference existing components.

        Raises:
            KeyError: if a pin references an unknown refdes.
        """
        for ref, _pad in pins:
            if ref not in self.components:
                raise KeyError(f"net {name!r}: unknown refdes {ref!r}")
        net = Net(name, list(pins))
        self.nets.append(net)
        return net

    def define_group(self, name: str, members: list[str]) -> Group:
        """Create a functional group and tag its members.

        Raises:
            KeyError: for unknown members.
        """
        for ref in members:
            if ref not in self.components:
                raise KeyError(f"group {name!r}: unknown refdes {ref!r}")
        group = Group(name, tuple(members))
        self.groups.append(group)
        for ref in members:
            self.components[ref].group = name
        return group

    # -- queries -------------------------------------------------------------

    def board(self, index: int) -> Board:
        """Board by index.

        Raises:
            KeyError: for an invalid index.
        """
        for b in self.boards:
            if b.index == index:
                return b
        raise KeyError(f"no board {index}")

    def placed(self) -> list[PlacedComponent]:
        """All currently placed components."""
        return [c for c in self.components.values() if c.is_placed]

    def unplaced(self) -> list[PlacedComponent]:
        """Components still awaiting a pose."""
        return [c for c in self.components.values() if not c.is_placed]

    def group_members(self, name: str) -> list[PlacedComponent]:
        """Members of a functional group."""
        for g in self.groups:
            if g.name == name:
                return [self.components[r] for r in g.members]
        raise KeyError(f"no group {name!r}")

    def nets_touching(self, refdes: str) -> list[Net]:
        """Nets with a pin on the given component."""
        return [n for n in self.nets if refdes in n.refdes_set()]

    def pair_count(self) -> int:
        """n(n-1)/2 — the paper's bound on definable minimum distances."""
        n = len(self.components)
        return n * (n - 1) // 2

    def clone_state(self) -> dict[str, Placement2D | None]:
        """Snapshot of all placements (for undo / what-if)."""
        return {ref: c.placement for ref, c in self.components.items()}

    def restore_state(self, state: dict[str, Placement2D | None]) -> None:
        """Restore a placement snapshot."""
        for ref, placement in state.items():
            if ref in self.components:
                self.components[ref].placement = placement
