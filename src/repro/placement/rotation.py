"""Step 1 of the automatic method: optimal component rotation.

Paper, section 4: *"1) Optimal rotation — We compute optimal component
angles to minimize the total sum of minimum distances."*

Because ``EMD_ij = PEMD_ij * |cos(alpha_ij)|`` depends only on the
*rotations* (not positions), the rotation subproblem separates from
placement.  The optimiser runs exhaustive coordinate descent over each
component's discrete allowed angles until a fixed point: every step is the
exact per-component optimum, so the objective decreases monotonically and
termination is guaranteed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import Placement2D, Vec2
from ..rules import MinDistanceRule, effective_min_distance
from ..units import Degrees, Meters
from .model import PlacementProblem

__all__ = ["RotationPlan", "RotationOptimizer"]


@dataclass
class RotationPlan:
    """Chosen rotation per refdes plus the objective trajectory."""

    rotations_deg: dict[str, Degrees]
    initial_emd_sum: Meters
    final_emd_sum: Meters
    passes: int

    @property
    def improvement(self) -> Meters:
        """Absolute reduction of the EMD sum [m]."""
        return self.initial_emd_sum - self.final_emd_sum


class RotationOptimizer:
    """Minimises the total EMD sum over discrete rotation choices."""

    def __init__(self, problem: PlacementProblem, max_passes: int = 12):
        self.problem = problem
        self.max_passes = max_passes
        # Precompute in-plane axis angle per component at rotation 0 and
        # whether the axis is rotation-sensitive at all.
        self._axis0: dict[str, float] = {}
        self._inplane: dict[str, bool] = {}
        for ref, placed in problem.components.items():
            axis = placed.component.magnetic_axis_local()
            inplane = math.hypot(axis.x, axis.y) > 0.3
            self._inplane[ref] = inplane
            self._axis0[ref] = math.atan2(axis.y, axis.x) if inplane else 0.0

    def _emd(self, rule: MinDistanceRule, rot_a: Degrees, rot_b: Degrees) -> Meters:
        """EMD under hypothetical rotations (degrees), with residual floors."""
        a = self.problem.components[rule.ref_a]
        b = self.problem.components[rule.ref_b]
        residual = max(
            a.component.decoupling_residual,
            b.component.decoupling_residual,
            rule.residual,
        )
        in_a, in_b = self._inplane[rule.ref_a], self._inplane[rule.ref_b]
        if not in_a or not in_b:
            # A vertical axis is rotation invariant: alpha is the fixed 3-D
            # angle, conservatively evaluated from the actual axes.
            pa = Placement2D(Vec2.zero(), math.radians(rot_a))
            pb = Placement2D(Vec2.zero(), math.radians(rot_b))
            axis_a = a.component.magnetic_axis_world(pa)
            axis_b = b.component.magnetic_axis_world(pb)
            cos = min(1.0, abs(axis_a.dot(axis_b)))
            return effective_min_distance(rule.pemd, math.acos(cos), residual)
        angle_a = self._axis0[rule.ref_a] + math.radians(rot_a)
        angle_b = self._axis0[rule.ref_b] + math.radians(rot_b)
        return effective_min_distance(rule.pemd, angle_a - angle_b, residual)

    def _current_rot(self, rotations: dict[str, Degrees], ref: str) -> Degrees:
        return rotations[ref]

    def _emd_sum(self, rotations: dict[str, Degrees]) -> Meters:
        return sum(
            self._emd(r, rotations[r.ref_a], rotations[r.ref_b])
            for r in self.problem.rules.min_distance
            if r.ref_a in rotations and r.ref_b in rotations
        )

    def optimize(self) -> RotationPlan:
        """Run coordinate descent; fixed components keep their rotation.

        Returns the plan; the caller (usually :class:`AutoPlacer`) applies
        the rotations when it places each component.
        """
        problem = self.problem
        rotations: dict[str, float] = {}
        for ref, placed in problem.components.items():
            # rotations() lists the preferred angle first when set.
            rotations[ref] = (
                placed.placement.rotation_deg
                if placed.is_placed
                else placed.rotations()[0]
            )
        initial = self._emd_sum(rotations)

        # Components involved in at least one rule, most-constrained first.
        involved: dict[str, list[MinDistanceRule]] = {}
        for rule in problem.rules.min_distance:
            involved.setdefault(rule.ref_a, []).append(rule)
            involved.setdefault(rule.ref_b, []).append(rule)
        order = sorted(
            involved,
            key=lambda ref: sum(r.pemd for r in involved[ref]),
            reverse=True,
        )

        passes = 0
        for _pass in range(self.max_passes):
            passes += 1
            changed = False
            for ref in order:
                placed = problem.components.get(ref)
                if placed is None or placed.fixed:
                    continue
                if not self._inplane.get(ref, False):
                    continue  # Rotation cannot help a vertical-axis part.
                best_angle = rotations[ref]
                best_cost = self._local_cost(ref, best_angle, rotations, involved)
                for angle in placed.rotations():
                    cost = self._local_cost(ref, angle, rotations, involved)
                    if cost < best_cost - 1e-12:
                        best_cost = cost
                        best_angle = angle
                if best_angle != rotations[ref]:
                    rotations[ref] = best_angle
                    changed = True
            if not changed:
                break

        final = self._emd_sum(rotations)
        return RotationPlan(
            rotations_deg=rotations,
            initial_emd_sum=initial,
            final_emd_sum=final,
            passes=passes,
        )

    def _local_cost(
        self,
        ref: str,
        angle: Degrees,
        rotations: dict[str, Degrees],
        involved: dict[str, list[MinDistanceRule]],
    ) -> Meters:
        total = 0.0
        for rule in involved.get(ref, ()):  # Only this component's rules move.
            other = rule.ref_b if rule.ref_a == ref else rule.ref_a
            rot_a = angle if rule.ref_a == ref else rotations[rule.ref_a]
            rot_b = angle if rule.ref_b == ref else rotations[rule.ref_b]
            if other not in rotations:
                continue
            total += self._emd(rule, rot_a, rot_b)
        return total
