"""Candidate-location generation on the continuous plane.

The paper's placer works *"on the continuous plane (no grid placement)"*;
legal locations are found by combining several generators, each aimed at a
different packing situation:

* **corner candidates** — the corners of already-placed obstacles, inflated
  by the new part's half-extents plus clearance: the classic
  bottom-left-fill positions that produce tight packings;
* **ring candidates** — points on circles of radius EMD (+margin) around
  the new part's rule partners: *just barely far enough*, which keeps
  EMC-constrained parts as close as the rules allow;
* **area candidates** — eroded-boundary and coarse interior samples of the
  placement area, covering the empty-board and sparse cases.
"""

from __future__ import annotations

import math

from ..geometry import Polygon2D, Vec2
from ..obs import get_tracer
from .model import PlacedComponent, PlacementProblem

__all__ = ["CandidateGenerator"]


class CandidateGenerator:
    """Produces candidate centre positions for one component."""

    def __init__(self, problem: PlacementProblem, boundary_spacing: float = 6e-3):
        self.problem = problem
        self.boundary_spacing = boundary_spacing

    def _areas_for(self, comp: PlacedComponent) -> list[Polygon2D]:
        board = self.problem.board(comp.board)
        areas = board.areas or [board.default_area()]
        if comp.allowed_areas:
            filtered = [a for a in areas if a.name in comp.allowed_areas]
            if filtered:
                areas = filtered
        if comp.preferred_area is not None:
            preferred = [a for a in areas if a.name == comp.preferred_area]
            rest = [a for a in areas if a.name != comp.preferred_area]
            areas = preferred + rest
        return [a.polygon for a in areas]

    def corner_candidates(self, comp: PlacedComponent, rotation_deg: float) -> list[Vec2]:
        """Inflated-obstacle corner positions (tight-packing generator)."""
        half = self._half_extent(comp, rotation_deg)
        clearance = max(self.problem.default_clearance, comp.component.clearance)
        out: list[Vec2] = []
        for other in self.problem.placed():
            if other.board != comp.board or other.refdes == comp.refdes:
                continue
            rect = other.footprint_aabb().inflated(
                max(half.x, half.y) + clearance + 1e-4
            )
            out.extend(rect.corners())
            # Edge midpoints help slide along rows of parts.
            out.append(Vec2(rect.xmin, (rect.ymin + rect.ymax) / 2.0))
            out.append(Vec2(rect.xmax, (rect.ymin + rect.ymax) / 2.0))
            out.append(Vec2((rect.xmin + rect.xmax) / 2.0, rect.ymin))
            out.append(Vec2((rect.xmin + rect.xmax) / 2.0, rect.ymax))
        return out

    def ring_candidates(
        self, comp: PlacedComponent, ring_specs: list[tuple[Vec2, float]], points: int = 16
    ) -> list[Vec2]:
        """Points on circles around rule partners (EMD-tight generator).

        Args:
            ring_specs: (centre, radius) pairs, radius already including
                the needed margin.
        """
        out: list[Vec2] = []
        for center, radius in ring_specs:
            if radius <= 0.0:
                continue
            for i in range(points):
                angle = 2.0 * math.pi * i / points
                out.append(center + Vec2.from_polar(radius, angle))
        return out

    def area_candidates(self, comp: PlacedComponent, rotation_deg: float) -> list[Vec2]:
        """Boundary and interior samples of the allowed areas."""
        half = self._half_extent(comp, rotation_deg)
        margin = max(half.x, half.y)
        out: list[Vec2] = []
        for polygon in self._areas_for(comp):
            eroded = polygon.eroded(margin)
            target = eroded if eroded is not None else polygon
            out.extend(target.boundary_samples(self.boundary_spacing))
            out.append(target.centroid())
            # Coarse interior grid for sparse boards.
            xmin, ymin, xmax, ymax = target.bbox()
            step = max(self.boundary_spacing * 2.0, (xmax - xmin) / 8.0 or 1e-3)
            out.extend(target.grid_samples(step))
        return out

    def all_candidates(
        self,
        comp: PlacedComponent,
        rotation_deg: float,
        ring_specs: list[tuple[Vec2, float]] | None = None,
    ) -> list[Vec2]:
        """The union of all generators, deduplicated on a 0.5 mm lattice."""
        raw = (
            self.corner_candidates(comp, rotation_deg)
            + self.ring_candidates(comp, ring_specs or [])
            + self.area_candidates(comp, rotation_deg)
        )
        seen: set[tuple[int, int]] = set()
        out: list[Vec2] = []
        q = 0.5e-3
        for p in raw:
            key = (round(p.x / q), round(p.y / q))
            if key not in seen:
                seen.add(key)
                out.append(p)
        get_tracer().count("placement.candidates_generated", len(out))
        return out

    def _half_extent(self, comp: PlacedComponent, rotation_deg: float) -> Vec2:
        w = comp.component.footprint_w
        h = comp.component.footprint_h
        rad = math.radians(rotation_deg)
        ex = abs(math.cos(rad)) * w / 2.0 + abs(math.sin(rad)) * h / 2.0
        ey = abs(math.sin(rad)) * w / 2.0 + abs(math.cos(rad)) * h / 2.0
        return Vec2(ex, ey)
