"""Rip-up-and-replace refinement of a legal layout.

The sequential placer commits to positions greedily; once every component
is down, re-placing each part with full knowledge of all the others often
recovers wirelength the greedy pass left on the table.  This refinement
rips one component at a time, re-runs the candidate search against the
complete layout, and keeps the move only when it strictly improves the
objective while staying legal — so the result is never worse than the
input.
"""

from __future__ import annotations

from dataclasses import dataclass

from .drc import DesignRuleChecker
from .metrics import total_wirelength
from .model import PlacementProblem
from .placer import AutoPlacer, PlacerWeights

__all__ = ["RefinementResult", "refine_wirelength"]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of a refinement run."""

    wirelength_before: float
    wirelength_after: float
    improved_components: int
    passes: int

    @property
    def improvement(self) -> float:
        """Fractional wirelength reduction (0..1)."""
        if self.wirelength_before <= 0.0:
            return 0.0
        return 1.0 - self.wirelength_after / self.wirelength_before


def refine_wirelength(
    problem: PlacementProblem,
    max_passes: int = 3,
    weights: PlacerWeights | None = None,
) -> RefinementResult:
    """Iteratively rip-up-and-replace components to shorten nets.

    Legality (including the EMC min distances) is re-verified per move via
    the incremental DRC; rejected moves are rolled back, so a legal input
    layout stays legal.

    Args:
        problem: a fully placed problem (unplaced parts are skipped).
        max_passes: bound on sweeps over the component list.
        weights: candidate scoring (defaults to wirelength-dominated).
    """
    placer = AutoPlacer(
        problem,
        optimize_rotation=False,
        respect_min_distance=True,
        weights=weights
        or PlacerWeights(wirelength=3.0, group_cohesion=1.0, compactness=0.1),
    )
    checker = DesignRuleChecker(problem)
    before = total_wirelength(problem)
    improved = 0
    passes = 0

    for _ in range(max_passes):
        passes += 1
        improved_this_pass = 0
        for ref in list(problem.components):
            comp = problem.components[ref]
            if comp.fixed or not comp.is_placed:
                continue
            old_placement = comp.placement
            old_wl = total_wirelength(problem)

            comp.placement = None  # rip up
            rotation = old_placement.rotation_deg
            candidate = placer._best_candidate(comp, rotation)  # noqa: SLF001
            if candidate is None:
                comp.placement = old_placement
                continue
            from ..geometry import Placement2D
            import math

            comp.placement = Placement2D(candidate, math.radians(rotation))
            new_wl = total_wirelength(problem)
            if new_wl < old_wl - 1e-9 and not checker.check_component(ref):
                improved_this_pass += 1
            else:
                comp.placement = old_placement
        improved += improved_this_pass
        if improved_this_pass == 0:
            break

    return RefinementResult(
        wirelength_before=before,
        wirelength_after=total_wirelength(problem),
        improved_components=improved,
        passes=passes,
    )
