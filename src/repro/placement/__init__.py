"""The placement tool: constraint model, automatic placer, DRC, interactive.

This package is the reproduction of the paper's core contribution — a
dedicated 3-D placement prototype for power electronics that honours
pairwise electro-magnetic minimum distances (PEMD, reduced by rotation via
the cos(alpha) law), arbitrary placement areas, 3-D keepouts, functional
groups, preplacement and net-length bounds; with an automatic three-step
method (optimal rotation, partitioning, sequential prioritised placement)
and an interactive adviser with online DRC.
"""

from .baseline import BaselinePlacer
from .candidates import CandidateGenerator
from .compaction import CompactionResult, compact_layout
from .drc import DesignRuleChecker, RuleMarker, Violation
from .interactive import InteractiveSession, MoveResult
from .metrics import (
    emd_slack_sum,
    group_centroid,
    group_spread,
    net_hpwl,
    placement_area,
    placement_bbox,
    total_wirelength,
    worst_emd_margin,
)
from .model import (
    Board,
    Group,
    Keepout3D,
    Net,
    PlacedComponent,
    PlacementArea,
    PlacementError,
    PlacementProblem,
)
from .partition import Partitioner, PartitionResult
from .refine import RefinementResult, refine_wirelength
from .placer import AutoPlacer, PlacementReport, PlacerWeights
from .rotation import RotationOptimizer, RotationPlan

__all__ = [
    "Board",
    "PlacementArea",
    "Keepout3D",
    "PlacedComponent",
    "Net",
    "Group",
    "PlacementProblem",
    "PlacementError",
    "AutoPlacer",
    "PlacementReport",
    "PlacerWeights",
    "BaselinePlacer",
    "RotationOptimizer",
    "RotationPlan",
    "Partitioner",
    "refine_wirelength",
    "RefinementResult",
    "PartitionResult",
    "CandidateGenerator",
    "compact_layout",
    "CompactionResult",
    "DesignRuleChecker",
    "Violation",
    "RuleMarker",
    "InteractiveSession",
    "MoveResult",
    "net_hpwl",
    "total_wirelength",
    "placement_bbox",
    "placement_area",
    "group_centroid",
    "group_spread",
    "emd_slack_sum",
    "worst_emd_margin",
]
