"""Placement quality metrics: wirelength, packing, group coherence.

These are the optimisation criteria the sequential placer scores candidate
locations with, and the numbers the benchmarks report (the interactive
adviser's goal is *"minimization of the system volume"*).
"""

from __future__ import annotations

import math

from ..geometry import Rect, Vec2
from .model import Net, PlacementProblem

__all__ = [
    "net_hpwl",
    "total_wirelength",
    "placement_bbox",
    "placement_area",
    "group_spread",
    "group_centroid",
    "emd_slack_sum",
]


def _pin_position(problem: PlacementProblem, refdes: str, pad: str) -> Vec2 | None:
    comp = problem.components.get(refdes)
    if comp is None or comp.placement is None:
        return None
    try:
        local = comp.component.pad_position(pad)
    except KeyError:
        local = Vec2.zero()
    return comp.placement.apply(local)


def net_hpwl(problem: PlacementProblem, net: Net) -> float:
    """Half-perimeter wirelength of a net over its placed pins [m].

    Unplaced pins are skipped; a net with fewer than two placed pins has
    zero length.
    """
    points = [
        p
        for p in (_pin_position(problem, ref, pad) for ref, pad in net.pins)
        if p is not None
    ]
    if len(points) < 2:
        return 0.0
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_wirelength(problem: PlacementProblem) -> float:
    """Sum of HPWL over all nets [m]."""
    return sum(net_hpwl(problem, net) for net in problem.nets)


def placement_bbox(problem: PlacementProblem, board: int | None = None) -> Rect | None:
    """Bounding box of all placed footprints (None if nothing is placed)."""
    rects = [
        c.footprint_aabb()
        for c in problem.placed()
        if board is None or c.board == board
    ]
    if not rects:
        return None
    out = rects[0]
    for r in rects[1:]:
        out = out.union(r)
    return out


def placement_area(problem: PlacementProblem, board: int | None = None) -> float:
    """Area of the placement bounding box [m^2] (the "system volume" proxy)."""
    box = placement_bbox(problem, board)
    return box.area() if box is not None else 0.0


def group_centroid(problem: PlacementProblem, group: str) -> Vec2 | None:
    """Mean position of a group's placed members."""
    members = [c for c in problem.group_members(group) if c.is_placed]
    if not members:
        return None
    sx = sum(c.center().x for c in members)
    sy = sum(c.center().y for c in members)
    return Vec2(sx / len(members), sy / len(members))


def group_spread(problem: PlacementProblem, group: str) -> float:
    """Diameter of the group's member-centre point set [m]."""
    members = [c for c in problem.group_members(group) if c.is_placed]
    if len(members) < 2:
        return 0.0
    best = 0.0
    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            best = max(best, members[i].center().distance_to(members[j].center()))
    return best


def emd_slack_sum(problem: PlacementProblem) -> float:
    """Total shortfall of min-distance rules [m]; 0 for a rule-clean layout.

    For each PEMD rule with both parts placed, accumulates
    ``max(0, EMD - actual_distance)``.
    """
    from ..rules import emd_for_pair

    total = 0.0
    for rule in problem.rules.min_distance:
        a = problem.components.get(rule.ref_a)
        b = problem.components.get(rule.ref_b)
        if a is None or b is None or not (a.is_placed and b.is_placed):
            continue
        if a.board != b.board:
            continue  # Different boards decouple (rigid separation).
        emd = emd_for_pair(
            a.component, a.placement, b.component, b.placement, rule.pemd, rule.residual
        )
        actual = a.center().distance_to(b.center())
        total += max(0.0, emd - actual)
    return total


def worst_emd_margin(problem: PlacementProblem) -> float:
    """Smallest (actual - EMD) over all applicable rules [m]; +inf if none."""
    from ..rules import emd_for_pair

    worst = math.inf
    for rule in problem.rules.min_distance:
        a = problem.components.get(rule.ref_a)
        b = problem.components.get(rule.ref_b)
        if a is None or b is None or not (a.is_placed and b.is_placed):
            continue
        if a.board != b.board:
            continue
        emd = emd_for_pair(
            a.component, a.placement, b.component, b.placement, rule.pemd, rule.residual
        )
        actual = a.center().distance_to(b.center())
        worst = min(worst, actual - emd)
    return worst
