"""Step 3 of the automatic method: sequential prioritised placement.

Paper, section 4: *"Based on a design rule depending prioritization of the
components, they are placed on board sequentially"*, on the continuous
plane, with all objects rectilinearly approximated by rectangles/cuboids.

The placer consumes the rotation plan (step 1) and the board partition
(step 2), orders components by *rule pressure* (how much minimum-distance
budget and area they demand), and for each component scores the legal
candidates by a weighted mix of wirelength, group cohesion and packing
compactness.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..geometry import Placement2D, Rect, Vec2
from ..obs import get_tracer
from ..rules import MinDistanceRule, emd_for_pair
from .candidates import CandidateGenerator
from .drc import DesignRuleChecker
from .metrics import group_centroid, net_hpwl, total_wirelength
from .model import PlacedComponent, PlacementError, PlacementProblem
from .partition import Partitioner
from .rotation import RotationOptimizer, RotationPlan

__all__ = ["PlacerWeights", "PlacementReport", "AutoPlacer"]


@dataclass(frozen=True)
class PlacerWeights:
    """Scoring weights for candidate evaluation (all costs in metres)."""

    wirelength: float = 1.0
    group_cohesion: float = 2.0
    compactness: float = 0.3
    emd_margin: float = 0.1


@dataclass
class PlacementReport:
    """Outcome of one automatic placement run."""

    placed_count: int
    runtime_s: float
    rotation_plan: RotationPlan | None
    order: list[str] = field(default_factory=list)
    violations_after: int = 0
    wirelength: float = 0.0
    failed: list[str] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        """True when every component was placed and the DRC is clean."""
        return not self.failed and self.violations_after == 0


class AutoPlacer:
    """The three-step automatic placement method of the paper.

    Args:
        problem: the placement problem (mutated in place).
        optimize_rotation: run step 1 (optimal rotation).
        partition: run step 2 (only meaningful with two boards).
        respect_min_distance: enforce the EMC rules during placement;
            the EMI-unaware baseline sets this False (same engine, rules
            ignored — the paper's Fig. 1 situation).
        weights: candidate scoring weights.
    """

    def __init__(
        self,
        problem: PlacementProblem,
        optimize_rotation: bool = True,
        partition: bool = False,
        respect_min_distance: bool = True,
        weights: PlacerWeights | None = None,
    ):
        self.problem = problem
        self.optimize_rotation = optimize_rotation
        self.partition = partition
        self.respect_min_distance = respect_min_distance
        self.weights = weights or PlacerWeights()
        self._generator = CandidateGenerator(problem)

    # -- public API ----------------------------------------------------------

    def run(self) -> PlacementReport:
        """Execute rotation -> partition -> sequential placement.

        The report's ``runtime_s`` covers the full three-step method
        (rotation plan, partition and sequential placement, plus the final
        DRC pass) and is sourced from the ``placement.run`` span when
        tracing is enabled.

        Raises:
            PlacementError: when some component finds no legal location
                even after refinement (the report inside the exception
                message lists the culprits).
        """
        tracer = get_tracer()
        t0 = time.perf_counter()
        with tracer.span("placement.run") as run_span:
            rotation_plan: RotationPlan | None = None
            if self.optimize_rotation and self.respect_min_distance:
                with tracer.span("placement.rotation"):
                    rotation_plan = RotationOptimizer(self.problem).optimize()

            if self.partition and len(self.problem.boards) == 2:
                with tracer.span("placement.partition"):
                    Partitioner(self.problem).run()

            with tracer.span("placement.sequential"):
                order = self._priority_order()
                failed: list[str] = []
                for ref in order:
                    comp = self.problem.components[ref]
                    if comp.is_placed:
                        continue
                    if not self._place_one(comp, rotation_plan):
                        failed.append(ref)

            if failed:
                raise PlacementError(
                    f"no legal location found for: {', '.join(failed)} "
                    f"(placed {len(self.problem.placed())} of "
                    f"{len(self.problem.components)})"
                )

            with tracer.span("placement.final_drc"):
                checker = DesignRuleChecker(self.problem)
                violations = checker.check_all() if self.respect_min_distance else (
                    checker.check_body_spacing()
                    + checker.check_keepin()
                    + checker.check_keepouts()
                )
            tracer.count("placement.components_placed", len(self.problem.placed()))
        runtime = run_span.elapsed_s
        if runtime is None:  # null tracer: measure directly
            runtime = time.perf_counter() - t0
        return PlacementReport(
            placed_count=len(self.problem.placed()),
            runtime_s=runtime,
            rotation_plan=rotation_plan,
            order=order,
            violations_after=len(violations),
            wirelength=total_wirelength(self.problem),
        )

    # -- ordering ------------------------------------------------------------

    def _priority_order(self) -> list[str]:
        """Design-rule-driven prioritisation, groups kept contiguous."""
        problem = self.problem

        def pressure(ref: str) -> float:
            comp = problem.components[ref]
            rule_budget = sum(
                r.pemd for r in problem.rules.rules_involving(ref)
            ) if self.respect_min_distance else 0.0
            return (
                rule_budget * 10.0
                + comp.component.footprint_area() * 1e3
                + len(problem.nets_touching(ref)) * 1e-3
            )

        unplaced = [c.refdes for c in problem.unplaced()]
        by_pressure = sorted(unplaced, key=pressure, reverse=True)

        # Pull whole groups forward to where their strongest member sits.
        order: list[str] = []
        seen: set[str] = set()
        for ref in by_pressure:
            if ref in seen:
                continue
            comp = problem.components[ref]
            block = [ref]
            if comp.group is not None:
                members = [
                    m.refdes
                    for m in problem.group_members(comp.group)
                    if not m.is_placed and m.refdes not in seen
                ]
                block = sorted(members, key=pressure, reverse=True)
            for r in block:
                order.append(r)
                seen.add(r)
        return order

    # -- single-component placement ----------------------------------------

    def _partner_rules(self, ref: str) -> list[MinDistanceRule]:
        if not self.respect_min_distance:
            return []
        return self.problem.rules.rules_involving(ref)

    def _place_one(self, comp: PlacedComponent, plan: RotationPlan | None) -> bool:
        rotations = list(comp.rotations())
        if plan is not None and comp.refdes in plan.rotations_deg:
            preferred = plan.rotations_deg[comp.refdes]
            if preferred in rotations:
                rotations.remove(preferred)
            rotations.insert(0, preferred)

        for spacing_scale in (1.0, 0.5):
            self._generator.boundary_spacing = 6e-3 * spacing_scale
            for rotation in rotations:
                best = self._best_candidate(comp, rotation)
                if best is not None:
                    comp.placement = Placement2D(best, math.radians(rotation))
                    return True
        return False

    def _best_candidate(self, comp: PlacedComponent, rotation_deg: float) -> Vec2 | None:
        problem = self.problem
        rules = self._partner_rules(comp.refdes)
        trial = Placement2D(Vec2.zero(), math.radians(rotation_deg))

        # EMD ring specs around already-placed partners.
        ring_specs: list[tuple[Vec2, float]] = []
        partner_emd: list[tuple[PlacedComponent, float]] = []
        for rule in rules:
            other_ref = rule.ref_b if rule.ref_a == comp.refdes else rule.ref_a
            other = problem.components.get(other_ref)
            if other is None or not other.is_placed or other.board != comp.board:
                continue
            emd = emd_for_pair(
                comp.component,
                trial,
                other.component,
                other.placement,
                rule.pemd,
                rule.residual,
            )
            partner_emd.append((other, emd))
            ring_specs.append((other.center(), emd * 1.02 + 1e-4))

        candidates = self._generator.all_candidates(comp, rotation_deg, ring_specs)
        get_tracer().count("placement.candidates_scored", len(candidates))

        obstacles = self._obstacles(comp)
        areas = self._legal_areas(comp)
        keepouts = problem.board(comp.board).keepouts
        clearance = max(problem.default_clearance, comp.component.clearance)

        best_pos: Vec2 | None = None
        best_cost = math.inf
        half = self._generator._half_extent(comp, rotation_deg)  # noqa: SLF001

        for pos in candidates:
            rect = Rect(pos.x - half.x, pos.y - half.y, pos.x + half.x, pos.y + half.y)
            if not any(
                area.contains_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax)
                for area in areas
            ):
                continue
            inflated = rect.inflated(clearance)
            if any(inflated.overlaps(ob) for ob in obstacles):
                continue
            if keepouts:
                body = rect
                z0 = 0.0
                z1 = comp.component.body_height
                blocked = False
                for keepout in keepouts:
                    if (
                        body.overlaps(keepout.cuboid.rect)
                        and z1 > keepout.cuboid.zmin
                        and keepout.cuboid.zmax > z0
                    ):
                        blocked = True
                        break
                if blocked:
                    continue
            ok = True
            margin = math.inf
            for other, emd in partner_emd:
                d = pos.distance_to(other.center())
                if d + 1e-9 < emd:
                    ok = False
                    break
                margin = min(margin, d - emd)
            if not ok:
                continue
            cost = self._cost(comp, pos, margin)
            if cost < best_cost:
                best_cost = cost
                best_pos = pos
        return best_pos

    def _obstacles(self, comp: PlacedComponent) -> list[Rect]:
        return [
            other.footprint_aabb()
            for other in self.problem.placed()
            if other.board == comp.board and other.refdes != comp.refdes
        ]

    def _legal_areas(self, comp: PlacedComponent):
        board = self.problem.board(comp.board)
        areas = board.areas or [board.default_area()]
        if comp.allowed_areas:
            filtered = [a for a in areas if a.name in comp.allowed_areas]
            if filtered:
                areas = filtered
        return [a.polygon for a in areas]

    def _cost(self, comp: PlacedComponent, pos: Vec2, emd_margin: float) -> float:
        problem = self.problem
        w = self.weights
        cost = 0.0

        # Wirelength: HPWL of the touching nets with the part at pos.
        if problem.nets:
            original = comp.placement
            comp.placement = Placement2D(pos, 0.0)
            try:
                cost += w.wirelength * sum(
                    net_hpwl(problem, net) for net in problem.nets_touching(comp.refdes)
                )
            finally:
                comp.placement = original

        # Group cohesion: stay near the group's placed centroid.
        if comp.group is not None:
            centroid = group_centroid(problem, comp.group)
            if centroid is not None:
                cost += w.group_cohesion * pos.distance_to(centroid)

        # Compactness: stay near the placed-set centroid (or area centroid).
        anchor = self._anchor(comp)
        cost += w.compactness * pos.distance_to(anchor)

        # Slight preference for EMD slack (robustness against later moves).
        if math.isfinite(emd_margin):
            cost -= w.emd_margin * min(emd_margin, 5e-3)
        return cost

    def _anchor(self, comp: PlacedComponent) -> Vec2:
        placed = [c for c in self.problem.placed() if c.board == comp.board]
        if placed:
            sx = sum(c.center().x for c in placed)
            sy = sum(c.center().y for c in placed)
            return Vec2(sx / len(placed), sy / len(placed))
        areas = self._legal_areas(comp)
        return areas[0].centroid()
