"""Automatic volume minimisation — the adviser loop, batch-mode.

The paper leaves volume minimisation to the user ("the user can try to
minimize the system volume using the provided interactive functionality").
This utility automates the obvious strategy: repeatedly walk every movable
component one step towards the layout centroid, keeping only steps the
online DRC accepts, until a fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

from .interactive import InteractiveSession
from .metrics import placement_area
from .model import PlacementProblem

__all__ = ["CompactionResult", "compact_layout"]


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of a compaction run."""

    area_before: float
    area_after: float
    moves: int
    passes: int

    @property
    def reduction(self) -> float:
        """Fractional bounding-area reduction (0..1)."""
        if self.area_before <= 0.0:
            return 0.0
        return 1.0 - self.area_after / self.area_before


def compact_layout(
    problem: PlacementProblem,
    step: float = 1e-3,
    max_passes: int = 20,
) -> CompactionResult:
    """Shrink a legal layout in place; legality is preserved by construction.

    Args:
        problem: a placed problem (illegal layouts are compacted too — the
            guard only ever *rejects* moves, so it cannot repair them).
        step: per-move translation distance [m].
        max_passes: bound on full sweeps over the components.

    Returns:
        Area bookkeeping; the problem's placements are updated in place.
    """
    if step <= 0.0:
        raise ValueError("step must be positive")
    session = InteractiveSession(problem)
    area_before = placement_area(problem)
    moves = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        moved_this_pass = 0
        for ref in list(problem.components):
            comp = problem.components[ref]
            if comp.fixed or not comp.is_placed:
                continue
            if session.compact_step(ref, step=step) is not None:
                moved_this_pass += 1
        moves += moved_this_pass
        if moved_this_pass == 0:
            break
    return CompactionResult(
        area_before=area_before,
        area_after=placement_area(problem),
        moves=moves,
        passes=passes,
    )
