"""Design-rule checking with red/green visualisation geometry.

The paper's interactive adviser: *"Online design rule checks visualize
design rule violations immediately by changing the colors"* and the result
figures show *"magnetic coupling violating the design rules (indicated by
red circles)"* / *"all specified minimum distance rules are met (indicated
by green circles)"*.

Every check returns typed :class:`Violation` records carrying the geometry
needed for those markers; :meth:`DesignRuleChecker.rule_markers` emits one
circle per min-distance rule, coloured by compliance — the Fig. 15/17
rendering data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Vec2
from ..obs import get_tracer
from ..rules import MinDistanceRule, emd_for_pair
from .metrics import group_spread, net_hpwl
from .model import PlacementProblem

__all__ = ["Violation", "RuleMarker", "DesignRuleChecker"]


@dataclass(frozen=True)
class Violation:
    """One rule violation.

    Attributes:
        kind: rule discriminator ("overlap", "clearance", "min_distance",
            "keepin", "keepout", "group", "net_length").
        refs: the reference designators involved.
        required: the constraint value (metres for distances).
        actual: the observed value.
        location: a representative board point for the marker.
        message: human-readable description.
    """

    kind: str
    refs: tuple[str, ...]
    required: float
    actual: float
    location: Vec2
    message: str

    @property
    def deficit(self) -> float:
        """How far the rule is missed (positive for violations)."""
        return self.required - self.actual


@dataclass(frozen=True)
class RuleMarker:
    """Visualisation circle for one pairwise rule (red when violated)."""

    ref_a: str
    ref_b: str
    center: Vec2
    radius: float
    satisfied: bool

    @property
    def color(self) -> str:
        """SVG colour of the marker."""
        return "green" if self.satisfied else "red"


class DesignRuleChecker:
    """Checks a :class:`PlacementProblem` against its rule set."""

    def __init__(self, problem: PlacementProblem):
        self.problem = problem

    # -- individual checks --------------------------------------------------

    def check_body_spacing(self, only: str | None = None) -> list[Violation]:
        """Overlap / clearance between component bodies (AABB + clearance)."""
        out: list[Violation] = []
        placed = self.problem.placed()
        for i in range(len(placed)):
            for j in range(i + 1, len(placed)):
                a, b = placed[i], placed[j]
                if only is not None and only not in (a.refdes, b.refdes):
                    continue
                if a.board != b.board:
                    continue
                required = self.problem.rules.clearance_for(
                    a.refdes,
                    b.refdes,
                    max(
                        self.problem.default_clearance,
                        a.component.clearance,
                        b.component.clearance,
                    ),
                )
                ra, rb = a.footprint_aabb(), b.footprint_aabb()
                actual = ra.separation(rb)
                # 1 um grace keeps exactly-at-clearance layouts (and their
                # ASCII round-trips) legal despite float formatting.
                tolerance = 1e-6
                if ra.overlaps(rb):
                    mid = (a.center() + b.center()) / 2.0
                    out.append(
                        Violation(
                            "overlap",
                            (a.refdes, b.refdes),
                            required,
                            0.0,
                            mid,
                            f"{a.refdes} overlaps {b.refdes}",
                        )
                    )
                elif actual < required - tolerance:
                    mid = (a.center() + b.center()) / 2.0
                    out.append(
                        Violation(
                            "clearance",
                            (a.refdes, b.refdes),
                            required,
                            actual,
                            mid,
                            f"{a.refdes}-{b.refdes} clearance "
                            f"{actual * 1e3:.2f} mm < {required * 1e3:.2f} mm",
                        )
                    )
        return out

    def check_min_distances(self, only: str | None = None) -> list[Violation]:
        """The EMC rules: centre distance >= EMD = PEMD * |cos(alpha)|."""
        out: list[Violation] = []
        for rule in self.problem.rules.min_distance:
            if only is not None and only not in (rule.ref_a, rule.ref_b):
                continue
            violation = self._min_distance_violation(rule)
            if violation is not None:
                out.append(violation)
        return out

    def _min_distance_violation(self, rule: MinDistanceRule) -> Violation | None:
        a = self.problem.components.get(rule.ref_a)
        b = self.problem.components.get(rule.ref_b)
        if a is None or b is None or not (a.is_placed and b.is_placed):
            return None
        if a.board != b.board:
            return None
        emd = emd_for_pair(
            a.component, a.placement, b.component, b.placement, rule.pemd, rule.residual
        )
        actual = a.center().distance_to(b.center())
        if actual + 1e-12 >= emd:
            return None
        mid = (a.center() + b.center()) / 2.0
        return Violation(
            "min_distance",
            (rule.ref_a, rule.ref_b),
            emd,
            actual,
            mid,
            f"{rule.ref_a}-{rule.ref_b} EMD {emd * 1e3:.1f} mm "
            f"> distance {actual * 1e3:.1f} mm (PEMD {rule.pemd * 1e3:.1f} mm)",
        )

    def check_keepin(self, only: str | None = None) -> list[Violation]:
        """Footprints must lie inside an allowed placement area."""
        out: list[Violation] = []
        for comp in self.problem.placed():
            if only is not None and comp.refdes != only:
                continue
            board = self.problem.board(comp.board)
            areas = board.areas or [board.default_area()]
            if comp.allowed_areas:
                areas = [a for a in areas if a.name in comp.allowed_areas]
                if not areas:
                    areas = [board.default_area()]
            rect = comp.footprint_aabb()
            if not any(area.contains_footprint(rect) for area in areas):
                out.append(
                    Violation(
                        "keepin",
                        (comp.refdes,),
                        0.0,
                        0.0,
                        comp.center(),
                        f"{comp.refdes} outside its allowed placement area(s)",
                    )
                )
        return out

    def check_keepouts(self, only: str | None = None) -> list[Violation]:
        """Bodies must not intersect 3-D keepout volumes (z-offset aware)."""
        out: list[Violation] = []
        for comp in self.problem.placed():
            if only is not None and comp.refdes != only:
                continue
            board = self.problem.board(comp.board)
            body = comp.body_cuboid()
            for keepout in board.keepouts:
                if body.overlaps(keepout.cuboid):
                    out.append(
                        Violation(
                            "keepout",
                            (comp.refdes,),
                            0.0,
                            0.0,
                            comp.center(),
                            f"{comp.refdes} intrudes into keepout {keepout.name!r}",
                        )
                    )
        return out

    def check_groups(self) -> list[Violation]:
        """Functional groups must be coherent and exclusive.

        Two conditions: spread within the rule's bound (when a
        GroupCoherenceRule exists), and no foreign component closer to the
        group centroid than its outermost member (exclusivity — groups end
        up in *separate coherent areas*).
        """
        from .metrics import group_centroid

        out: list[Violation] = []
        for rule in self.problem.rules.groups:
            members = [
                self.problem.components[r]
                for r in rule.members
                if r in self.problem.components and self.problem.components[r].is_placed
            ]
            if len(members) < 2:
                continue
            spread = group_spread(self.problem, rule.group)
            if spread > rule.max_spread:
                centroid = group_centroid(self.problem, rule.group) or Vec2.zero()
                out.append(
                    Violation(
                        "group",
                        tuple(rule.members),
                        rule.max_spread,
                        spread,
                        centroid,
                        f"group {rule.group!r} spread {spread * 1e3:.1f} mm "
                        f"> {rule.max_spread * 1e3:.1f} mm",
                    )
                )
        return out

    def check_net_lengths(self) -> list[Violation]:
        """Total net length bounds."""
        out: list[Violation] = []
        by_name = {n.name: n for n in self.problem.nets}
        for rule in self.problem.rules.net_lengths:
            net = by_name.get(rule.net)
            if net is None:
                continue
            length = net_hpwl(self.problem, net)
            if length > rule.max_length:
                refs = tuple(sorted(net.refdes_set()))
                first = self.problem.components.get(refs[0]) if refs else None
                loc = first.center() if first is not None and first.is_placed else Vec2.zero()
                out.append(
                    Violation(
                        "net_length",
                        refs,
                        rule.max_length,
                        length,
                        loc,
                        f"net {rule.net!r} length {length * 1e3:.1f} mm "
                        f"> {rule.max_length * 1e3:.1f} mm",
                    )
                )
        return out

    # -- aggregate interfaces -------------------------------------------------

    def check_all(self) -> list[Violation]:
        """Every rule category, concatenated."""
        tracer = get_tracer()
        with tracer.span("placement.drc.check_all"):
            tracer.count("placement.drc_checks")
            return (
                self.check_body_spacing()
                + self.check_min_distances()
                + self.check_keepin()
                + self.check_keepouts()
                + self.check_groups()
                + self.check_net_lengths()
            )

    def check_component(self, refdes: str) -> list[Violation]:
        """Incremental check for one (moved) component — the online DRC."""
        tracer = get_tracer()
        tracer.count("placement.drc_checks")
        return (
            self.check_body_spacing(only=refdes)
            + self.check_min_distances(only=refdes)
            + self.check_keepin(only=refdes)
            + self.check_keepouts(only=refdes)
            + self.check_groups()
        )

    def is_legal(self) -> bool:
        """True when the layout satisfies every rule."""
        return not self.check_all()

    def rule_markers(self) -> list[RuleMarker]:
        """One circle per min-distance rule — the red/green Fig. 15/17 data.

        The circle is centred between the pair with radius EMD/2, so two
        touching circles mean the rule is exactly met.
        """
        markers: list[RuleMarker] = []
        for rule in self.problem.rules.min_distance:
            a = self.problem.components.get(rule.ref_a)
            b = self.problem.components.get(rule.ref_b)
            if a is None or b is None or not (a.is_placed and b.is_placed):
                continue
            if a.board != b.board:
                continue
            emd = emd_for_pair(
                a.component, a.placement, b.component, b.placement, rule.pemd, rule.residual
            )
            actual = a.center().distance_to(b.center())
            mid = (a.center() + b.center()) / 2.0
            markers.append(
                RuleMarker(
                    ref_a=rule.ref_a,
                    ref_b=rule.ref_b,
                    center=mid,
                    radius=max(emd / 2.0, 1e-4),
                    satisfied=actual + 1e-12 >= emd,
                )
            )
        return markers
