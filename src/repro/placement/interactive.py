"""Interactive placement session with online design-rule checking.

The paper, section 4: *"During interactive movement/rotation of a selected
component the user can utilize different placement adviser functionality …
Online design rule checks visualize design rule violations immediately by
changing the colors.  By using this functionality a minimization of the
system volume is possible since relevant constraints are controlled
simultaneously."*

:class:`InteractiveSession` is that loop without the pixels: select a
component, nudge or rotate it, and receive the incremental DRC verdict and
the red/green rule markers after every operation.  An undo stack makes
explorative volume-minimisation safe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import Placement2D, Vec2
from .drc import DesignRuleChecker, RuleMarker, Violation
from .metrics import placement_area
from .model import PlacementProblem

__all__ = ["MoveResult", "InteractiveSession"]


@dataclass
class MoveResult:
    """Feedback after one interactive operation."""

    refdes: str
    violations: list[Violation]
    markers: list[RuleMarker]
    area: float

    @property
    def legal(self) -> bool:
        """No violation involves the moved component."""
        return not self.violations


class InteractiveSession:
    """Stateful move/rotate API with immediate rule feedback."""

    def __init__(self, problem: PlacementProblem):
        self.problem = problem
        self.checker = DesignRuleChecker(problem)
        self._selected: str | None = None
        self._undo: list[tuple[str, Placement2D | None]] = []

    # -- selection ----------------------------------------------------------

    def select(self, refdes: str) -> None:
        """Select the component subsequent operations act on.

        Raises:
            KeyError: for unknown refdes.
            ValueError: when trying to select a fixed (preplaced) part.
        """
        comp = self.problem.components.get(refdes)
        if comp is None:
            raise KeyError(f"no component {refdes!r}")
        if comp.fixed:
            raise ValueError(f"{refdes} is preplaced/fixed and cannot be moved")
        self._selected = refdes

    @property
    def selected(self) -> str | None:
        """Currently selected refdes."""
        return self._selected

    # -- operations ------------------------------------------------------------

    def _require_selection(self) -> str:
        if self._selected is None:
            raise RuntimeError("no component selected")
        return self._selected

    def _feedback(self, refdes: str) -> MoveResult:
        return MoveResult(
            refdes=refdes,
            violations=self.checker.check_component(refdes),
            markers=self.checker.rule_markers(),
            area=placement_area(self.problem),
        )

    def move_to(self, position: Vec2) -> MoveResult:
        """Teleport the selected component to an absolute position."""
        ref = self._require_selection()
        comp = self.problem.components[ref]
        self._undo.append((ref, comp.placement))
        comp.placement = (
            Placement2D(position, 0.0)
            if comp.placement is None
            else comp.placement.moved_to(position)
        )
        return self._feedback(ref)

    def move_by(self, delta: Vec2) -> MoveResult:
        """Nudge the selected component.

        Raises:
            RuntimeError: if the part is unplaced (nothing to nudge).
        """
        ref = self._require_selection()
        comp = self.problem.components[ref]
        if comp.placement is None:
            raise RuntimeError(f"{ref} is unplaced; use move_to first")
        self._undo.append((ref, comp.placement))
        comp.placement = comp.placement.translated(delta)
        return self._feedback(ref)

    def rotate_to(self, angle_deg: float) -> MoveResult:
        """Set the selected component's absolute rotation."""
        ref = self._require_selection()
        comp = self.problem.components[ref]
        if comp.placement is None:
            raise RuntimeError(f"{ref} is unplaced; use move_to first")
        self._undo.append((ref, comp.placement))
        comp.placement = comp.placement.rotated_to(math.radians(angle_deg))
        return self._feedback(ref)

    def rotate_by(self, delta_deg: float) -> MoveResult:
        """Rotate the selected component relatively (the 90-degree decouple
        move of the paper's Fig. 6 is ``rotate_by(90)``)."""
        ref = self._require_selection()
        comp = self.problem.components[ref]
        if comp.placement is None:
            raise RuntimeError(f"{ref} is unplaced; use move_to first")
        self._undo.append((ref, comp.placement))
        comp.placement = comp.placement.rotated_to(
            comp.placement.rotation_rad + math.radians(delta_deg)
        )
        return self._feedback(ref)

    # -- session services --------------------------------------------------------

    def undo(self) -> bool:
        """Revert the last operation; returns False on an empty stack."""
        if not self._undo:
            return False
        ref, placement = self._undo.pop()
        self.problem.components[ref].placement = placement
        return True

    def markers(self) -> list[RuleMarker]:
        """Current red/green circles for all pairwise rules."""
        return self.checker.rule_markers()

    def board_is_legal(self) -> bool:
        """Full-board DRC verdict."""
        return self.checker.is_legal()

    def area(self) -> float:
        """Current placement bounding-box area (the volume proxy)."""
        return placement_area(self.problem)

    def suggest_position(self, refdes: str) -> Vec2 | None:
        """Adviser: the best legal position for a component, given all
        current rules and the rest of the layout.

        Uses the automatic placer's candidate search without committing —
        the user decides whether to :meth:`move_to` the suggestion.  The
        component's current placement is ignored during the search (it is
        "lifted" like during a drag), and restored afterwards.

        Returns None when no legal position exists.
        """
        from .placer import AutoPlacer

        comp = self.problem.components.get(refdes)
        if comp is None:
            raise KeyError(f"no component {refdes!r}")
        original = comp.placement
        rotation = original.rotation_deg if original is not None else 0.0
        comp.placement = None
        try:
            placer = AutoPlacer(self.problem, optimize_rotation=False)
            return placer._best_candidate(comp, rotation)  # noqa: SLF001
        finally:
            comp.placement = original

    def compact_step(self, refdes: str, step: float = 1e-3) -> MoveResult | None:
        """Adviser: move a part one step towards the placement centroid if
        that stays legal; returns None when no legal step exists.

        This is the kernel of manual volume minimisation: repeated calls
        shrink the layout while the online DRC guards every move.
        """
        self.select(refdes)
        comp = self.problem.components[refdes]
        if comp.placement is None:
            return None
        placed = [c for c in self.problem.placed() if c.refdes != refdes]
        if not placed:
            return None
        cx = sum(c.center().x for c in placed) / len(placed)
        cy = sum(c.center().y for c in placed) / len(placed)
        direction = Vec2(cx, cy) - comp.center()
        if direction.norm() < step:
            return None
        delta = direction.normalized() * step
        result = self.move_by(delta)
        if not result.legal:
            self.undo()
            return None
        return result
