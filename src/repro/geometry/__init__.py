"""Geometry kernel: vectors, transforms, polygons and collision primitives.

Everything the PEEC field engine and the placement tool share lives here so
that component geometry has a single source of truth.
"""

from .polygon import Polygon2D, convex_hull
from .shapes import Cuboid, OrientedRect, Rect
from .transform import Placement2D, Transform3D, angle_between, normalize_angle
from .vec import EPS, Vec2, Vec3, almost_equal, deg_to_rad, rad_to_deg

__all__ = [
    "EPS",
    "Vec2",
    "Vec3",
    "almost_equal",
    "deg_to_rad",
    "rad_to_deg",
    "Placement2D",
    "Transform3D",
    "normalize_angle",
    "angle_between",
    "Polygon2D",
    "convex_hull",
    "Rect",
    "OrientedRect",
    "Cuboid",
]
