"""Simple polygons for placement areas, keepins and board outlines.

The placement tool of the paper supports *"different arbitrary shaped
placement areas"*; this module provides the polygon predicates the placer
needs: containment (point and rectangle), area/centroid, bounding box,
inward offset (erosion) for clearance handling, and uniform boundary
sampling for candidate generation.  Polygons are simple (non
self-intersecting) and stored counter-clockwise.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from .vec import EPS, Vec2

__all__ = ["Polygon2D", "convex_hull"]


def _signed_area(points: Sequence[Vec2]) -> float:
    total = 0.0
    n = len(points)
    if n == 0:
        return 0.0
    for i in range(n):
        a = points[i]
        b = points[(i + 1) % n]
        total += a.cross(b)
    return 0.5 * total


def convex_hull(points: Iterable[Vec2]) -> list[Vec2]:
    """Andrew's monotone-chain convex hull; returns CCW vertices without
    the closing repeat.  Collinear points on the hull are dropped.

    The orientation predicate is evaluated in *exact rational arithmetic*
    (floats convert to :class:`fractions.Fraction` losslessly), so the
    hull is combinatorially correct for any input — epsilon-thresholded
    cross products misclassify near-collinear triples and can discard
    extreme points.
    """
    from fractions import Fraction

    pts = sorted(set((p.x, p.y) for p in points))
    if len(pts) <= 2:
        return [Vec2(x, y) for x, y in pts]

    def orientation(
        o: tuple[float, float], a: tuple[float, float], p: tuple[float, float]
    ) -> int:
        """Exact sign of the cross product (o->a) x (o->p)."""
        cross = (Fraction(a[0]) - Fraction(o[0])) * (
            Fraction(p[1]) - Fraction(o[1])
        ) - (Fraction(a[1]) - Fraction(o[1])) * (Fraction(p[0]) - Fraction(o[0]))
        if cross > 0:
            return 1
        if cross < 0:
            return -1
        return 0

    def half(seq: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
        out: list[tuple[float, float]] = []
        for p in seq:
            # Pop right turns and exact collinear middles (lexicographic
            # order along a line equals geometric order, so the popped
            # point is genuinely interior).
            while len(out) >= 2 and orientation(out[-2], out[-1], p) <= 0:
                out.pop()
            out.append(p)
        return out

    lower = half(pts)
    upper = half(reversed(pts))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        # Fully collinear input collapses to its extreme pair.
        return [Vec2(*lower[0]), Vec2(*lower[-1])]
    return [Vec2(x, y) for x, y in hull]


@dataclass
class Polygon2D:
    """A simple polygon with counter-clockwise vertex order.

    Construction normalises orientation: clockwise input is reversed, so
    callers may supply vertices in either winding.
    """

    vertices: list[Vec2] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        if _signed_area(self.vertices) < 0.0:
            self.vertices = list(reversed(self.vertices))

    # -- basic measures -------------------------------------------------

    def area(self) -> float:
        """Enclosed area (always positive)."""
        return abs(_signed_area(self.vertices))

    def perimeter(self) -> float:
        """Total boundary length."""
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        return sum(
            self.vertices[i].distance_to(self.vertices[(i + 1) % n]) for i in range(n)
        )

    def centroid(self) -> Vec2:
        """Area centroid."""
        a = _signed_area(self.vertices)
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        if -EPS < a < EPS:
            # Degenerate: fall back to vertex average.
            sx = sum(v.x for v in self.vertices)
            sy = sum(v.y for v in self.vertices)
            return Vec2(sx / n, sy / n)
        cx = cy = 0.0
        for i in range(n):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % n]
            w = p.cross(q)
            cx += (p.x + q.x) * w
            cy += (p.y + q.y) * w
        return Vec2(cx / (6.0 * a), cy / (6.0 * a))

    def bbox(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box as (xmin, ymin, xmax, ymax)."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return min(xs), min(ys), max(xs), max(ys)

    # -- predicates ------------------------------------------------------

    def contains_point(self, p: Vec2, tol: float = EPS) -> bool:
        """Point-in-polygon test; boundary points count as inside."""
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        inside = False
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            # On-edge check.
            ab = b - a
            ap = p - a
            cross = ab.cross(ap)
            if abs(cross) <= tol * max(1.0, ab.norm()):
                t = ap.dot(ab)
                if -tol <= t <= ab.norm_sq() + tol:
                    return True
            # Ray casting (horizontal ray towards +x), division-free: the
            # crossing test 'x_int > p.x' is the sign of the edge/ray cross
            # product, oriented by the edge's y direction (dy != 0 inside
            # this branch by construction).
            if (a.y > p.y) != (b.y > p.y):
                dy = b.y - a.y
                crossing = (p.y - a.y) * (b.x - a.x) - (p.x - a.x) * dy
                if (crossing > 0.0) if (dy > 0.0) else (crossing < 0.0):
                    inside = not inside
        return inside

    def contains_rect(self, xmin: float, ymin: float, xmax: float, ymax: float) -> bool:
        """True if an axis-aligned rectangle lies fully inside.

        Checks the four corners plus non-intersection of the rectangle
        edges with polygon edges — sufficient for simple polygons.
        """
        corners = [Vec2(xmin, ymin), Vec2(xmax, ymin), Vec2(xmax, ymax), Vec2(xmin, ymax)]
        if not all(self.contains_point(c) for c in corners):
            return False
        rect_edges = [
            (corners[0], corners[1]),
            (corners[1], corners[2]),
            (corners[2], corners[3]),
            (corners[3], corners[0]),
        ]
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            for p, q in rect_edges:
                if _segments_properly_intersect(a, b, p, q):
                    return False
        return True

    def intersects_rect(self, xmin: float, ymin: float, xmax: float, ymax: float) -> bool:
        """True if the rectangle overlaps the polygon at all."""
        pxmin, pymin, pxmax, pymax = self.bbox()
        if xmax < pxmin or pxmax < xmin or ymax < pymin or pymax < ymin:
            return False
        corners = [Vec2(xmin, ymin), Vec2(xmax, ymin), Vec2(xmax, ymax), Vec2(xmin, ymax)]
        if any(self.contains_point(c) for c in corners):
            return True
        # Rectangle could fully contain the polygon.
        v0 = self.vertices[0]
        if xmin <= v0.x <= xmax and ymin <= v0.y <= ymax:
            return True
        rect_edges = [
            (corners[0], corners[1]),
            (corners[1], corners[2]),
            (corners[2], corners[3]),
            (corners[3], corners[0]),
        ]
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        return any(
            _segments_properly_intersect(
                self.vertices[i], self.vertices[(i + 1) % n], p, q
            )
            for i in range(n)
            for p, q in rect_edges
        )

    # -- construction helpers ---------------------------------------------

    def eroded(self, margin: float) -> "Polygon2D | None":
        """Shrink the polygon inwards by ``margin`` (edge-offset erosion).

        Each edge is shifted inwards along its normal and adjacent edges are
        re-intersected.  Exact for convex polygons; a good approximation for
        the mildly non-convex outlines boards actually use.  Returns None if
        the polygon vanishes.
        """
        if margin <= 0.0:
            return Polygon2D(list(self.vertices))
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        shifted: list[tuple[Vec2, Vec2]] = []
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            edge = b - a
            if edge.norm() < EPS:
                continue
            # CCW polygon: the inward normal is the edge direction rotated -90 deg.
            normal = Vec2(edge.y, -edge.x).normalized() * -1.0
            shifted.append((a + normal * margin, b + normal * margin))
        m = len(shifted)
        if m < 3:
            return None
        out: list[Vec2] = []
        for i in range(m):
            p1, p2 = shifted[i]
            q1, q2 = shifted[(i + 1) % m]
            pt = _line_intersection(p1, p2, q1, q2)
            if pt is None:
                pt = p2
            out.append(pt)
        try:
            poly = Polygon2D(out)
        except ValueError:
            return None
        if poly.area() < EPS or _signed_area(out) <= 0.0:
            return None
        # Over-erosion can "evert" the polygon into a small false-positive
        # shape; genuine eroded vertices sit at least `margin` from the
        # original boundary (up to numerical slack at reflex corners).
        for v in poly.vertices:
            if not self.contains_point(v):
                return None
            if self.distance_to_boundary(v) < margin * 0.99 - EPS:
                return None
        return poly

    def distance_to_boundary(self, p: Vec2) -> float:
        """Distance from a point to the polygon's boundary (0 on it)."""
        best = math.inf
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            ab = b - a
            denom = ab.norm_sq()
            if denom < EPS:
                best = min(best, p.distance_to(a))
                continue
            t = max(0.0, min(1.0, (p - a).dot(ab) / denom))
            best = min(best, p.distance_to(a + ab * t))
        return best

    def boundary_samples(self, spacing: float) -> list[Vec2]:
        """Points along the boundary roughly ``spacing`` apart (vertices included)."""
        if spacing <= 0.0:
            raise ValueError("spacing must be positive")
        samples: list[Vec2] = []
        n = len(self.vertices)
        assert n >= 3, "__post_init__ guarantees at least 3 vertices"
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            length = a.distance_to(b)
            steps = max(1, int(math.ceil(length / spacing)))
            assert steps >= 1, "max(1, ...) keeps the step count positive"
            for s in range(steps):
                t = s / steps
                samples.append(Vec2(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)))
        return samples

    def grid_samples(self, spacing: float) -> list[Vec2]:
        """Interior points on a regular grid with the given spacing."""
        if spacing <= 0.0:
            raise ValueError("spacing must be positive")
        xmin, ymin, xmax, ymax = self.bbox()
        pts: list[Vec2] = []
        y = ymin
        while y <= ymax + EPS:
            x = xmin
            while x <= xmax + EPS:
                p = Vec2(x, y)
                if self.contains_point(p):
                    pts.append(p)
                x += spacing
            y += spacing
        return pts

    @staticmethod
    def rectangle(xmin: float, ymin: float, xmax: float, ymax: float) -> "Polygon2D":
        """Axis-aligned rectangular polygon."""
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("rectangle must have positive extent")
        return Polygon2D(
            [Vec2(xmin, ymin), Vec2(xmax, ymin), Vec2(xmax, ymax), Vec2(xmin, ymax)]
        )

    @staticmethod
    def regular(center: Vec2, radius: float, sides: int) -> "Polygon2D":
        """Regular polygon approximating a circle (used for round areas)."""
        if sides < 3:
            raise ValueError("need at least 3 sides")
        return Polygon2D(
            [
                center + Vec2.from_polar(radius, 2.0 * math.pi * i / sides)
                for i in range(sides)
            ]
        )


def _line_intersection(p1: Vec2, p2: Vec2, q1: Vec2, q2: Vec2) -> Vec2 | None:
    """Intersection point of the infinite lines (p1,p2) and (q1,q2)."""
    d1 = p2 - p1
    d2 = q2 - q1
    denom = d1.cross(d2)
    if -EPS < denom < EPS:
        return None
    t = (q1 - p1).cross(d2) / denom
    return p1 + d1 * t


def _segments_properly_intersect(a: Vec2, b: Vec2, c: Vec2, d: Vec2) -> bool:
    """True if open segments (a,b) and (c,d) cross at a single interior point."""
    d1 = (b - a).cross(c - a)
    d2 = (b - a).cross(d - a)
    d3 = (d - c).cross(a - c)
    d4 = (d - c).cross(b - c)
    return ((d1 > EPS and d2 < -EPS) or (d1 < -EPS and d2 > EPS)) and (
        (d3 > EPS and d4 < -EPS) or (d3 < -EPS and d4 > EPS)
    )
