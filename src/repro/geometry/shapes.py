"""Rectangles and cuboids — the collision primitives of the placement tool.

The paper's placer states: *"all placement relevant objects on board
(components, keepouts) are rectilinear approximated by rectangles or
cuboids"*.  This module provides oriented rectangles (component footprints at
arbitrary rotation), their axis-aligned rectilinear approximation, cuboids
for 3-D keepouts, and the separation / overlap queries the legaliser and the
online DRC run in their inner loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .transform import Placement2D
from .vec import EPS, Vec2

__all__ = ["Rect", "OrientedRect", "Cuboid"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle, the rectilinear approximation unit."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmax < self.xmin or self.ymax < self.ymin:
            raise ValueError(f"invalid Rect extents: {self}")

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.ymax - self.ymin

    def area(self) -> float:
        """Enclosed area."""
        return self.width * self.height

    def center(self) -> Vec2:
        """Geometric centre."""
        return Vec2(0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))

    def corners(self) -> list[Vec2]:
        """The four corners, counter-clockwise from (xmin, ymin)."""
        return [
            Vec2(self.xmin, self.ymin),
            Vec2(self.xmax, self.ymin),
            Vec2(self.xmax, self.ymax),
            Vec2(self.xmin, self.ymax),
        ]

    def inflated(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margin) uniformly on all sides."""
        r = Rect.__new__(Rect)
        object.__setattr__(r, "xmin", self.xmin - margin)
        object.__setattr__(r, "ymin", self.ymin - margin)
        object.__setattr__(r, "xmax", max(self.xmax + margin, self.xmin - margin))
        object.__setattr__(r, "ymax", max(self.ymax + margin, self.ymin - margin))
        return r

    def translated(self, delta: Vec2) -> "Rect":
        """Copy shifted by ``delta``."""
        return Rect(
            self.xmin + delta.x, self.ymin + delta.y, self.xmax + delta.x, self.ymax + delta.y
        )

    def contains_point(self, p: Vec2, tol: float = EPS) -> bool:
        """Closed containment test."""
        return (
            self.xmin - tol <= p.x <= self.xmax + tol
            and self.ymin - tol <= p.y <= self.ymax + tol
        )

    def overlaps(self, other: "Rect", tol: float = EPS) -> bool:
        """True if interiors overlap (touching edges do not count)."""
        return not (
            self.xmax <= other.xmin + tol
            or other.xmax <= self.xmin + tol
            or self.ymax <= other.ymin + tol
            or other.ymax <= self.ymin + tol
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (zero if disjoint)."""
        w = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        h = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def separation(self, other: "Rect") -> float:
        """Minimum edge-to-edge distance; 0 if the rectangles touch/overlap."""
        dx = max(0.0, max(other.xmin - self.xmax, self.xmin - other.xmax))
        dy = max(0.0, max(other.ymin - self.ymax, self.ymin - other.ymax))
        return math.hypot(dx, dy)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    @staticmethod
    def from_center(center: Vec2, width: float, height: float) -> "Rect":
        """Construct from centre and extents."""
        return Rect(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @staticmethod
    def bounding(points: list[Vec2]) -> "Rect":
        """Axis-aligned bounding box of a point set."""
        if not points:
            raise ValueError("cannot bound an empty point set")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return Rect(min(xs), min(ys), max(xs), max(ys))


@dataclass(frozen=True)
class OrientedRect:
    """A rectangle with arbitrary rotation — a component body footprint.

    Stored as centre, half-extents in the local frame and rotation.  The
    placer works mostly on :meth:`aabb` (the paper's rectilinear
    approximation) but exact corner geometry is kept for rendering and for
    tight separation queries in the interactive adviser.
    """

    center: Vec2
    half_w: float
    half_h: float
    rotation_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.half_w < 0.0 or self.half_h < 0.0:
            raise ValueError("half extents must be non-negative")

    def corners(self) -> list[Vec2]:
        """The four corners in board coordinates, counter-clockwise."""
        local = [
            Vec2(-self.half_w, -self.half_h),
            Vec2(self.half_w, -self.half_h),
            Vec2(self.half_w, self.half_h),
            Vec2(-self.half_w, self.half_h),
        ]
        return [c.rotated(self.rotation_rad) + self.center for c in local]

    def aabb(self) -> Rect:
        """Axis-aligned bounding box (the rectilinear approximation)."""
        c = math.cos(self.rotation_rad)
        s = math.sin(self.rotation_rad)
        ex = abs(c) * self.half_w + abs(s) * self.half_h
        ey = abs(s) * self.half_w + abs(c) * self.half_h
        return Rect(self.center.x - ex, self.center.y - ey, self.center.x + ex, self.center.y + ey)

    def area(self) -> float:
        """Exact rectangle area (rotation-invariant)."""
        return 4.0 * self.half_w * self.half_h

    def contains_point(self, p: Vec2, tol: float = EPS) -> bool:
        """Exact containment test in the rotated frame."""
        local = (p - self.center).rotated(-self.rotation_rad)
        return abs(local.x) <= self.half_w + tol and abs(local.y) <= self.half_h + tol

    def overlaps(self, other: "OrientedRect") -> bool:
        """Exact overlap test via the separating-axis theorem."""
        for rect_pair in ((self, other), (other, self)):
            a, b = rect_pair
            axes = [
                Vec2(1.0, 0.0).rotated(a.rotation_rad),
                Vec2(0.0, 1.0).rotated(a.rotation_rad),
            ]
            for axis in axes:
                a_min, a_max = _project(a, axis)
                b_min, b_max = _project(b, axis)
                if a_max <= b_min + EPS or b_max <= a_min + EPS:
                    return False
        return True

    def transformed(self, placement: Placement2D) -> "OrientedRect":
        """Apply a placement on top of the rect's own pose."""
        return OrientedRect(
            placement.apply(self.center),
            self.half_w,
            self.half_h,
            self.rotation_rad + placement.rotation_rad,
        )

    @staticmethod
    def from_footprint(width: float, height: float, placement: Placement2D) -> "OrientedRect":
        """Footprint centred on the component origin under a placement."""
        return OrientedRect(placement.position, width / 2.0, height / 2.0, placement.rotation_rad)


def _project(r: OrientedRect, axis: Vec2) -> tuple[float, float]:
    vals = [c.dot(axis) for c in r.corners()]
    return min(vals), max(vals)


@dataclass(frozen=True)
class Cuboid:
    """Axis-aligned cuboid for 3-D keepouts and component bodies.

    The paper's tool supports *"3D keepouts with/without z-offset"*: a
    keepout that starts above the board (e.g. under a heatsink overhang)
    blocks only components taller than the gap.
    """

    rect: Rect
    zmin: float
    zmax: float

    def __post_init__(self) -> None:
        if self.zmax < self.zmin:
            raise ValueError("zmax must be >= zmin")

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.zmax - self.zmin

    def volume(self) -> float:
        """Enclosed volume."""
        return self.rect.area() * self.height

    def overlaps(self, other: "Cuboid", tol: float = EPS) -> bool:
        """True if the interiors intersect in all three dimensions."""
        if self.zmax <= other.zmin + tol or other.zmax <= self.zmin + tol:
            return False
        return self.rect.overlaps(other.rect, tol)

    def translated(self, delta: Vec2, dz: float = 0.0) -> "Cuboid":
        """Copy shifted in the plane and vertically."""
        return Cuboid(self.rect.translated(delta), self.zmin + dz, self.zmax + dz)

    @staticmethod
    def from_body(footprint: Rect, body_height: float, z_offset: float = 0.0) -> "Cuboid":
        """Component body: footprint extruded from ``z_offset`` upwards."""
        return Cuboid(footprint, z_offset, z_offset + body_height)
