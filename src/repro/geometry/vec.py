"""Small fixed-dimension vector types used throughout the geometry kernel.

The placement tool and the PEEC engine both work on explicit coordinates, so
these types are deliberately lightweight: immutable dataclasses backed by
plain floats, with numpy interop (``as_array``) where the field solvers need
vectorised math.  Units are SI metres everywhere unless a function says
otherwise (the ASCII interface and some component catalogues use millimetres
and convert at the boundary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Vec2", "Vec3", "EPS", "almost_equal", "deg_to_rad", "rad_to_deg"]

#: Geometric tolerance, in metres, for coincidence tests.  One nanometre is
#: far below any manufacturable feature and above float64 noise for
#: board-scale (<1 m) coordinates.
EPS = 1e-9


def almost_equal(a: float, b: float, tol: float = EPS) -> bool:
    """Return True if ``a`` and ``b`` differ by at most ``tol``."""
    return abs(a - b) <= tol


def deg_to_rad(angle_deg: float) -> float:
    """Convert degrees to radians."""
    return angle_deg * math.pi / 180.0


def rad_to_deg(angle_rad: float) -> float:
    """Convert radians to degrees."""
    return angle_rad * 180.0 / math.pi


@dataclass(frozen=True)
class Vec2:
    """An immutable 2-D vector / point in the board plane."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        if scalar == 0:
            raise ZeroDivisionError("Vec2 division by zero scalar")
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt in hot loops)."""
        return self.x * self.x + self.y * self.y

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        n = self.norm()
        if n < EPS:
            raise ZeroDivisionError("cannot normalise a (near-)zero Vec2")
        return Vec2(self.x / n, self.y / n)

    def perp(self) -> "Vec2":
        """The vector rotated +90 degrees (counter-clockwise)."""
        return Vec2(-self.y, self.x)

    def rotated(self, angle_rad: float) -> "Vec2":
        """The vector rotated counter-clockwise by ``angle_rad``."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def angle(self) -> float:
        """Polar angle in radians, in (-pi, pi]."""
        return math.atan2(self.y, self.x)

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to another point."""
        return (self - other).norm()

    def as_array(self) -> np.ndarray:
        """Return the coordinates as a (2,) float64 numpy array."""
        return np.array([self.x, self.y], dtype=float)

    def as_vec3(self, z: float = 0.0) -> "Vec3":
        """Lift into 3-D at height ``z``."""
        return Vec3(self.x, self.y, z)

    def is_close(self, other: "Vec2", tol: float = EPS) -> bool:
        """Component-wise closeness test."""
        return almost_equal(self.x, other.x, tol) and almost_equal(self.y, other.y, tol)

    @staticmethod
    def zero() -> "Vec2":
        """The origin."""
        return Vec2(0.0, 0.0)

    @staticmethod
    def from_polar(radius: float, angle_rad: float) -> "Vec2":
        """Construct from polar coordinates."""
        return Vec2(radius * math.cos(angle_rad), radius * math.sin(angle_rad))


@dataclass(frozen=True)
class Vec3:
    """An immutable 3-D vector / point (board plane is z = 0)."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        if scalar == 0:
            raise ZeroDivisionError("Vec3 division by zero scalar")
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def dot(self, other: "Vec3") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Vector (cross) product."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def norm_sq(self) -> float:
        """Squared Euclidean length."""
        return self.dot(self)

    def normalized(self) -> "Vec3":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        n = self.norm()
        if n < EPS:
            raise ZeroDivisionError("cannot normalise a (near-)zero Vec3")
        return Vec3(self.x / n, self.y / n, self.z / n)

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to another point."""
        return (self - other).norm()

    def as_array(self) -> np.ndarray:
        """Return the coordinates as a (3,) float64 numpy array."""
        return np.array([self.x, self.y, self.z], dtype=float)

    def xy(self) -> Vec2:
        """Project onto the board plane."""
        return Vec2(self.x, self.y)

    def rotated_z(self, angle_rad: float) -> "Vec3":
        """Rotate about the +z axis (board normal), counter-clockwise."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Vec3(c * self.x - s * self.y, s * self.x + c * self.y, self.z)

    def mirrored_z(self, plane_z: float = 0.0) -> "Vec3":
        """Mirror through the horizontal plane at ``plane_z`` (image method)."""
        return Vec3(self.x, self.y, 2.0 * plane_z - self.z)

    def is_close(self, other: "Vec3", tol: float = EPS) -> bool:
        """Component-wise closeness test."""
        return (
            almost_equal(self.x, other.x, tol)
            and almost_equal(self.y, other.y, tol)
            and almost_equal(self.z, other.z, tol)
        )

    @staticmethod
    def zero() -> "Vec3":
        """The origin."""
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def from_array(arr: np.ndarray) -> "Vec3":
        """Construct from any length-3 sequence."""
        return Vec3(float(arr[0]), float(arr[1]), float(arr[2]))
