"""Rigid-body transforms for placing component geometry on a board.

A component's internal current path, pads and body are described in its own
local frame; a :class:`Placement2D` (x, y, rotation about z, optional board
side / z offset) maps that local frame into board coordinates.  Only rigid
transforms are needed — the placement tool never scales or shears geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .vec import Vec2, Vec3, deg_to_rad

__all__ = ["Placement2D", "Transform3D", "normalize_angle", "angle_between"]


def normalize_angle(angle_rad: float) -> float:
    """Wrap an angle into [0, 2*pi)."""
    two_pi = 2.0 * math.pi
    a = math.fmod(angle_rad, two_pi)
    if a < 0.0:
        a += two_pi
    if a >= two_pi:  # rounding of (-eps + 2*pi) can land exactly on 2*pi
        a -= two_pi
    return a


def angle_between(a_rad: float, b_rad: float) -> float:
    """Smallest absolute angular difference between two directions, in [0, pi]."""
    d = normalize_angle(a_rad - b_rad)
    return min(d, 2.0 * math.pi - d)


@dataclass(frozen=True)
class Placement2D:
    """Position + rotation of a component on the board plane.

    Attributes:
        position: component origin in board coordinates (metres).
        rotation_rad: counter-clockwise rotation about the board normal.
        z_offset: base height of the component above the board surface
            (non-zero for parts on standoffs or stacked boards).
        side: ``+1`` for the top side, ``-1`` for the bottom side of the
            board (bottom-side parts are mirrored through the board plane
            by the 3-D lift in :meth:`to_transform3d`).
    """

    position: Vec2
    rotation_rad: float = 0.0
    z_offset: float = 0.0
    side: int = 1

    def __post_init__(self) -> None:
        if self.side not in (1, -1):
            raise ValueError(f"side must be +1 or -1, got {self.side}")

    def apply(self, local: Vec2) -> Vec2:
        """Map a local 2-D point into board coordinates."""
        return local.rotated(self.rotation_rad) + self.position

    def apply_direction(self, local_dir: Vec2) -> Vec2:
        """Rotate a local direction into board coordinates (no translation)."""
        return local_dir.rotated(self.rotation_rad)

    def inverse_apply(self, world: Vec2) -> Vec2:
        """Map a board-coordinate point back into the local frame."""
        return (world - self.position).rotated(-self.rotation_rad)

    def moved_to(self, position: Vec2) -> "Placement2D":
        """Copy with a new position."""
        return Placement2D(position, self.rotation_rad, self.z_offset, self.side)

    def rotated_to(self, rotation_rad: float) -> "Placement2D":
        """Copy with a new absolute rotation."""
        return Placement2D(self.position, rotation_rad, self.z_offset, self.side)

    def translated(self, delta: Vec2) -> "Placement2D":
        """Copy shifted by ``delta``."""
        return Placement2D(self.position + delta, self.rotation_rad, self.z_offset, self.side)

    def to_transform3d(self) -> "Transform3D":
        """Lift into a 3-D transform (rotation about z, then translation)."""
        return Transform3D(
            translation=Vec3(self.position.x, self.position.y, self.z_offset),
            rotation_z_rad=self.rotation_rad,
            mirror_z=(self.side == -1),
        )

    @property
    def rotation_deg(self) -> float:
        """Rotation in degrees (convenience for the ASCII interface)."""
        return self.rotation_rad * 180.0 / math.pi

    @staticmethod
    def at(x: float, y: float, rotation_deg: float = 0.0, side: int = 1) -> "Placement2D":
        """Convenience constructor taking degrees."""
        return Placement2D(Vec2(x, y), deg_to_rad(rotation_deg), side=side)


@dataclass(frozen=True)
class Transform3D:
    """Rigid 3-D transform restricted to what board placement needs.

    The transform applies, in order: optional mirror through the local z = 0
    plane (bottom-side mounting), rotation about the z axis, translation.
    This subset is closed under the composition the placer performs and keeps
    the math trivially invertible.
    """

    translation: Vec3
    rotation_z_rad: float = 0.0
    mirror_z: bool = False

    def apply(self, local: Vec3) -> Vec3:
        """Map a local 3-D point into world coordinates."""
        p = Vec3(local.x, local.y, -local.z) if self.mirror_z else local
        return p.rotated_z(self.rotation_z_rad) + self.translation

    def apply_direction(self, local_dir: Vec3) -> Vec3:
        """Rotate (and possibly mirror) a direction vector; no translation."""
        d = Vec3(local_dir.x, local_dir.y, -local_dir.z) if self.mirror_z else local_dir
        return d.rotated_z(self.rotation_z_rad)

    def inverse_apply(self, world: Vec3) -> Vec3:
        """Map a world point back into the local frame."""
        p = (world - self.translation).rotated_z(-self.rotation_z_rad)
        return Vec3(p.x, p.y, -p.z) if self.mirror_z else p

    @staticmethod
    def identity() -> "Transform3D":
        """The identity transform."""
        return Transform3D(Vec3.zero())
