"""Coupling analyzer: coupling factors and the inductance matrix.

Validates coupling data wherever it can enter the flow: the mutual
couplings of a circuit (which may have been mutated after construction),
externally supplied coupling maps (refdes-pair -> k, as produced by layout
extraction), and the ``K`` metadata of board-file minimum-distance rules.

The positive-definiteness check builds the branch inductance matrix with
the same convention as the MNA assembly (``M = k * sqrt(L_a * L_b)``) but
never solves anything — one symmetric eigenvalue decomposition of a small
matrix.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit import Circuit
from ..circuit.elements import Inductor
from ..placement import PlacementProblem
from .diagnostics import Diagnostic
from .limits import NEAR_UNITY_K, PSD_RELATIVE_TOLERANCE
from .registry import finding

__all__ = ["check_couplings", "check_coupling_map", "check_rule_couplings"]


def check_couplings(circuit: Circuit) -> list[Diagnostic]:
    """Run all CPL0xx rules over a circuit's mutual couplings."""
    out: list[Diagnostic] = []
    inductor_names = {e.name for e in circuit.elements if isinstance(e, Inductor)}

    seen_pairs: dict[tuple[str, str], str] = {}
    orphaned: set[str] = set()
    for coupling in circuit.couplings:
        obj = f"circuit/coupling:{coupling.name}"
        if not -1.0 <= coupling.k <= 1.0:
            out.append(
                finding(
                    "CPL001",
                    f"coupling {coupling.name!r} has k = {coupling.k:g} "
                    f"(|k| must be <= 1)",
                    obj=obj,
                    hint="re-extract the coupling or fix the sign/scale of k",
                )
            )
        elif abs(coupling.k) >= NEAR_UNITY_K:
            out.append(
                finding(
                    "CPL005",
                    f"coupling {coupling.name!r} has |k| = {abs(coupling.k):g} "
                    f">= {NEAR_UNITY_K:g} — implausibly tight for stray coupling",
                    obj=obj,
                    hint="verify the extraction; transformers should be modelled "
                    "explicitly",
                )
            )
        missing = [
            branch
            for branch in (coupling.inductor_a, coupling.inductor_b)
            if branch not in inductor_names
        ]
        if missing:
            orphaned.add(coupling.name)
            out.append(
                finding(
                    "CPL002",
                    f"coupling {coupling.name!r} references missing inductor(s) "
                    f"{', '.join(repr(m) for m in missing)}",
                    obj=obj,
                    hint="rename the coupling's branches to existing inductors",
                )
            )
        pair = (
            min(coupling.inductor_a, coupling.inductor_b),
            max(coupling.inductor_a, coupling.inductor_b),
        )
        if pair in seen_pairs:
            out.append(
                finding(
                    "CPL003",
                    f"couplings {seen_pairs[pair]!r} and {coupling.name!r} both "
                    f"define the pair {pair[0]!r}-{pair[1]!r}",
                    obj=obj,
                    hint="keep a single coupling entry per inductor pair",
                )
            )
        else:
            seen_pairs[pair] = coupling.name

    out.extend(_psd_check(circuit, orphaned))
    return out


def _psd_check(circuit: Circuit, skip_couplings: set[str]) -> list[Diagnostic]:
    inductors = [e for e in circuit.elements if isinstance(e, Inductor)]
    if not inductors or not circuit.couplings:
        return []
    index = {ind.name: i for i, ind in enumerate(inductors)}
    lmat = np.zeros((len(inductors), len(inductors)), dtype=float)
    for i, ind in enumerate(inductors):
        lmat[i, i] = ind.inductance
    for coupling in circuit.couplings:
        if coupling.name in skip_couplings:
            continue
        ia = index.get(coupling.inductor_a)
        ib = index.get(coupling.inductor_b)
        if ia is None or ib is None or ia == ib:
            continue
        mutual = coupling.k * math.sqrt(
            inductors[ia].inductance * inductors[ib].inductance
        )
        lmat[ia, ib] += mutual
        lmat[ib, ia] += mutual
    eigenvalues = np.linalg.eigvalsh(lmat)
    tolerance = PSD_RELATIVE_TOLERANCE * float(np.max(np.diag(lmat)))
    smallest = float(eigenvalues[0])
    if smallest < -tolerance:
        return [
            finding(
                "CPL004",
                f"branch inductance matrix is not positive definite "
                f"(smallest eigenvalue {smallest:.3e} H)",
                obj="circuit/inductance-matrix",
                hint="the combination of couplings stores negative energy; "
                "reduce the k values or remove contradictory couplings",
            )
        ]
    return []


def check_coupling_map(
    couplings: dict[tuple[str, str], float], source: str = "couplings"
) -> list[Diagnostic]:
    """CPL0xx rules over an external refdes-pair -> k map."""
    out: list[Diagnostic] = []
    for (ref_a, ref_b), k in sorted(couplings.items()):
        obj = f"{source}/pair:{ref_a}-{ref_b}"
        if ref_a == ref_b:
            out.append(
                finding(
                    "CPL002",
                    f"pair {ref_a!r}-{ref_b!r} couples a component to itself",
                    obj=obj,
                )
            )
        if not -1.0 <= k <= 1.0:
            out.append(
                finding(
                    "CPL001",
                    f"pair {ref_a!r}-{ref_b!r} has k = {k:g} (|k| must be <= 1)",
                    obj=obj,
                    hint="re-run the field extraction for this pair",
                )
            )
        elif abs(k) >= NEAR_UNITY_K:
            out.append(
                finding(
                    "CPL005",
                    f"pair {ref_a!r}-{ref_b!r} has |k| = {abs(k):g} >= "
                    f"{NEAR_UNITY_K:g} — implausibly tight for stray coupling",
                    obj=obj,
                )
            )
    return out


def check_rule_couplings(problem: PlacementProblem) -> list[Diagnostic]:
    """CPL001 over the ``K`` metadata of minimum-distance rules.

    Board files carry the tolerable coupling level of each PEMD rule; a
    value above 1 cannot be a coupling factor and would silently disable
    the rule's physical meaning.
    """
    out: list[Diagnostic] = []
    for rule in problem.rules.min_distance:
        if abs(rule.k_threshold) > 1.0:
            out.append(
                finding(
                    "CPL001",
                    f"rule {rule.ref_a}-{rule.ref_b} declares coupling "
                    f"threshold k = {rule.k_threshold:g} (|k| must be <= 1)",
                    obj=f"problem/rule:{rule.ref_a}-{rule.ref_b}",
                    hint="the K field is a coupling factor, not a percentage",
                )
            )
    return out
