"""Structured diagnostics — the output vocabulary of the design linter.

Every finding of the static analyzers is a :class:`Diagnostic`: a stable
rule code (``NET001``, ``PLC004``, ...), a :class:`Severity`, the path of
the offending object inside the design, a human message and an optional
fix hint.  A :class:`CheckReport` aggregates the findings of one run and
renders them as a human-readable listing or a JSON document (the CLI's
``--format text|json``).

Severities are integers ordered by badness so that ``max()`` over a report
is meaningful and maps directly onto the CLI exit code.
"""

from __future__ import annotations

import enum
import json
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = ["Severity", "Diagnostic", "CheckReport"]


class Severity(enum.IntEnum):
    """Badness of a finding; the integer doubles as the CLI exit code."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> Severity:
        """Parse a case-insensitive severity name.

        Raises:
            ValueError: for an unknown name.
        """
        try:
            return cls[text.upper()]
        except KeyError:
            names = ", ".join(s.name.lower() for s in cls)
            raise ValueError(f"unknown severity {text!r} (expected one of {names})") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static check.

    Attributes:
        code: stable rule identifier (see ``docs/CHECKS.md``).
        severity: how bad the finding is.
        message: human-readable description citing the offending values.
        obj: path of the offending object, ``"<domain>/<kind>:<name>"``
            (e.g. ``"circuit/node:sw"``, ``"problem/keepout:hs1"``).
        hint: optional suggestion for fixing the design.
    """

    code: str
    severity: Severity
    message: str
    obj: str = ""
    hint: str = ""

    def render(self) -> str:
        """One-line human rendering (``ERROR NET001 circuit/node:sw: ...``)."""
        location = f" {self.obj}" if self.obj else ""
        text = f"{self.severity.name:7s} {self.code}{location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, str]:
        """JSON-serialisable form."""
        out = {
            "code": self.code,
            "severity": self.severity.name.lower(),
            "message": self.message,
        }
        if self.obj:
            out["obj"] = self.obj
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class CheckReport:
    """All diagnostics of one linter run, with aggregate queries.

    Attributes:
        diagnostics: the findings, in analyzer order.
        subject: what was checked (a file name or design label).
        analyzers: names of the analyzers that actually ran.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    subject: str = ""
    analyzers: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def extend(self, found: list[Diagnostic], analyzer: str) -> None:
        """Append one analyzer's findings and record that it ran."""
        self.diagnostics.extend(found)
        if analyzer not in self.analyzers:
            self.analyzers.append(analyzer)

    # -- aggregate queries --------------------------------------------------

    @property
    def max_severity(self) -> Severity:
        """Worst severity present (INFO for a clean report)."""
        if not self.diagnostics:
            return Severity.INFO
        return max(d.severity for d in self.diagnostics)

    def is_clean(self) -> bool:
        """True when nothing at WARNING level or above was found."""
        return self.max_severity < Severity.WARNING

    def count(self, severity: Severity) -> int:
        """Number of findings at exactly the given severity."""
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def errors(self) -> list[Diagnostic]:
        """All ERROR-level findings."""
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        """All WARNING-level findings."""
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def codes(self) -> set[str]:
        """The distinct rule codes that fired."""
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        """All findings of one rule."""
        return [d for d in self.diagnostics if d.code == code]

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        """CLI exit status: the max severity, gated by ``fail_on``.

        Findings below ``fail_on`` do not fail the run (exit 0); at or
        above it, the exit code is the integer severity (1 or 2).
        """
        worst = self.max_severity
        if worst < fail_on:
            return 0
        return int(worst)

    # -- rendering ----------------------------------------------------------

    def text(self) -> str:
        """Human-readable multi-line report."""
        lines: list[str] = []
        header = f"check: {self.subject}" if self.subject else "check"
        lines.append(header)
        for diag in self.diagnostics:
            lines.append("  " + diag.render())
        lines.append(
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} info "
            f"[{', '.join(self.analyzers) or 'no analyzers'}]"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (stable schema, see docs/CHECKS.md)."""
        return {
            "schema": "repro-check-report/1",
            "subject": self.subject,
            "analyzers": list(self.analyzers),
            "max_severity": self.max_severity.name.lower(),
            "counts": {
                "error": self.count(Severity.ERROR),
                "warning": self.count(Severity.WARNING),
                "info": self.count(Severity.INFO),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)
