"""Numeric thresholds of the lint rules, in one place.

Collecting the magic numbers here keeps the analyzers readable and gives
the documentation (and the tests) a single source for the plausibility
ranges.  All values are SI.
"""

from __future__ import annotations

from ..coupling.database import COUPLING_CLAMP_TOLERANCE

__all__ = [
    "ELEMENT_VALUE_RANGES",
    "NEAR_UNITY_K",
    "COUPLING_CLAMP_TOLERANCE",
    "PSD_RELATIVE_TOLERANCE",
    "MIN_FREE_AREA_FRACTION",
    "FIELD_RELEVANT_MOMENT",
    "ESL_SUSPICIOUS_MAX",
    "DEGENERATE_MOMENT",
    "PATH_EXTENT_FACTOR",
]

#: Plausible value ranges for board-level power electronics elements,
#: keyed by unit.  Values outside trip NET005 (suspicious magnitude).
ELEMENT_VALUE_RANGES: dict[str, tuple[float, float]] = {
    "ohm": (1e-6, 1e9),
    "H": (1e-12, 1.0),
    "F": (1e-15, 0.1),
}

#: |k| at or above this (but still <= 1) trips CPL005 (near-unity coupling).
NEAR_UNITY_K = 0.98

#: COUPLING_CLAMP_TOLERANCE is defined in :mod:`repro.coupling.database`
#: (the layer that owns the clamp) and re-exported above so rule code
#: keeps one import site; check sits above coupling, so the import runs
#: downward (ARCH002-clean).

#: An inductance-matrix eigenvalue below ``-tol * max_diagonal`` makes the
#: matrix count as indefinite (CPL004).
PSD_RELATIVE_TOLERANCE = 1e-9

#: Minimum fraction of the board outline that must remain outside all
#: board-level keepouts (PLC002).
MIN_FREE_AREA_FRACTION = 0.02

#: Magnetic moment per ampere [m^2] above which a part counts as a strong
#: field source for PLC009 (missing PEMD rule).  Matches the CLI ``rules``
#: subcommand's field-relevance cut.
FIELD_RELEVANT_MOMENT = 1e-6

#: Minimum stray-field strength (moment per ampere times effective
#: permeability, [m^2]) for *both* parts of a pair before PLC009 demands a
#: PEMD rule.  Calibrated so that only choke-class magnetics qualify —
#: the parts whose unchecked proximity reproduces the paper's Fig. 1
#: failure.
PEMD_REQUIRED_STRENGTH = 1e-3

#: Equivalent series inductance above this [H] is implausible for a board
#: part model (CMP002).
ESL_SUSPICIOUS_MAX = 1e-2

#: A cored part whose loop moment per ampere falls below this [m^2] has a
#: degenerate field model (CMP003).
DEGENERATE_MOMENT = 1e-9

#: Current path extent beyond this multiple of the footprint's
#: circumscribed radius trips CMP005 (field/placement geometry mismatch).
PATH_EXTENT_FACTOR = 2.0
