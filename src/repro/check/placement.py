"""Placement analyzer: boards, keepouts, areas and placement rules.

Checks that the constraint system handed to the placer is satisfiable at
all — preplaced parts inside the board, keepouts that leave room to
place, area constraints that can hold their components, rules that
reference real objects — plus the EMC-coverage rule PLC009: pairs of
strong field sources must carry a PEMD entry, or the placer will pack
them tightly and the layout couples unchecked.

Free-area estimation uses a coarse interior grid of the board outline
(a few hundred points), not exact polygon booleans: the question is "is
there anywhere left to place", not "exactly how much".
"""

from __future__ import annotations

import itertools
import math

from ..components import Component
from ..geometry import Polygon2D
from ..placement import Board, Keepout3D, PlacementProblem
from .diagnostics import Diagnostic
from .limits import (
    FIELD_RELEVANT_MOMENT,
    MIN_FREE_AREA_FRACTION,
    PEMD_REQUIRED_STRENGTH,
)
from .registry import finding

__all__ = ["check_placement"]

#: Keepouts starting at (or below) board level block every part.
_BOARD_LEVEL_Z = 1e-4

#: Interior sample resolution per board axis for the free-area estimate.
_GRID_STEPS = 24


def check_placement(
    problem: PlacementProblem,
    pemd_strength_threshold: float = PEMD_REQUIRED_STRENGTH,
) -> list[Diagnostic]:
    """Run all PLC0xx rules over a placement problem.

    Args:
        problem: the design under check.
        pemd_strength_threshold: minimum stray-field strength (moment per
            ampere times effective permeability, [m^2]) above which a pair
            of parts must carry a PEMD rule (PLC009).
    """
    out: list[Diagnostic] = []
    out.extend(_preplaced_on_board(problem))
    for board in problem.boards:
        out.extend(_keepout_rules(problem, board))
    out.extend(_area_constraints(problem))
    out.extend(_orphaned_rules(problem))
    out.extend(_unsatisfiable_min_distances(problem))
    out.extend(_missing_pemd_rules(problem, pemd_strength_threshold))
    out.extend(_overfilled_boards(problem))
    return out


# -- PLC001: preplaced parts must sit on the board -------------------------


def _preplaced_on_board(problem: PlacementProblem) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for comp in problem.components.values():
        if not comp.fixed or not comp.is_placed:
            continue
        try:
            board = problem.board(comp.board)
        except KeyError:
            out.append(
                finding(
                    "PLC001",
                    f"preplaced {comp.refdes} is assigned to missing board "
                    f"{comp.board}",
                    obj=f"problem/component:{comp.refdes}",
                )
            )
            continue
        rect = comp.footprint_aabb()
        if not board.outline.contains_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax):
            out.append(
                finding(
                    "PLC001",
                    f"preplaced {comp.refdes} at "
                    f"({comp.center().x * 1e3:.1f}, {comp.center().y * 1e3:.1f}) mm "
                    f"extends beyond the board {comp.board} outline",
                    obj=f"problem/component:{comp.refdes}",
                    hint="move the part inside the outline or unfix it",
                )
            )
    return out


# -- PLC002/003/004: keepout sanity ----------------------------------------


def _blocks_board_level(keepout: Keepout3D) -> bool:
    return keepout.cuboid.zmin <= _BOARD_LEVEL_Z


def _free_area_fraction(board: Board) -> float:
    """Fraction of interior samples outside all board-level keepouts."""
    xmin, ymin, xmax, ymax = board.outline.bbox()
    spacing = max(xmax - xmin, ymax - ymin) / _GRID_STEPS
    samples = board.outline.grid_samples(spacing)
    if not samples:
        return 1.0
    blockers = [k for k in board.keepouts if _blocks_board_level(k)]
    if not blockers:
        return 1.0
    free = sum(
        1
        for p in samples
        if not any(k.cuboid.rect.contains_point(p) for k in blockers)
    )
    return free / len(samples)


def _keepout_rules(problem: PlacementProblem, board: Board) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for keepout in board.keepouts:
        rect = keepout.cuboid.rect
        if not board.outline.intersects_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax):
            out.append(
                finding(
                    "PLC003",
                    f"keepout {keepout.name!r} does not intersect the board "
                    f"{board.index} outline",
                    obj=f"problem/keepout:{keepout.name}",
                    hint="check the keepout coordinates (and their units)",
                )
            )
    for a, b in itertools.combinations(board.keepouts, 2):
        inner, outer = (a, b) if a.cuboid.volume() <= b.cuboid.volume() else (b, a)
        ri, ro = inner.cuboid.rect, outer.cuboid.rect
        contained = (
            ro.xmin <= ri.xmin
            and ro.ymin <= ri.ymin
            and ri.xmax <= ro.xmax
            and ri.ymax <= ro.ymax
            and outer.cuboid.zmin <= inner.cuboid.zmin
            and inner.cuboid.zmax <= outer.cuboid.zmax
        )
        if contained:
            out.append(
                finding(
                    "PLC004",
                    f"keepout {inner.name!r} lies entirely inside keepout "
                    f"{outer.name!r}",
                    obj=f"problem/keepout:{inner.name}",
                    hint="remove the redundant keepout",
                )
            )
    free = _free_area_fraction(board)
    if free < MIN_FREE_AREA_FRACTION and any(
        c.board == board.index for c in problem.components.values()
    ):
        out.append(
            finding(
                "PLC002",
                f"keepouts block {100.0 * (1.0 - free):.0f}% of board "
                f"{board.index} — nothing can be placed",
                obj=f"problem/board:{board.index}",
                hint="shrink the keepouts or enlarge the board",
            )
        )
    return out


# -- PLC005/006: area constraints ------------------------------------------


def _fits_in_polygon(
    component: Component, rotations: tuple[float, ...], polygon: Polygon2D
) -> bool:
    xmin, ymin, xmax, ymax = polygon.bbox()
    box_w, box_h = xmax - xmin, ymax - ymin
    half_w = component.footprint_w / 2.0
    half_h = component.footprint_h / 2.0
    for angle_deg in rotations or (0.0,):
        angle = math.radians(angle_deg)
        ex = 2.0 * (abs(math.cos(angle)) * half_w + abs(math.sin(angle)) * half_h)
        ey = 2.0 * (abs(math.sin(angle)) * half_w + abs(math.cos(angle)) * half_h)
        if ex <= box_w and ey <= box_h:
            return True
    return False


def _area_constraints(problem: PlacementProblem) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for comp in problem.components.values():
        try:
            board = problem.board(comp.board)
        except KeyError:
            continue  # PLC001 reports missing boards
        area_names = {a.name for a in board.areas}
        named = set(comp.allowed_areas)
        if comp.preferred_area is not None:
            named.add(comp.preferred_area)
        for name in sorted(named):
            if name not in area_names:
                out.append(
                    finding(
                        "PLC005",
                        f"{comp.refdes} references area {name!r}, which does "
                        f"not exist on board {comp.board}",
                        obj=f"problem/component:{comp.refdes}",
                        hint=f"defined areas: {sorted(area_names) or 'none'}",
                    )
                )
        rotations = comp.rotations()
        candidates = [a for a in board.areas if a.name in comp.allowed_areas]
        if (
            comp.allowed_areas
            and candidates
            and not any(
                _fits_in_polygon(comp.component, rotations, a.polygon)
                for a in candidates
            )
        ):
            out.append(
                finding(
                    "PLC006",
                    f"{comp.refdes} ({comp.component.footprint_w * 1e3:.1f}x"
                    f"{comp.component.footprint_h * 1e3:.1f} mm) does not fit "
                    f"any of its allowed areas at any permitted rotation",
                    obj=f"problem/component:{comp.refdes}",
                    hint="enlarge the area or relax the allowed_areas constraint",
                )
            )
    return out


# -- PLC007: rules must reference real objects -----------------------------


def _orphaned_rules(problem: PlacementProblem) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    refs = set(problem.components)
    nets = {n.name for n in problem.nets}

    for rule in problem.rules.min_distance:
        for ref in (rule.ref_a, rule.ref_b):
            if ref not in refs:
                out.append(
                    finding(
                        "PLC007",
                        f"min-distance rule {rule.ref_a}-{rule.ref_b} references "
                        f"unknown component {ref!r}",
                        obj=f"problem/rule:{rule.ref_a}-{rule.ref_b}",
                    )
                )
    for clearance_rule in problem.rules.clearance:
        if clearance_rule.is_global:
            continue
        for ref in (clearance_rule.ref_a, clearance_rule.ref_b):
            if ref and ref not in refs:
                out.append(
                    finding(
                        "PLC007",
                        f"clearance rule {clearance_rule.ref_a or '*'}-"
                        f"{clearance_rule.ref_b or '*'} references unknown "
                        f"component {ref!r}",
                        obj="problem/rule:clearance",
                    )
                )
    for group_rule in problem.rules.groups:
        for member in group_rule.members:
            if member not in refs:
                out.append(
                    finding(
                        "PLC007",
                        f"group rule {group_rule.group!r} references unknown "
                        f"member {member!r}",
                        obj=f"problem/rule:{group_rule.group}",
                    )
                )
    for net_rule in problem.rules.net_lengths:
        if net_rule.net not in nets:
            out.append(
                finding(
                    "PLC007",
                    f"net-length rule references unknown net {net_rule.net!r}",
                    obj=f"problem/rule:{net_rule.net}",
                )
            )
    return out


# -- PLC008: minimum distances must fit the board --------------------------


def _unsatisfiable_min_distances(problem: PlacementProblem) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    diagonals: dict[int, float] = {}
    for board in problem.boards:
        xmin, ymin, xmax, ymax = board.outline.bbox()
        diagonals[board.index] = math.hypot(xmax - xmin, ymax - ymin)
    worst = max(diagonals.values(), default=0.0)
    for rule in problem.rules.min_distance:
        comp_a = problem.components.get(rule.ref_a)
        comp_b = problem.components.get(rule.ref_b)
        if comp_a is None or comp_b is None:
            continue  # PLC007 reports these
        if comp_a.board == comp_b.board:
            limit = diagonals.get(comp_a.board, worst)
        else:
            continue  # parts on different boards: distance rule is inter-board
        if rule.pemd > limit:
            out.append(
                finding(
                    "PLC008",
                    f"rule {rule.ref_a}-{rule.ref_b} demands "
                    f"{rule.pemd * 1e3:.1f} mm, but the board {comp_a.board} "
                    f"diagonal is only {limit * 1e3:.1f} mm",
                    obj=f"problem/rule:{rule.ref_a}-{rule.ref_b}",
                    hint="partition the pair onto two boards or relax the rule",
                )
            )
    return out


# -- PLC009: strong pairs need a PEMD entry --------------------------------


def _field_strength(component: Component) -> float:
    try:
        moment = component.current_path.magnetic_moment().norm()
    except (NotImplementedError, ValueError):
        return 0.0
    if moment < FIELD_RELEVANT_MOMENT:
        return 0.0
    return moment * component.mu_eff


def _missing_pemd_rules(
    problem: PlacementProblem, strength_threshold: float
) -> list[Diagnostic]:
    strong = [
        (refdes, strength)
        for refdes, comp in sorted(problem.components.items())
        if (strength := _field_strength(comp.component)) >= strength_threshold
    ]
    covered = {rule.pair() for rule in problem.rules.min_distance}
    out: list[Diagnostic] = []
    for (ref_a, strength_a), (ref_b, strength_b) in itertools.combinations(strong, 2):
        pair = tuple(sorted((ref_a, ref_b)))
        if pair in covered:
            continue
        out.append(
            finding(
                "PLC009",
                f"strong field pair {pair[0]}-{pair[1]} (strengths "
                f"{strength_a:.2e}/{strength_b:.2e} m^2) has no minimum-"
                f"distance rule",
                obj=f"problem/pair:{pair[0]}-{pair[1]}",
                hint="derive a PEMD rule (repro-emi rules) or add one manually",
            )
        )
    return out


# -- PLC010: the parts must physically fit ---------------------------------


def _overfilled_boards(problem: PlacementProblem) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for board in problem.boards:
        parts = [
            c for c in problem.components.values() if c.board == board.index
        ]
        if not parts:
            continue
        demand = sum(p.component.footprint_area() for p in parts)
        supply = board.outline.area() * _free_area_fraction(board)
        if demand > supply:
            out.append(
                finding(
                    "PLC010",
                    f"components assigned to board {board.index} need "
                    f"{demand * 1e4:.1f} cm^2 but only {supply * 1e4:.1f} cm^2 "
                    f"is available",
                    obj=f"problem/board:{board.index}",
                    hint="enlarge the board, shrink keepouts or partition",
                )
            )
    return out
