"""The check engine: run every applicable analyzer, collect one report.

:func:`run_checks` is the single entry point used by the CLI, the flow's
pre-solve gate and the tests.  It dispatches on what it is given — a
placement problem, a circuit, an external coupling map, or any
combination — runs the matching analyzers under observability spans and
returns a :class:`CheckReport`.

No solver runs: the engine is safe to call on arbitrarily broken input
(that is its job).
"""

from __future__ import annotations

from ..circuit import Circuit
from ..obs import get_tracer
from ..placement import PlacementProblem
from .components import check_components
from .coupling import check_coupling_map, check_couplings, check_rule_couplings
from .diagnostics import CheckReport, Diagnostic, Severity
from .limits import PEMD_REQUIRED_STRENGTH
from .netlist import check_netlist, check_problem_nets
from .placement import check_placement

__all__ = ["run_checks", "DesignCheckError"]


class DesignCheckError(RuntimeError):
    """Raised by the flow's pre-solve gate on error-level diagnostics.

    Attributes:
        report: the full check report, for programmatic inspection.
    """

    def __init__(self, report: CheckReport) -> None:
        self.report = report
        errors = report.errors()
        summary = "; ".join(f"{d.code}: {d.message}" for d in errors[:5])
        if len(errors) > 5:
            summary += f"; ... {len(errors) - 5} more"
        super().__init__(
            f"design check failed with {len(errors)} error(s): {summary}"
        )


def run_checks(
    problem: PlacementProblem | None = None,
    circuit: Circuit | None = None,
    couplings: dict[tuple[str, str], float] | None = None,
    subject: str = "",
    pemd_strength_threshold: float = PEMD_REQUIRED_STRENGTH,
) -> CheckReport:
    """Statically validate a design; nothing is solved.

    Args:
        problem: placement problem (boards, components, rules, nets).
        circuit: circuit netlist (connectivity, values, couplings).
        couplings: external refdes-pair -> k map (e.g. layout extraction).
        subject: label for the report header.
        pemd_strength_threshold: PLC009 sensitivity (see check.placement).

    Returns:
        All diagnostics from the analyzers that matched the inputs.
    """
    tracer = get_tracer()
    report = CheckReport(subject=subject)
    with tracer.span("check.run"):
        if circuit is not None:
            with tracer.span("check.netlist"):
                report.extend(check_netlist(circuit), "netlist")
            with tracer.span("check.coupling"):
                report.extend(check_couplings(circuit), "coupling")
        if couplings is not None:
            with tracer.span("check.coupling"):
                report.extend(check_coupling_map(couplings), "coupling")
        if problem is not None:
            with tracer.span("check.netlist"):
                report.extend(check_problem_nets(problem), "netlist")
            with tracer.span("check.coupling"):
                report.extend(check_rule_couplings(problem), "coupling")
            with tracer.span("check.placement"):
                report.extend(
                    check_placement(problem, pemd_strength_threshold), "placement"
                )
            with tracer.span("check.components"):
                report.extend(check_components(problem), "component")
        _count(report.diagnostics)
    return report


def _count(diagnostics: list[Diagnostic]) -> None:
    tracer = get_tracer()
    tracer.count("check.diagnostics", len(diagnostics))
    for diag in diagnostics:
        if diag.severity >= Severity.ERROR:
            tracer.count("check.errors")
        elif diag.severity == Severity.WARNING:
            tracer.count("check.warnings")
