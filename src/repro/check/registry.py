"""The rule catalogue: every check the linter can perform, as data.

Each rule is registered once as a :class:`RuleSpec` carrying its stable
code, default severity, category and rationale.  Analyzers emit findings
through :func:`finding`, which looks the spec up so that severity and
code stay consistent between the analyzers, the documentation
(``docs/CHECKS.md`` is generated from this table) and the tests.

Codes are grouped by analyzer domain::

    NET0xx  netlist        (circuit connectivity and element values)
    CPL0xx  coupling       (coupling factors and the inductance matrix)
    PLC0xx  placement      (boards, keepouts, areas, placement rules)
    CMP0xx  component      (library part models: geometry and parasitics)

Codes are append-only: a released code never changes meaning, and retired
codes are not reused.
"""

from __future__ import annotations

from dataclasses import dataclass

from .diagnostics import Diagnostic, Severity

__all__ = ["RuleSpec", "rule_specs", "spec_for", "finding"]


@dataclass(frozen=True)
class RuleSpec:
    """Metadata of one lint rule.

    Attributes:
        code: stable identifier (``NET001`` ...).
        title: short kebab-case name used in docs and test references.
        severity: default severity of findings from this rule.
        category: analyzer domain ("netlist", "coupling", "placement",
            "component").
        rationale: why violating this rule breaks (or degrades) the flow.
    """

    code: str
    title: str
    severity: Severity
    category: str
    rationale: str


_ERROR = Severity.ERROR
_WARNING = Severity.WARNING

_SPECS: tuple[RuleSpec, ...] = (
    # -- netlist ----------------------------------------------------------
    RuleSpec(
        "NET001",
        "floating-node",
        _ERROR,
        "netlist",
        "A node without a conductive path to ground makes the MNA system "
        "singular at DC; the solve fails deep inside the solver instead of "
        "at the input.",
    ),
    RuleSpec(
        "NET002",
        "dangling-connection",
        _WARNING,
        "netlist",
        "A node touched by only one element terminal (or a net with a "
        "single pin) carries no current and usually indicates a typo in "
        "the netlist.",
    ),
    RuleSpec(
        "NET003",
        "shorted-source",
        _ERROR,
        "netlist",
        "A voltage source with both terminals on ground (or two sources "
        "across the same node pair) is contradictory and makes the system "
        "singular or ill-conditioned.",
    ),
    RuleSpec(
        "NET004",
        "no-ground-reference",
        _ERROR,
        "netlist",
        "Without any element touching the reference node the whole "
        "circuit floats and no node voltage is defined.",
    ),
    RuleSpec(
        "NET005",
        "suspicious-magnitude",
        _WARNING,
        "netlist",
        "Element values far outside the physical range for board-level "
        "power electronics usually mean a unit slip (F vs uF, H vs nH).",
    ),
    # -- coupling ---------------------------------------------------------
    RuleSpec(
        "CPL001",
        "coupling-out-of-range",
        _ERROR,
        "coupling",
        "|k| > 1 is non-physical: the mutual inductance would exceed "
        "sqrt(L1*L2) and the inductance matrix loses positive "
        "definiteness, corrupting every EMI spectrum downstream.",
    ),
    RuleSpec(
        "CPL002",
        "orphaned-coupling",
        _ERROR,
        "coupling",
        "A coupling that references an absent inductor branch crashes the "
        "MNA assembly with a bare KeyError long after the mistake.",
    ),
    RuleSpec(
        "CPL003",
        "duplicate-coupling",
        _ERROR,
        "coupling",
        "Two coupling entries for the same inductor pair sum their mutual "
        "terms silently — an asymmetric/duplicated definition is almost "
        "certainly an input mistake.",
    ),
    RuleSpec(
        "CPL004",
        "indefinite-inductance-matrix",
        _ERROR,
        "coupling",
        "A non-positive-definite inductance matrix stores negative "
        "magnetic energy; transient and AC solves produce growing, "
        "meaningless oscillations.",
    ),
    RuleSpec(
        "CPL005",
        "near-unity-coupling",
        _WARNING,
        "coupling",
        "Board-level stray coupling above |k| = 0.98 is implausible "
        "outside a transformer model and usually indicates bad coupling "
        "data.",
    ),
    # -- placement --------------------------------------------------------
    RuleSpec(
        "PLC001",
        "preplaced-outside-board",
        _ERROR,
        "placement",
        "A fixed (preplaced) part whose footprint leaves the board "
        "outline can never be legalised — the placer must not move it.",
    ),
    RuleSpec(
        "PLC002",
        "keepout-consumes-board",
        _ERROR,
        "placement",
        "Keepouts that block (almost) the whole placement area leave "
        "nowhere to put the components; the placer would fail after an "
        "exhaustive search.",
    ),
    RuleSpec(
        "PLC003",
        "keepout-outside-board",
        _WARNING,
        "placement",
        "A keepout that does not intersect its board outline is "
        "ineffective — typically a coordinate or unit mistake.",
    ),
    RuleSpec(
        "PLC004",
        "redundant-keepout",
        _WARNING,
        "placement",
        "A keepout fully contained in another (in all three dimensions) "
        "is contradictory or redundant input.",
    ),
    RuleSpec(
        "PLC005",
        "unknown-area",
        _ERROR,
        "placement",
        "A component constrained to a placement area that does not exist "
        "on its board can never be placed.",
    ),
    RuleSpec(
        "PLC006",
        "area-too-small",
        _ERROR,
        "placement",
        "An allowed/preferred area smaller than the component footprint "
        "at every permitted rotation is unreachable under the keepins.",
    ),
    RuleSpec(
        "PLC007",
        "orphaned-rule",
        _ERROR,
        "placement",
        "A rule referencing a refdes or net that is not part of the "
        "problem silently checks nothing.",
    ),
    RuleSpec(
        "PLC008",
        "unsatisfiable-min-distance",
        _ERROR,
        "placement",
        "A pairwise minimum distance larger than the board diagonal can "
        "never be met on that board.",
    ),
    RuleSpec(
        "PLC009",
        "missing-pemd-rule",
        _WARNING,
        "placement",
        "A pair of strongly field-generating parts without a minimum "
        "distance rule will be packed tightly by the placer and couple "
        "unchecked (the paper's Fig. 1 failure mode).",
    ),
    RuleSpec(
        "PLC010",
        "overfilled-board",
        _ERROR,
        "placement",
        "Component footprints exceeding the usable board area make the "
        "placement infeasible regardless of rules.",
    ),
    # -- component --------------------------------------------------------
    RuleSpec(
        "CMP001",
        "negative-esr",
        _ERROR,
        "component",
        "A negative equivalent series resistance is an active element; "
        "the MNA solve may diverge or oscillate.",
    ),
    RuleSpec(
        "CMP002",
        "suspicious-esl",
        _WARNING,
        "component",
        "A zero or multi-millihenry equivalent series inductance for a "
        "board part indicates a degenerate or mis-scaled field model.",
    ),
    RuleSpec(
        "CMP003",
        "degenerate-current-path",
        _WARNING,
        "component",
        "A cored part whose current path has (near-)zero loop moment "
        "generates no stray field in the model — the coupling prediction "
        "for it is meaningless.",
    ),
    RuleSpec(
        "CMP004",
        "axis-not-unit",
        _ERROR,
        "component",
        "The magnetic axis must be unit length; the cos(alpha) EMD law "
        "scales distances by the dot product of the axes.",
    ),
    RuleSpec(
        "CMP005",
        "path-outside-footprint",
        _WARNING,
        "component",
        "A current path extending far beyond the part footprint means "
        "field and placement geometry disagree — distance rules derived "
        "from it are wrong.",
    ),
)

_BY_CODE: dict[str, RuleSpec] = {s.code: s for s in _SPECS}


def rule_specs() -> tuple[RuleSpec, ...]:
    """All registered rules, ordered by code."""
    return _SPECS


def spec_for(code: str) -> RuleSpec:
    """Look up a rule by code.

    Raises:
        KeyError: for an unregistered code.
    """
    return _BY_CODE[code]


def finding(
    code: str,
    message: str,
    obj: str = "",
    hint: str = "",
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a diagnostic for a registered rule.

    The severity defaults to the rule's registered severity; analyzers may
    override it (e.g. escalate a warning for an extreme value).

    Raises:
        KeyError: when ``code`` is not a registered rule.
    """
    spec = _BY_CODE[code]
    return Diagnostic(
        code=code,
        severity=spec.severity if severity is None else severity,
        message=message,
        obj=obj,
        hint=hint,
    )
