"""Component-model analyzer: library parts must be physically coherent.

A component couples three models — footprint (placer), current path
(field engine) and parasitics (circuit) — and the flow silently trusts
that they agree.  These checks catch the model bugs that otherwise show
up as absurd PEMD rules or diverging solves: negative ESR, degenerate
loops, non-unit magnetic axes and current paths that wander far outside
the part's body.
"""

from __future__ import annotations

import math

from ..components import Component
from ..peec import AIR_CORE
from ..placement import PlacementProblem
from .diagnostics import Diagnostic
from .limits import DEGENERATE_MOMENT, ESL_SUSPICIOUS_MAX, PATH_EXTENT_FACTOR
from .registry import finding

__all__ = ["check_components", "check_component_model"]


def check_components(problem: PlacementProblem) -> list[Diagnostic]:
    """CMP0xx rules over every distinct part model in a problem.

    Parts are deduplicated by identity, so a library part instantiated for
    many refdes is checked once; the diagnostic names every refdes using
    it.
    """
    by_model: dict[int, tuple[Component, list[str]]] = {}
    for refdes, placed in sorted(problem.components.items()):
        entry = by_model.setdefault(id(placed.component), (placed.component, []))
        entry[1].append(refdes)
    out: list[Diagnostic] = []
    for component, refdes_list in by_model.values():
        label = ",".join(refdes_list)
        out.extend(check_component_model(component, label))
    return out


def check_component_model(component: Component, label: str = "") -> list[Diagnostic]:
    """CMP0xx rules for one component model.

    Args:
        component: the part under check.
        label: refdes (or list) used in the object path; defaults to the
            part number.
    """
    out: list[Diagnostic] = []
    name = label or component.part_number
    obj = f"component:{name}"

    esr = component.esr
    if esr < 0.0:
        out.append(
            finding(
                "CMP001",
                f"{component.part_number}: ESR is negative ({esr:g} ohm)",
                obj=obj,
                hint="a negative series resistance is an active element",
            )
        )

    try:
        path = component.current_path
    except (NotImplementedError, ValueError):
        # Parts without a field model contribute nothing to couplings;
        # the remaining checks do not apply.
        return out

    esl = component.esl
    if esl <= 0.0 or esl > ESL_SUSPICIOUS_MAX:
        out.append(
            finding(
                "CMP002",
                f"{component.part_number}: ESL {esl:.3e} H is outside the "
                f"plausible range (0, {ESL_SUSPICIOUS_MAX:g}] H",
                obj=obj,
                hint="check the current-path geometry and core permeability",
            )
        )

    moment = path.magnetic_moment().norm()
    if component.core is not AIR_CORE and moment < DEGENERATE_MOMENT:
        out.append(
            finding(
                "CMP003",
                f"{component.part_number}: cored part with a degenerate "
                f"current loop (moment {moment:.2e} m^2 per ampere)",
                obj=obj,
                hint="the field model generates no stray field — fix the loop",
            )
        )

    try:
        axis = component.magnetic_axis_local()
    except ZeroDivisionError:
        # Degenerate loops have no defined axis; CMP003 covers them.
        axis = None
    if axis is not None and abs(axis.norm() - 1.0) > 1e-6:
        out.append(
            finding(
                "CMP004",
                f"{component.part_number}: magnetic axis has length "
                f"{axis.norm():.6f} (must be a unit vector)",
                obj=obj,
                hint="normalise the axis returned by the field model",
            )
        )

    reach = max(
        (
            max(math.hypot(f.start.x, f.start.y), math.hypot(f.end.x, f.end.y))
            for f in path.filaments
        ),
        default=0.0,
    )
    allowed = PATH_EXTENT_FACTOR * (component.max_extent() / 2.0)
    if reach > allowed:
        out.append(
            finding(
                "CMP005",
                f"{component.part_number}: current path reaches "
                f"{reach * 1e3:.1f} mm from the origin, footprint radius is "
                f"{component.max_extent() / 2.0 * 1e3:.1f} mm",
                obj=obj,
                hint="field and placement geometry disagree; shrink the path "
                "or grow the footprint",
            )
        )
    return out
