"""Netlist analyzer: connectivity and element-value sanity of a circuit.

All checks are purely structural — no MNA system is assembled and nothing
is solved.  The connectivity walk mirrors the solver's notion of
conductivity (resistors, inductors, switches, diodes and voltage sources
conduct at DC; capacitors and current sources do not), so a node this
analyzer flags as floating is exactly one that would make the MNA matrix
singular.
"""

from __future__ import annotations

from collections import defaultdict

from ..circuit import Circuit
from ..circuit.elements import (
    GROUND_NAMES,
    Capacitor,
    IdealDiode,
    Inductor,
    Resistor,
    Switch,
    VoltageSource,
)
from ..placement import PlacementProblem
from .diagnostics import Diagnostic
from .limits import ELEMENT_VALUE_RANGES
from .registry import finding

__all__ = ["check_netlist", "check_problem_nets"]

_CONDUCTIVE = (Resistor, Inductor, Switch, IdealDiode, VoltageSource)


def _canon(node: str) -> str:
    return "0" if node in GROUND_NAMES else node


def check_netlist(circuit: Circuit) -> list[Diagnostic]:
    """Run all NET0xx rules over a circuit.

    Returns the findings in rule-code order (stable for golden tests).
    """
    out: list[Diagnostic] = []
    out.extend(_floating_nodes(circuit))
    out.extend(_dangling_nodes(circuit))
    out.extend(_shorted_sources(circuit))
    out.extend(_ground_reference(circuit))
    out.extend(_value_magnitudes(circuit))
    return out


# -- NET001: floating nodes ------------------------------------------------


def _floating_nodes(circuit: Circuit) -> list[Diagnostic]:
    adjacency: dict[str, set[str]] = defaultdict(set)
    nodes: list[str] = []
    seen: set[str] = set()
    for element in circuit.elements:
        for node in element.nodes():
            name = _canon(node)
            if name != "0" and name not in seen:
                seen.add(name)
                nodes.append(name)
        if isinstance(element, _CONDUCTIVE):
            a, b = _canon(element.n1), _canon(element.n2)
            adjacency[a].add(b)
            adjacency[b].add(a)

    reached = {"0"}
    stack = ["0"]
    while stack:
        node = stack.pop()
        for neighbour in adjacency.get(node, ()):
            if neighbour not in reached:
                reached.add(neighbour)
                stack.append(neighbour)

    return [
        finding(
            "NET001",
            f"node {node!r} has no conductive path to ground",
            obj=f"circuit/node:{node}",
            hint="add a DC return (resistor, inductor or source) or remove the node",
        )
        for node in nodes
        if node not in reached
    ]


# -- NET002: dangling connections ------------------------------------------


def _dangling_nodes(circuit: Circuit) -> list[Diagnostic]:
    degree: dict[str, int] = defaultdict(int)
    for element in circuit.elements:
        for node in element.nodes():
            degree[_canon(node)] += 1
    return [
        finding(
            "NET002",
            f"node {node!r} is touched by only one element terminal",
            obj=f"circuit/node:{node}",
            hint="connect the node to the rest of the circuit or drop the element",
        )
        for node, count in degree.items()
        if node != "0" and count == 1
    ]


# -- NET003: shorted / contradictory sources -------------------------------


def _shorted_sources(circuit: Circuit) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    pairs: dict[tuple[str, str], list[str]] = defaultdict(list)
    for element in circuit.elements:
        if not isinstance(element, VoltageSource):
            continue
        a, b = _canon(element.n1), _canon(element.n2)
        if a == b:
            out.append(
                finding(
                    "NET003",
                    f"voltage source {element.name!r} has both terminals on "
                    f"the reference node",
                    obj=f"circuit/source:{element.name}",
                    hint="a source across ground aliases ('0' vs 'GND') is shorted",
                )
            )
            continue
        pairs[(min(a, b), max(a, b))].append(element.name)
    for (a, b), names in pairs.items():
        if len(names) > 1:
            out.append(
                finding(
                    "NET003",
                    f"voltage sources {', '.join(sorted(names))} are in "
                    f"parallel across nodes {a!r}-{b!r}",
                    obj=f"circuit/source:{sorted(names)[0]}",
                    hint="merge the sources or separate them with an impedance",
                )
            )
    return out


# -- NET004: ground reference ----------------------------------------------


def _ground_reference(circuit: Circuit) -> list[Diagnostic]:
    if not circuit.elements:
        return []
    for element in circuit.elements:
        if any(node in GROUND_NAMES for node in element.nodes()):
            return []
    return [
        finding(
            "NET004",
            "no element touches the reference node ('0'/'GND')",
            obj="circuit",
            hint="every MNA circuit needs at least one grounded terminal",
        )
    ]


# -- NET005: unit-suspicious magnitudes ------------------------------------


def _value_magnitudes(circuit: Circuit) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for element in circuit.elements:
        if isinstance(element, Resistor):
            value, unit = element.resistance, "ohm"
        elif isinstance(element, Inductor):
            value, unit = element.inductance, "H"
        elif isinstance(element, Capacitor):
            value, unit = element.capacitance, "F"
        else:
            continue
        lo, hi = ELEMENT_VALUE_RANGES[unit]
        if not lo <= value <= hi:
            out.append(
                finding(
                    "NET005",
                    f"{element.name}: {value:g} {unit} is outside the "
                    f"plausible board-level range [{lo:g}, {hi:g}] {unit}",
                    obj=f"circuit/element:{element.name}",
                    hint="check the unit (F vs uF, H vs nH) of the value",
                )
            )
    return out


# -- board-file nets (the ASCII interface has no circuit elements) ---------


def check_problem_nets(problem: PlacementProblem) -> list[Diagnostic]:
    """NET0xx rules that apply to the board file's NET records.

    A net with fewer than two pins connects nothing — the board-file
    analogue of a floating/dangling circuit node.
    """
    out: list[Diagnostic] = []
    for net in problem.nets:
        if len(net.pins) < 2:
            pin = f"{net.pins[0][0]}.{net.pins[0][1]}" if net.pins else "(none)"
            out.append(
                finding(
                    "NET002",
                    f"net {net.name!r} has {len(net.pins)} pin(s) ({pin}) — "
                    f"it connects nothing",
                    obj=f"problem/net:{net.name}",
                    hint="add the missing pin(s) or delete the net",
                )
            )
    return out
