"""repro.check — static design validation (the design linter).

Validates a design *before* any solver runs: netlist connectivity,
coupling data, placement constraints and component models are checked
against a catalogue of stable, documented rules (``docs/CHECKS.md``).

Entry points:

* :func:`run_checks` — one call, all applicable analyzers, a
  :class:`CheckReport`;
* ``repro-emi check board.txt`` — the CLI front-end (text/JSON output,
  exit code = max severity);
* ``EmiDesignFlow(..., precheck=True)`` — the opt-in pre-solve gate that
  refuses to start a run on error-level diagnostics
  (:class:`DesignCheckError`).

Individual analyzers (:func:`check_netlist`, :func:`check_couplings`,
:func:`check_placement`, :func:`check_components`) are exposed for
targeted use and for extending the battery.
"""

from .components import check_component_model, check_components
from .coupling import check_coupling_map, check_couplings, check_rule_couplings
from .diagnostics import CheckReport, Diagnostic, Severity
from .engine import DesignCheckError, run_checks
from .netlist import check_netlist, check_problem_nets
from .placement import check_placement
from .registry import RuleSpec, finding, rule_specs, spec_for

__all__ = [
    "Severity",
    "Diagnostic",
    "CheckReport",
    "RuleSpec",
    "rule_specs",
    "spec_for",
    "finding",
    "run_checks",
    "DesignCheckError",
    "check_netlist",
    "check_problem_nets",
    "check_couplings",
    "check_coupling_map",
    "check_rule_couplings",
    "check_placement",
    "check_components",
    "check_component_model",
]
