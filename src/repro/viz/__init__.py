"""Visualisation: SVG board renderings and ASCII spectra/heat maps."""

from .ascii_plot import heatmap, series_table, spectrum_plot
from .field_svg import render_field_svg
from .csvout import couplings_to_csv, layout_to_csv, markers_to_csv, spectrum_to_csv
from .svg import render_board_svg

__all__ = [
    "render_board_svg",
    "render_field_svg",
    "spectrum_plot",
    "heatmap",
    "series_table",
    "spectrum_to_csv",
    "couplings_to_csv",
    "layout_to_csv",
    "markers_to_csv",
]
