"""Terminal plots: log-frequency spectra and field heat maps.

The benchmark harness prints its series directly; these helpers make the
printed output *readable* — a spectrum plot in the style of the paper's
Figs. 1/2/12-14 (dBµV over log frequency with the segmented CISPR limit
line) and a field-magnitude heat map in the style of Fig. 4.
"""

from __future__ import annotations

import numpy as np

from ..emi import LimitLine, Spectrum

__all__ = ["spectrum_plot", "heatmap", "series_table"]

_SHADES = " .:-=+*#%@"


def spectrum_plot(
    spectra: dict[str, Spectrum],
    width: int = 78,
    height: int = 20,
    limit: LimitLine | None = None,
    db_min: float = 0.0,
    db_max: float | None = None,
) -> str:
    """ASCII dBµV-vs-log-f plot of one or more spectra.

    Each spectrum gets a marker character (1, 2, 3, ... in legend order);
    the limit line, when supplied, is drawn with ``L``.
    """
    if not spectra:
        raise ValueError("need at least one spectrum")
    markers = "12345678"
    all_freqs = np.concatenate([s.freqs for s in spectra.values()])
    f_lo, f_hi = float(all_freqs.min()), float(all_freqs.max())
    if db_max is None:
        db_max = max(float(np.max(s.dbuv())) for s in spectra.values()) + 5.0

    grid = [[" "] * width for _ in range(height)]

    def col(freq: float) -> int:
        t = (np.log10(freq) - np.log10(f_lo)) / (np.log10(f_hi) - np.log10(f_lo) or 1.0)
        return int(np.clip(t * (width - 1), 0, width - 1))

    def row(level: float) -> int:
        t = (level - db_min) / (db_max - db_min or 1.0)
        return int(np.clip((1.0 - t) * (height - 1), 0, height - 1))

    if limit is not None:
        for seg in limit.segments:
            if seg.f_hi < f_lo or seg.f_lo > f_hi:
                continue
            r = row(seg.level_dbuv)
            for c in range(col(max(seg.f_lo, f_lo)), col(min(seg.f_hi, f_hi)) + 1):
                grid[r][c] = "L"

    for (name, spectrum), marker in zip(spectra.items(), markers, strict=False):
        levels = spectrum.dbuv()
        for f, level in zip(spectrum.freqs, levels, strict=True):
            grid[row(float(level))][col(float(f))] = marker

    lines = [f"{db_max:6.1f} |" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append("       |" + "".join(grid[r]))
    lines.append(f"{db_min:6.1f} +" + "-" * width)
    lines.append(
        f"        {f_lo / 1e6:.2f} MHz" + " " * (width - 24) + f"{f_hi / 1e6:.1f} MHz"
    )
    legend = "  ".join(
        f"[{marker}] {name}" for (name, _s), marker in zip(spectra.items(), markers, strict=False)
    )
    if limit is not None:
        legend += f"  [L] {limit.name}"
    lines.append("        " + legend)
    return "\n".join(lines)


def heatmap(values: np.ndarray, width: int | None = None, log: bool = True) -> str:
    """Render a 2-D magnitude array as ASCII shades (row 0 at the bottom)."""
    v = np.asarray(values, dtype=float)
    if v.ndim != 2:
        raise ValueError("heatmap expects a 2-D array")
    if log:
        v = np.log10(np.maximum(v, np.max(v) * 1e-6 if np.max(v) > 0 else 1e-30))
    lo, hi = float(np.min(v)), float(np.max(v))
    span = hi - lo or 1.0
    rows = []
    for row_vals in v[::-1]:
        idx = ((row_vals - lo) / span * (len(_SHADES) - 1)).astype(int)
        rows.append("".join(_SHADES[i] for i in idx))
    return "\n".join(rows)


def series_table(
    headers: list[str], rows: list[list[object]], float_fmt: str = "{:.3g}"
) -> str:
    """A plain aligned text table for benchmark output."""
    rendered: list[list[str]] = [headers]
    for r in rows:
        rendered.append(
            [float_fmt.format(v) if isinstance(v, float) else str(v) for v in r]
        )
    widths = [max(len(row[i]) for row in rendered) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths, strict=True)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
