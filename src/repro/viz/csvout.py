"""CSV export of the flow's artefacts.

Downstream users (spreadsheets, plotting notebooks, regression trackers)
consume the numbers rather than the ASCII plots; these writers emit the
same data the benchmarks print, in machine-readable form.
"""

from __future__ import annotations

import csv
import io

from ..emi import Spectrum
from ..placement import DesignRuleChecker, PlacementProblem

__all__ = ["spectrum_to_csv", "couplings_to_csv", "layout_to_csv", "markers_to_csv"]


def spectrum_to_csv(spectra: dict[str, Spectrum]) -> str:
    """Spectra as ``freq_hz, <name>_dbuv, ...`` rows.

    Raises:
        ValueError: when the spectra are on different frequency grids or
            the mapping is empty.
    """
    if not spectra:
        raise ValueError("need at least one spectrum")
    names = list(spectra)
    first = spectra[names[0]]
    import numpy as np

    for name in names[1:]:
        if len(spectra[name]) != len(first) or not np.allclose(
            spectra[name].freqs, first.freqs
        ):
            raise ValueError("spectra live on different frequency grids")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["freq_hz"] + [f"{n}_dbuv" for n in names])
    columns = [spectra[n].dbuv() for n in names]
    for i, freq in enumerate(first.freqs):
        writer.writerow([f"{freq:.6g}"] + [f"{col[i]:.3f}" for col in columns])
    return buffer.getvalue()


def couplings_to_csv(couplings: dict[tuple[str, str], float]) -> str:
    """A coupling map as ``ref_a, ref_b, k`` rows (sorted by |k| desc)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["ref_a", "ref_b", "k"])
    for (a, b), k in sorted(couplings.items(), key=lambda kv: -abs(kv[1])):
        writer.writerow([a, b, f"{k:.6e}"])
    return buffer.getvalue()


def layout_to_csv(problem: PlacementProblem) -> str:
    """The placement as ``refdes, part, board, x_mm, y_mm, rot_deg, group``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["refdes", "part", "board", "x_mm", "y_mm", "rot_deg", "group"])
    for ref, comp in problem.components.items():
        if comp.placement is None:
            writer.writerow(
                [ref, comp.component.part_number, comp.board, "", "", "", comp.group or ""]
            )
        else:
            p = comp.placement
            writer.writerow(
                [
                    ref,
                    comp.component.part_number,
                    comp.board,
                    f"{p.position.x * 1e3:.3f}",
                    f"{p.position.y * 1e3:.3f}",
                    f"{p.rotation_deg:.1f}",
                    comp.group or "",
                ]
            )
    return buffer.getvalue()


def markers_to_csv(problem: PlacementProblem) -> str:
    """Rule markers as ``ref_a, ref_b, emd_mm, distance_mm, satisfied``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["ref_a", "ref_b", "emd_mm", "distance_mm", "satisfied"])
    for marker in DesignRuleChecker(problem).rule_markers():
        a = problem.components[marker.ref_a]
        b = problem.components[marker.ref_b]
        distance = a.center().distance_to(b.center())
        writer.writerow(
            [
                marker.ref_a,
                marker.ref_b,
                f"{marker.radius * 2.0 * 1e3:.2f}",
                f"{distance * 1e3:.2f}",
                int(marker.satisfied),
            ]
        )
    return buffer.getvalue()
