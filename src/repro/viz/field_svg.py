"""Board rendering with a stray-field underlay.

The paper's Fig. 4 shows the magnetic field picture behind the coupling
numbers; this renderer paints |B| of all placed components' current paths
(1 A each) as a coloured cell layer under the usual board view — making
"which part sprays field over which neighbour" visible on the actual
layout.
"""

from __future__ import annotations

import numpy as np

from ..peec import field_magnitude_map
from ..placement import PlacementProblem
from .svg import render_board_svg

__all__ = ["render_field_svg"]


def _field_color(value: float) -> str:
    """Map a normalised 0..1 field strength onto a white->red ramp."""
    t = min(max(value, 0.0), 1.0)
    red = 255
    other = int(255 * (1.0 - 0.85 * t))
    return f"rgb({red},{other},{other})"


def render_field_svg(
    problem: PlacementProblem,
    board_index: int = 0,
    resolution: int = 40,
    z: float = 5e-3,
    scale: float = 8.0,
    title: str = "",
) -> str:
    """Render a board with a |B| heat layer beneath the components.

    Args:
        problem: a placed problem; unplaced parts are skipped.
        board_index: which board to draw.
        resolution: field-grid cells across the board's width.
        z: field evaluation height above the board [m].
        scale: pixels per millimetre (matches
            :func:`repro.viz.render_board_svg`).
        title: caption.

    Raises:
        ValueError: when no placed component provides a field source.
    """
    board = problem.board(board_index)
    xmin, ymin, xmax, ymax = board.outline.bbox()

    paths = [
        comp.component.placed_current_path(comp.placement)
        for comp in problem.placed()
        if comp.board == board_index
    ]
    if not paths:
        raise ValueError("no placed components to generate a field from")

    nx = max(resolution, 8)
    ny = max(int(resolution * (ymax - ymin) / (xmax - xmin)), 8)
    xs = np.linspace(xmin, xmax, nx)
    ys = np.linspace(ymin, ymax, ny)
    mags = field_magnitude_map(paths, xs, ys, z=z)

    # Log-normalise over 3 decades below the peak.
    peak = float(np.max(mags))
    floor = peak * 1e-3 if peak > 0 else 1.0
    levels = (np.log10(np.maximum(mags, floor)) - np.log10(floor)) / 3.0

    base = render_board_svg(
        problem, board_index=board_index, show_markers=False, scale=scale, title=title
    )

    # Geometry helpers matching the base renderer's mapping.
    margin_mm = 6.0
    height = ((ymax - ymin) * 1e3 + 2 * margin_mm) * scale

    def sx(x: float) -> float:
        return ((x - xmin) * 1e3 + margin_mm) * scale

    def sy(y: float) -> float:
        return height - ((y - ymin) * 1e3 + margin_mm) * scale

    cell_w = (xs[1] - xs[0]) * 1e3 * scale
    cell_h = (ys[1] - ys[0]) * 1e3 * scale
    cells: list[str] = []
    for iy in range(ny):
        for ix in range(nx):
            level = float(levels[iy, ix])
            if level <= 0.02:
                continue
            cells.append(
                f'<rect x="{sx(xs[ix]) - cell_w / 2:.1f}" '
                f'y="{sy(ys[iy]) - cell_h / 2:.1f}" '
                f'width="{cell_w:.1f}" height="{cell_h:.1f}" '
                f'fill="{_field_color(level)}" fill-opacity="0.55"/>'
            )

    # Splice the field layer right after the board outline polygon (the
    # outline is always present, so the anchor always resolves).
    outline_end = base.find('stroke-width="2"/>')
    insert_at = base.find("\n", outline_end)
    field_layer = "\n".join(cells)
    return base[:insert_at] + "\n" + field_layer + base[insert_at:]
