"""SVG rendering of boards — the reproduction's stand-in for the tool GUI.

The paper's Figs. 9 and 15-18 are screenshots of the placement tool: the
board, the components, the functional groups (shaded), and the pairwise
rule circles (red = violated, green = met).  This renderer emits the same
content as standalone SVG, so every placement benchmark can drop a visual
artefact next to its numbers.
"""

from __future__ import annotations

from ..placement import DesignRuleChecker, PlacementProblem

__all__ = ["render_board_svg"]

_GROUP_COLORS = [
    "#aed6f1",
    "#a9dfbf",
    "#f9e79f",
    "#d7bde2",
    "#f5b7b1",
    "#a3e4d7",
]


def _mm(value: float) -> float:
    return value * 1000.0


def render_board_svg(
    problem: PlacementProblem,
    board_index: int = 0,
    show_markers: bool = True,
    show_groups: bool = True,
    scale: float = 8.0,
    title: str = "",
) -> str:
    """Render one board to an SVG string.

    Args:
        problem: the placement problem (placed components are drawn).
        board_index: which board.
        show_markers: draw the red/green min-distance circles.
        show_groups: tint component bodies by functional group.
        scale: pixels per millimetre.
        title: optional caption.
    """
    board = problem.board(board_index)
    xmin, ymin, xmax, ymax = board.outline.bbox()
    margin_mm = 6.0
    width = (_mm(xmax - xmin) + 2 * margin_mm) * scale
    height = (_mm(ymax - ymin) + 2 * margin_mm) * scale

    def sx(x: float) -> float:
        return (_mm(x - xmin) + margin_mm) * scale

    def sy(y: float) -> float:
        # SVG y grows downwards; board y grows upwards.
        return height - (_mm(y - ymin) + margin_mm) * scale

    group_color: dict[str, str] = {}
    for i, group in enumerate(problem.groups):
        group_color[group.name] = _GROUP_COLORS[i % len(_GROUP_COLORS)]

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
    ]

    # Board outline.
    outline_pts = " ".join(
        f"{sx(v.x):.1f},{sy(v.y):.1f}" for v in board.outline.vertices
    )
    parts.append(
        f'<polygon points="{outline_pts}" fill="#f4f6f7" stroke="#2c3e50" '
        'stroke-width="2"/>'
    )

    # Areas and keepouts.
    for area in board.areas:
        pts = " ".join(f"{sx(v.x):.1f},{sy(v.y):.1f}" for v in area.polygon.vertices)
        parts.append(
            f'<polygon points="{pts}" fill="none" stroke="#7f8c8d" '
            'stroke-dasharray="6,4" stroke-width="1"/>'
        )
    for keepout in board.keepouts:
        r = keepout.cuboid.rect
        parts.append(
            f'<rect x="{sx(r.xmin):.1f}" y="{sy(r.ymax):.1f}" '
            f'width="{_mm(r.width) * scale:.1f}" height="{_mm(r.height) * scale:.1f}" '
            'fill="#e74c3c" fill-opacity="0.15" stroke="#e74c3c" '
            'stroke-dasharray="3,3"/>'
        )

    # Rule markers first (under the components).
    if show_markers:
        checker = DesignRuleChecker(problem)
        for marker in checker.rule_markers():
            parts.append(
                f'<circle cx="{sx(marker.center.x):.1f}" cy="{sy(marker.center.y):.1f}" '
                f'r="{_mm(marker.radius) * scale:.1f}" fill="none" '
                f'stroke="{marker.color}" stroke-width="2" stroke-opacity="0.75"/>'
            )

    # Components.
    for comp in problem.placed():
        if comp.board != board_index:
            continue
        color = "#d5dbdb"
        if show_groups and comp.group in group_color:
            color = group_color[comp.group]
        # Exact oriented body for visual fidelity.
        from ..geometry import OrientedRect

        oriented = OrientedRect.from_footprint(
            comp.component.footprint_w, comp.component.footprint_h, comp.placement
        )
        pts = " ".join(f"{sx(v.x):.1f},{sy(v.y):.1f}" for v in oriented.corners())
        parts.append(
            f'<polygon points="{pts}" fill="{color}" stroke="#34495e" '
            'stroke-width="1.5"/>'
        )
        cx, cy = sx(comp.center().x), sy(comp.center().y)
        parts.append(
            f'<text x="{cx:.1f}" y="{cy:.1f}" font-size="{2.6 * scale:.1f}" '
            'text-anchor="middle" dominant-baseline="middle" '
            f'font-family="monospace" fill="#17202a">{comp.refdes}</text>'
        )
        # Magnetic axis tick when the axis is in-plane.
        axis = comp.component.magnetic_axis_world(comp.placement)
        if abs(axis.z) < 0.7:
            length = 4e-3
            dx = axis.x * length
            dy = axis.y * length
            parts.append(
                f'<line x1="{sx(comp.center().x - dx / 2):.1f}" '
                f'y1="{sy(comp.center().y - dy / 2):.1f}" '
                f'x2="{sx(comp.center().x + dx / 2):.1f}" '
                f'y2="{sy(comp.center().y + dy / 2):.1f}" '
                'stroke="#8e44ad" stroke-width="1.5"/>'
            )

    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="{1.8 * scale:.0f}" font-size="{3.2 * scale:.0f}" '
            f'text-anchor="middle" font-family="sans-serif">{title}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
