"""The physlint engine: parse, build symbols, run every rule, one report.

:func:`lint_paths` is the entry point used by the ``repro-emi lint-src``
CLI, the CI gate and the tests: it walks the given files/directories,
parses every module once, builds the project-wide unit symbol table,
runs the rule visitors, applies inline suppressions and the baseline,
and returns a :class:`LintResult` wrapping the familiar
:class:`~repro.check.diagnostics.CheckReport` model.

Like every other stage of the flow, the analyzer runs under
observability spans (``lint.run`` > ``lint.parse`` / ``lint.symbols`` /
``lint.analyze``) and emits counters (``lint.files``,
``lint.findings``, ``lint.suppressed``, ``lint.baselined``) — see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from pathlib import Path

from ..check.diagnostics import CheckReport, Severity
from ..obs import get_tracer
from .base import LintFinding
from .baseline import Baseline
from .hotness import HotnessModel
from .registry import lint_spec_for
from .rules_arch import analyze_architecture
from .rules_concurrency import analyze_concurrency
from .rules_numeric import NumericRuleVisitor
from .rules_performance import KERNEL_MARKERS, PerformanceRuleVisitor
from .rules_units import UnitRuleVisitor
from .suppress import scan_suppressions
from .symbols import build_symbol_table

__all__ = ["LintResult", "lint_paths", "lint_sources", "default_target"]

#: Modules whose path contains one of these parts get the PEEC-kernel
#: accumulation rule (NUM004).
_PEEC_MARKERS = ("peec",)


@dataclass
class LintResult:
    """Outcome of one analyzer run.

    Attributes:
        report: surfaced findings as a check report (text/JSON rendering,
            exit-code logic).
        findings: the surfaced findings with structured locations — the
            input for ``--write-baseline``.
        files: number of modules analyzed.
        suppressed: findings waived by inline ``# physlint: disable``.
        baselined: findings waived by the baseline file.
    """

    report: CheckReport
    findings: list[LintFinding]
    files: int
    suppressed: int
    baselined: int


def default_target() -> Path:
    """The tree ``lint-src`` analyzes when no paths are given: this package."""
    return Path(__file__).resolve().parent.parent


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: for a path that does not exist.
    """
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            out.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def _relative_label(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _matches_select(code: str, select: list[str] | None) -> bool:
    """Whether a rule code survives a ``--select`` prefix filter.

    ``select=None`` (the default) selects everything; ``["CON"]``
    selects the whole concurrency family; ``["NUM002", "UNT"]`` mixes
    exact codes and families.  LNT001 (a module that does not parse)
    always survives — a selection cannot make an unanalyzable module
    look clean.
    """
    if select is None:
        return True
    if code == "LNT001":
        return True
    return any(code.startswith(prefix) for prefix in select)


def _promote_hot(
    findings: list[LintFinding], hotness: HotnessModel | None
) -> list[LintFinding]:
    """Profile-guided severity: PRF findings on a hot path become errors.

    Only performance findings participate — they default to ``info``
    precisely so the profile decides which ones gate CI.  A missing
    model (or a location no recorded span covers) leaves the finding
    untouched.
    """
    if hotness is None:
        return findings
    promoted: list[LintFinding] = []
    for finding in findings:
        if (
            finding.code.startswith("PRF")
            and finding.severity < Severity.ERROR
            and hotness.is_hot(finding.file, finding.symbol)
        ):
            finding = replace(
                finding,
                severity=Severity.ERROR,
                message=finding.message + " [hot path]",
            )
        promoted.append(finding)
    return promoted


def lint_sources(
    sources: dict[str, str],
    select: list[str] | None = None,
    hotness: HotnessModel | None = None,
) -> tuple[list[LintFinding], int]:
    """Analyze in-memory modules (label -> source text).

    The label doubles as the finding's ``file`` and decides PEEC-kernel
    treatment (NUM004 by containing a ``peec`` path part, PRF001 by a
    part in :data:`~repro.lint.rules_performance.KERNEL_MARKERS`).
    ``select`` restricts the surfaced findings to the given code
    prefixes (see :func:`_matches_select`); inline-suppression counts
    then cover only the selected rules.  ``hotness`` promotes PRF
    findings on recorded hot paths to error (:func:`_promote_hot`).

    Returns:
        (findings after inline suppressions, number suppressed inline).
    """
    tracer = get_tracer()
    modules: dict[str, ast.Module] = {}
    findings: list[LintFinding] = []

    with tracer.span("lint.parse"):
        for label, text in sources.items():
            try:
                modules[label] = ast.parse(text)
            except (SyntaxError, ValueError) as exc:
                findings.append(
                    LintFinding(
                        code="LNT001",
                        severity=lint_spec_for("LNT001").severity,
                        message=f"module does not parse: {exc}",
                        file=label,
                        line=getattr(exc, "lineno", None) or 1,
                    )
                )

    with tracer.span("lint.symbols"):
        table = build_symbol_table(modules)

    arch_by_label: dict[str, list[LintFinding]] = {}
    with tracer.span("lint.architecture"):
        for finding in analyze_architecture(modules):
            arch_by_label.setdefault(finding.file, []).append(finding)

    suppressed_total = 0
    with tracer.span("lint.analyze"):
        for label, tree in modules.items():
            parts = Path(label).parts
            is_peec = any(marker in parts for marker in _PEEC_MARKERS)
            is_kernel = any(marker in parts for marker in KERNEL_MARKERS)
            numeric = NumericRuleVisitor(label, is_peec_kernel=is_peec)
            numeric.run(tree)
            units = UnitRuleVisitor(label, table)
            units.run(tree)
            concurrency = analyze_concurrency(label, tree)
            performance = PerformanceRuleVisitor(label, is_kernel=is_kernel)
            performance.run(tree)
            raw = (
                numeric.findings
                + units.findings
                + concurrency
                + _promote_hot(performance.findings, hotness)
                + arch_by_label.get(label, [])
            )
            module_findings = [
                finding for finding in raw if _matches_select(finding.code, select)
            ]
            suppressions = scan_suppressions(sources[label])
            kept = [
                finding
                for finding in module_findings
                if not suppressions.is_suppressed(finding.code, finding.line)
            ]
            suppressed_total += len(module_findings) - len(kept)
            findings.extend(kept)

    findings.sort(key=lambda f: (f.file, f.line, f.code))
    return findings, suppressed_total


def lint_paths(
    paths: list[Path] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
    subject: str = "",
    select: list[str] | None = None,
    hotness: HotnessModel | None = None,
) -> LintResult:
    """Analyze a source tree and return the filtered report.

    Args:
        paths: files and/or directories; default is the installed
            ``repro`` package itself.
        baseline: waived findings; ``None`` means nothing is waived.
        root: base for the relative file labels in diagnostics and the
            baseline (default: the common target's parent, so labels read
            ``repro/circuit/mna.py``).
        subject: label for the report header (defaults to the target).
        select: restrict surfaced findings to these code prefixes
            (``["CON"]`` runs conlint alone); ``None`` runs every rule.
        hotness: profile-guided severity model; PRF findings on its hot
            paths are promoted to error.

    Raises:
        FileNotFoundError: when a given path does not exist.
    """
    tracer = get_tracer()
    with tracer.span("lint.run"):
        targets = list(paths) if paths else [default_target()]
        files = iter_python_files(targets)
        if root is None:
            root = default_target().parent if not paths else _common_root(targets)
        sources = {
            _relative_label(path, root): path.read_text(encoding="utf-8")
            for path in files
        }
        findings, suppressed = lint_sources(sources, select=select, hotness=hotness)
        if baseline is not None:
            findings, baselined = baseline.filter(findings)
        else:
            baselined = 0

        tracer.count("lint.files", len(files))
        tracer.count("lint.findings", len(findings))
        tracer.count("lint.suppressed", suppressed)
        tracer.count("lint.baselined", baselined)

    report = CheckReport(
        subject=subject or f"{', '.join(str(t) for t in targets)} ({len(files)} files)"
    )
    report.extend([finding.to_diagnostic() for finding in findings], "physlint")
    for family in ("units", "numeric", "api", "concurrency", "performance", "architecture"):
        if family not in report.analyzers:
            report.analyzers.append(family)
    return LintResult(
        report=report,
        findings=findings,
        files=len(files),
        suppressed=suppressed,
        baselined=baselined,
    )


def _common_root(targets: list[Path]) -> Path:
    resolved = [t.resolve() for t in targets]
    first = resolved[0] if resolved[0].is_dir() else resolved[0].parent
    common = first
    for target in resolved[1:]:
        base = target if target.is_dir() else target.parent
        while common not in (base, *base.parents):
            common = common.parent
    # Labels should include the target directory's own name
    # ("repro/peec/mesh.py", not "peec/mesh.py").
    return common.parent
