"""Concurrency rules — the CON family ("conlint").

Operates on the per-class thread model built by
:mod:`repro.lint.threads` rather than on raw AST nodes: every rule is a
query over a :class:`~repro.lint.threads.ClassModel`.

Rules::

    CON001  attribute written both under and outside its inferred lock
    CON002  inconsistent lock acquisition order (lock-order graph cycle,
            including nested re-acquisition of a non-reentrant Lock)
    CON003  lock / open file handle / whole ``self`` captured into
            process-pool or thread machinery
    CON004  daemon thread started without a join path
    CON005  externally-supplied callback invoked while holding a lock

Like the NUM family, every rule errs on the quiet side:

* **Guarded-by inference (CON001)** considers *writes* only.  An
  attribute's guard set is the intersection of the locks held across all
  of its non-constructor write sites that hold any lock at all; if that
  inference succeeds and another non-constructor write holds none of the
  guards, the unguarded site is flagged.  Reads outside the lock are
  deliberately not flagged — lock-free reads of monotonic counters and
  published-once references are a common, documented pattern in this
  codebase, and flagging them would bury the writes that actually
  corrupt state.
* **Lock ordering (CON002)** sees lexical ``with self.<lock>:`` nesting
  only; ``.acquire()``/``.release()`` call pairs are invisible to the
  model (and to reviewers — prefer ``with``).
* **Classes without any lock attribute are exempt from CON001/CON005**:
  with no lock there is no inferred discipline to violate, and
  single-thread-confined helper classes would otherwise flood the
  report.
"""

from __future__ import annotations

import ast
from collections import defaultdict

from .base import LintFinding
from .registry import lint_spec_for
from .threads import CONSTRUCTOR_METHODS, ClassModel, build_class_models

__all__ = ["analyze_concurrency"]


def _finding(
    code: str, file: str, line: int, symbol: str, message: str, hint: str = ""
) -> LintFinding:
    return LintFinding(
        code=code,
        severity=lint_spec_for(code).severity,
        message=message,
        file=file,
        line=line,
        symbol=symbol,
        hint=hint,
    )


# -- CON001: writes outside the inferred guard ---------------------------------


def _con001(model: ClassModel, file: str) -> list[LintFinding]:
    if not model.locks:
        return []
    findings: list[LintFinding] = []
    by_attr: dict[str, list] = defaultdict(list)
    for access in model.accesses:
        if access.write and access.attr not in model.locks:
            by_attr[access.attr].append(access)
    for attr, writes in sorted(by_attr.items()):
        runtime_writes = [w for w in writes if w.method not in CONSTRUCTOR_METHODS]
        locked = [w for w in runtime_writes if w.locks]
        if not locked:
            continue  # no lock discipline inferred for this attribute
        guards: set[str] = set(locked[0].locks)
        for write in locked[1:]:
            guards &= write.locks
        if not guards:
            continue  # locked writes disagree; ordering rules cover that
        guard_text = ", ".join(f"self.{g}" for g in sorted(guards))
        seen_lines: set[int] = set()
        for write in runtime_writes:
            if write.locks & guards or write.line in seen_lines:
                continue
            seen_lines.add(write.line)
            findings.append(
                _finding(
                    "CON001",
                    file,
                    write.line,
                    f"{model.name}.{write.method}",
                    f"attribute 'self.{attr}' is written under {guard_text} "
                    f"elsewhere but without it here — racy against "
                    "concurrent locked writers",
                    hint=f"wrap the write in 'with {guard_text}:' or document "
                    "single-thread confinement and drop the locked writes",
                )
            )
    return findings


# -- CON002: lock-order graph cycles -------------------------------------------


def _con002(models: list[ClassModel], file: str) -> list[LintFinding]:
    # Edges are keyed on class-qualified lock names so two classes using
    # the same attribute name ('_lock') stay distinct.
    edges: dict[tuple[str, str], list] = defaultdict(list)
    kinds: dict[str, str] = {}
    for model in models:
        for lock in model.locks.values():
            kinds[f"{model.name}.{lock.name}"] = lock.kind
        for edge in model.lock_order_edges:
            outer = f"{model.name}.{edge.outer}"
            inner = f"{model.name}.{edge.inner}"
            edges[(outer, inner)].append((edge, model.name))

    adjacency: dict[str, set[str]] = defaultdict(set)
    for outer, inner in edges:
        if outer != inner:
            adjacency[outer].add(inner)

    def reachable(start: str, goal: str) -> bool:
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    findings: list[LintFinding] = []
    for (outer, inner), sites in sorted(edges.items()):
        edge, class_name = sites[0]
        symbol = f"{class_name}.{edge.method}"
        if outer == inner:
            if kinds.get(outer) == "Lock":
                findings.append(
                    _finding(
                        "CON002",
                        file,
                        edge.line,
                        symbol,
                        f"non-reentrant lock 'self.{edge.inner}' re-acquired "
                        "while already held — self-deadlock",
                        hint="use threading.RLock, or restructure so the "
                        "locked region is entered once",
                    )
                )
            continue
        if reachable(inner, outer):
            findings.append(
                _finding(
                    "CON002",
                    file,
                    edge.line,
                    symbol,
                    f"lock '{inner}' acquired while holding '{outer}', but "
                    "the opposite acquisition order also exists — two "
                    "threads taking the orders concurrently deadlock",
                    hint="pick one global acquisition order and stick to it "
                    "(docs/CONLINT.md)",
                )
            )
    return findings


# -- CON003: locks / handles shipped into pools --------------------------------


def _con003(model: ClassModel, file: str) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for capture in model.pool_captures:
        if capture.what == "self" and not (model.locks or model.handle_attrs):
            continue
        if capture.what == "self":
            what = "'self' (carrying lock/handle attributes)"
        elif capture.what in model.locks:
            what = f"lock 'self.{capture.what}'"
        else:
            what = f"open file handle 'self.{capture.what}'"
        findings.append(
            _finding(
                "CON003",
                file,
                capture.line,
                f"{model.name}.{capture.method}",
                f"{what} captured into worker machinery via {capture.via} — "
                "locks and handles do not survive pickling/fork coherently",
                hint="ship plain data; rebuild locks/handles inside the worker",
            )
        )
    return findings


# -- CON004: daemon threads without a join path --------------------------------


def _con004(model: ClassModel, file: str) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for thread in model.threads:
        if not thread.daemon:
            continue
        if thread.attr == "":
            message = (
                "daemon thread started inline and never bound — nothing "
                "can join or stop it, so it dies mid-work at interpreter exit"
            )
        elif thread.attr in model.started_attrs and thread.attr not in model.joined_attrs:
            message = (
                f"daemon thread 'self.{thread.attr}' is started but no "
                "method ever joins it — shutdown is a coin flip on what "
                "the thread was touching when the process exits"
            )
        else:
            continue
        findings.append(
            _finding(
                "CON004",
                file,
                thread.line,
                f"{model.name}.{thread.method}",
                message,
                hint="add a stop() that sets an Event and joins the thread",
            )
        )
    return findings


# -- CON005: callbacks under a held lock ---------------------------------------


def _con005(model: ClassModel, file: str) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for call in model.callback_calls:
        findings.append(
            _finding(
                "CON005",
                file,
                call.line,
                f"{model.name}.{call.method}",
                f"{call.target} invoked while holding 'self.{call.lock}' — "
                "a callback that blocks or re-enters this object deadlocks "
                "every other thread on the lock",
                hint="snapshot the callbacks under the lock, invoke them "
                "after releasing it (or document the no-reentry contract)",
            )
        )
    return findings


def analyze_concurrency(file: str, tree: ast.Module) -> list[LintFinding]:
    """Run every CON rule over one module; findings in source order."""
    models = build_class_models(tree)
    findings: list[LintFinding] = []
    for model in models:
        findings.extend(_con001(model, file))
        findings.extend(_con003(model, file))
        findings.extend(_con004(model, file))
        findings.extend(_con005(model, file))
    findings.extend(_con002(models, file))
    findings.sort(key=lambda f: (f.line, f.code))
    return findings
