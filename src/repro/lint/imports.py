"""The project import graph — the data layer of the ARCH rules.

Built once per analyzer run from the already-parsed module ASTs, keyed by
the same relative file labels the rest of physlint uses
(``repro/coupling/sweep.py``).  Each import statement is resolved to the
dotted project module it targets (absolute and relative forms alike) and
recorded as an :class:`ImportEdge` carrying its source line and whether
it executes at import time (module level) or lazily (inside a function).

Two modelling decisions keep the graph honest:

* **``TYPE_CHECKING`` blocks are skipped.**  ``if TYPE_CHECKING:``
  imports never execute, so they can neither create an import cycle nor
  couple layers at runtime — counting them would flag the exact idiom
  used to *break* cycles.
* **Cross-package imports also depend on the target's package
  ``__init__``.**  Importing ``repro.check.limits`` executes
  ``repro/check/__init__.py`` first, so the edge to the package
  initializer is real and participates in cycles.  Intra-package sibling
  imports do *not* get that edge — a package initializer importing its
  own submodules would otherwise make every package look cyclic.

:func:`build_import_graph` returns an :class:`ImportGraph` whose
:meth:`ImportGraph.cycles` enumerates the strongly-connected components
of the import-time subgraph (the cycles ARCH001 reports).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

__all__ = ["ImportEdge", "ModuleNode", "ImportGraph", "build_import_graph", "module_name_for"]


def module_name_for(label: str) -> str:
    """Dotted module name of a file label (``repro/peec/mesh.py`` ->
    ``repro.peec.mesh``; package initializers drop the ``__init__``)."""
    parts = list(PurePosixPath(label).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class ImportEdge:
    """One resolved project-internal import.

    Attributes:
        target: dotted module name imported (``repro.check.limits``).
        line: 1-based source line of the import statement.
        import_time: True for module-level imports (they execute when the
            importer is first loaded); False for imports inside a
            function or method body (lazy).
    """

    target: str
    line: int
    import_time: bool


@dataclass
class ModuleNode:
    """One analyzed module and its outgoing project-internal imports."""

    label: str
    name: str
    package: str
    edges: list[ImportEdge] = field(default_factory=list)


class _ImportCollector(ast.NodeVisitor):
    """Walks one module, resolving project imports; skips TYPE_CHECKING."""

    def __init__(self, module_parts: tuple[str, ...], root: str, is_package: bool) -> None:
        self.module_parts = module_parts
        self.root = root
        self.is_package = is_package
        self.depth = 0  # function nesting; >0 means lazy import
        self.edges: list[ImportEdge] = []

    # -- scope / pruning -----------------------------------------------------

    def _visit_body(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.depth += 1
        try:
            self.generic_visit(node)
        finally:
            self.depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_body(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_body(node)

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking(node.test):
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    # -- the import statements ----------------------------------------------

    def _record(self, target: str, line: int) -> None:
        if target == ".".join(self.module_parts):
            return  # a module does not import itself
        self.edges.append(
            ImportEdge(target=target, line=line, import_time=self.depth == 0)
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == self.root or alias.name.startswith(self.root + "."):
                self._record(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0:
            base = node.module or ""
            if not (base == self.root or base.startswith(self.root + ".")):
                return
        else:
            # Relative: level 1 is the containing package (for a plain
            # module, its parent; for a package __init__, itself).
            package = list(
                self.module_parts if self.is_package else self.module_parts[:-1]
            )
            up = node.level - 1
            if up > len(package):
                return  # beyond the project root; not resolvable
            package = package[: len(package) - up] if up else package
            if not package:
                return
            base = ".".join(package + ((node.module or "").split(".") if node.module else []))
        # ``from pkg import name`` may pull a submodule: record the more
        # precise target per alias, falling back to the package itself.
        for alias in node.names:
            if alias.name == "*":
                self._record(base, node.lineno)
            else:
                self._record(f"{base}.{alias.name}", node.lineno)


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class ImportGraph:
    """Modules and resolved project-internal import edges.

    Attributes:
        nodes: file label -> :class:`ModuleNode`.
        by_name: dotted module name -> file label.
    """

    def __init__(self, nodes: dict[str, ModuleNode]) -> None:
        self.nodes = nodes
        self.by_name: dict[str, str] = {node.name: label for label, node in nodes.items()}

    def resolve(self, target: str) -> str | None:
        """Label of the analyzed module a dotted target lands in.

        ``repro.check.limits`` resolves to ``repro/check/limits.py``;
        ``from pkg import name`` targets fall back through their parents
        (``repro.check.limits.CONST`` -> ``repro.check.limits`` ->
        ``repro.check``).  Unresolvable targets (stdlib, third-party,
        modules outside the analyzed set) return None.
        """
        parts = target.split(".")
        while parts:
            label = self.by_name.get(".".join(parts))
            if label is not None:
                return label
            parts.pop()
        return None

    def import_time_adjacency(self) -> dict[str, set[str]]:
        """Label -> labels imported at module load, package inits included.

        A cross-package edge adds the target package's ``__init__`` as
        well (Python executes it first); sibling imports within one
        package do not (see module docstring).
        """
        adjacency: dict[str, set[str]] = {label: set() for label in self.nodes}
        for label, node in self.nodes.items():
            for edge in node.edges:
                if not edge.import_time:
                    continue
                resolved = self.resolve(edge.target)
                if resolved is None or resolved == label:
                    continue
                adjacency[label].add(resolved)
                resolved_node = self.nodes[resolved]
                if resolved_node.package != node.package:
                    package_init = self._package_init_label(resolved)
                    if package_init is not None and package_init != label:
                        adjacency[label].add(package_init)
        return adjacency

    def _package_init_label(self, label: str) -> str | None:
        node = self.nodes[label]
        if not node.package:
            return None
        root = node.name.split(".")[0]
        return self.by_name.get(f"{root}.{node.package}")

    def cycles(self) -> list[list[str]]:
        """Import-time cycles: non-trivial SCCs, members sorted, smallest first.

        Iterative Tarjan over :meth:`import_time_adjacency`; a component
        counts as a cycle when it has more than one member or a self-loop
        (the latter cannot occur — self-edges are dropped on build).
        """
        adjacency = self.import_time_adjacency()
        index_counter = 0
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []

        for start in sorted(adjacency):
            if start in index:
                continue
            work: list[tuple[str, list[str], int]] = [
                (start, sorted(adjacency[start]), 0)
            ]
            index[start] = low[start] = index_counter
            index_counter += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, successors, cursor = work.pop()
                advanced = False
                while cursor < len(successors):
                    nxt = successors[cursor]
                    cursor += 1
                    if nxt not in index:
                        work.append((node, successors, cursor))
                        index[nxt] = low[nxt] = index_counter
                        index_counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, sorted(adjacency[nxt]), 0))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sorted(components)


def build_import_graph(modules: dict[str, ast.Module]) -> ImportGraph:
    """Resolve every project-internal import of the analyzed modules.

    Args:
        modules: file label -> parsed AST, as built by the engine.  The
            first path segment of each label names the project root
            package (``repro``); imports into other roots are ignored.
    """
    nodes: dict[str, ModuleNode] = {}
    for label, tree in modules.items():
        parts = list(PurePosixPath(label).with_suffix("").parts)
        if len(parts) < 2:
            continue  # a bare file has no package context to resolve against
        is_package = parts[-1] == "__init__"
        module_parts = tuple(parts[:-1] if is_package else parts)
        root = parts[0]
        package = parts[1] if len(parts) > 2 else ""
        collector = _ImportCollector(module_parts, root, is_package)
        collector.visit(tree)
        nodes[label] = ModuleNode(
            label=label,
            name=".".join(module_parts),
            package=package,
            edges=collector.edges,
        )
    return ImportGraph(nodes)
