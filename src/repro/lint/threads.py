"""The conlint thread model: per-class concurrency facts from the AST.

conlint's rules (:mod:`repro.lint.rules_concurrency`) need a structured
view of each class before they can say anything useful about it: which
attributes are locks, which methods start threads, which attribute
accesses happen under which ``with <lock>:`` scope.  This module builds
that view — a :class:`ClassModel` per ``class`` statement — and nothing
else; rule logic lives with the rules.

The model is deliberately *syntactic*.  Lock attributes are recognised by
their construction (``self._lock = threading.Lock()`` — also ``RLock``
and ``Condition``, qualified or bare); held-lock scopes are the lexical
bodies of ``with self._lock:`` statements (``.acquire()`` / ``.release()``
pairs are invisible to the model and should be avoided in favour of
``with``); attribute accesses are ``self.<name>`` expressions inside the
class's own methods.  A local variable assigned from ``self.<attr>``
(including tuple unpacking, the ``thread, self._thread = self._thread,
None`` hand-off idiom) aliases that attribute for join/call tracking
within the method.

Writes are what matter for guarded-by inference, so the model classifies
an access as a **write** when the attribute is assigned, augmented,
deleted, subscript-assigned, or is the receiver of a known mutator call
(``self._events.append(...)``); bare loads are **reads**.  ``__init__``
and friends run before the object is published to other threads, so
rules treat construction-time writes as safe — the model still records
them, flagged with the method name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "LockAttr",
    "ThreadAttr",
    "AttrAccess",
    "LockOrderEdge",
    "CallbackCall",
    "PoolCapture",
    "ClassModel",
    "build_class_models",
    "CONSTRUCTOR_METHODS",
]

#: Lock-constructor callables recognised on ``self.<attr> = ...()``.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Container methods that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem", "appendleft", "popleft",
    "sort", "reverse", "put", "put_nowait",
}

#: Methods that run before the instance is visible to any other thread.
CONSTRUCTOR_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


@dataclass(frozen=True)
class LockAttr:
    """A lock-like attribute of a class (``self._lock = threading.Lock()``)."""

    name: str
    kind: str  # "Lock" | "RLock" | "Condition"
    line: int


@dataclass(frozen=True)
class ThreadAttr:
    """A ``threading.Thread`` the class creates.

    ``attr`` is the attribute the thread is bound to, or ``""`` for an
    inline ``threading.Thread(...).start()`` that is never bound at all.
    """

    attr: str
    daemon: bool
    line: int
    method: str


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` access inside a method body."""

    attr: str
    method: str
    line: int
    write: bool
    locks: frozenset[str]  # lock-attribute names held at the access


@dataclass(frozen=True)
class LockOrderEdge:
    """Lock ``inner`` acquired while ``outer`` is already held."""

    outer: str
    inner: str
    method: str
    line: int


@dataclass(frozen=True)
class CallbackCall:
    """A call of externally-supplied code made while holding a lock.

    ``target`` is a human description of what was called (the iterated
    attribute or the called attribute's name).
    """

    lock: str
    target: str
    method: str
    line: int


@dataclass(frozen=True)
class PoolCapture:
    """A lock/handle/self reference shipped into pool or thread machinery."""

    what: str  # "self", or the captured attribute name
    via: str  # "submit", "Thread", "Process", "initargs", ...
    method: str
    line: int


@dataclass
class ClassModel:
    """Everything conlint knows about one class."""

    name: str
    line: int
    locks: dict[str, LockAttr] = field(default_factory=dict)
    threads: list[ThreadAttr] = field(default_factory=list)
    accesses: list[AttrAccess] = field(default_factory=list)
    lock_order_edges: list[LockOrderEdge] = field(default_factory=list)
    callback_calls: list[CallbackCall] = field(default_factory=list)
    pool_captures: list[PoolCapture] = field(default_factory=list)
    #: Attributes ``.join()``-ed anywhere in the class (directly or via
    #: a local alias) — a thread stored there has a stop path.
    joined_attrs: set[str] = field(default_factory=set)
    #: Attributes ``.start()``-ed anywhere in the class.
    started_attrs: set[str] = field(default_factory=set)
    #: Attributes assigned from ``open(...)`` / ``<path>.open(...)``.
    handle_attrs: set[str] = field(default_factory=set)

    def guarded_by(self, attr: str) -> set[str]:
        """Locks under which ``attr`` is ever *written* (inference input)."""
        out: set[str] = set()
        for access in self.accesses:
            if access.attr == attr and access.write:
                out.update(access.locks)
        return out


def _callable_name(func: ast.expr) -> str:
    """Trailing name of a call target (``threading.Lock`` -> ``Lock``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _self_attr(node: ast.expr) -> str | None:
    """``"<name>"`` when node is exactly ``self.<name>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_open_call(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and _callable_name(node.func) == "open"


def _thread_daemon_flag(call: ast.Call) -> bool | None:
    """The ``daemon=`` keyword of a ``Thread(...)`` call, if literal."""
    for keyword in call.keywords:
        if keyword.arg == "daemon" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            if isinstance(value, bool):
                return value
    return None


class _MethodScanner(ast.NodeVisitor):
    """Walks one method body with a held-lock stack, filling the model."""

    def __init__(self, model: ClassModel, method: str) -> None:
        self.model = model
        self.method = method
        self._held: list[str] = []
        #: Local names aliasing ``self.<attr>`` (``thread = self._thread``).
        self._aliases: dict[str, str] = {}
        #: Local names bound by ``for x in self.<attr>`` loops.
        self._loop_vars: dict[str, str] = {}

    # -- helpers -----------------------------------------------------------

    def _record(self, attr: str, line: int, write: bool) -> None:
        self.model.accesses.append(
            AttrAccess(
                attr=attr,
                method=self.method,
                line=line,
                write=write,
                locks=frozenset(self._held),
            )
        )

    def _scan_assign_value(self, target_attr: str, value: ast.expr, line: int) -> None:
        """Classify what a ``self.<attr> = value`` assignment creates."""
        if isinstance(value, ast.Call):
            name = _callable_name(value.func)
            if name in _LOCK_FACTORIES:
                self.model.locks.setdefault(
                    target_attr, LockAttr(name=target_attr, kind=name, line=line)
                )
            elif name == "Thread":
                daemon = _thread_daemon_flag(value)
                self.model.threads.append(
                    ThreadAttr(
                        attr=target_attr,
                        daemon=bool(daemon),
                        line=line,
                        method=self.method,
                    )
                )
        if _is_open_call(value):
            self.model.handle_attrs.add(target_attr)

    # -- assignments / accesses --------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        # Tuple-unpacking alias tracking first: ``a, self.x = self.x, None``.
        for target in node.targets:
            if isinstance(target, ast.Tuple) and isinstance(node.value, ast.Tuple):
                for element, value in zip(target.elts, node.value.elts, strict=False):
                    attr = _self_attr(value)
                    if isinstance(element, ast.Name) and attr is not None:
                        self._aliases[element.id] = attr
            elif isinstance(target, ast.Name):
                attr = _self_attr(node.value)
                if attr is not None:
                    self._aliases[target.id] = attr
        for target in node.targets:
            self._visit_store_target(target, node)
        self.visit(node.value)

    def _visit_store_target(self, target: ast.expr, node: ast.Assign) -> None:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._visit_store_target(element, node)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record(attr, target.lineno, write=True)
            if not isinstance(node.value, ast.Tuple):
                self._scan_assign_value(attr, node.value, target.lineno)
        elif isinstance(target, ast.Subscript):
            inner = _self_attr(target.value)
            if inner is not None:
                self._record(inner, target.lineno, write=True)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None:
            self._record(attr, node.target.lineno, write=True)
            if node.value is not None:
                self._scan_assign_value(attr, node.value, node.target.lineno)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None:
            self._record(attr, node.target.lineno, write=True)
        elif isinstance(node.target, ast.Subscript):
            inner = _self_attr(node.target.value)
            if inner is not None:
                self._record(inner, node.target.lineno, write=True)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                self._record(attr, node.lineno, write=True)
            elif isinstance(target, ast.Subscript):
                inner = _self_attr(target.value)
                if inner is not None:
                    self._record(inner, node.lineno, write=True)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            self._record(attr, node.lineno, write=False)
        self.generic_visit(node)

    # -- with-lock scopes and lock ordering --------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.model.locks:
                for outer in self._held:
                    self.model.lock_order_edges.append(
                        LockOrderEdge(
                            outer=outer,
                            inner=attr,
                            method=self.method,
                            line=item.context_expr.lineno,
                        )
                    )
                self._held.append(attr)
                acquired.append(attr)
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            for _ in acquired:
                self._held.pop()

    # -- loops binding callback variables ----------------------------------

    def visit_For(self, node: ast.For) -> None:
        attr = _self_attr(node.iter)
        if attr is None and isinstance(node.iter, ast.Call):
            # ``for s in list(self._subscribers):`` — snapshot iteration.
            if node.iter.args:
                attr = _self_attr(node.iter.args[0])
        if attr is not None and isinstance(node.target, ast.Name):
            self._loop_vars[node.target.id] = attr
        self.generic_visit(node)

    # -- calls: joins, mutators, callbacks, pool captures -------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _callable_name(node.func)
        if isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            receiver_attr = _self_attr(receiver)
            if receiver_attr is None and isinstance(receiver, ast.Name):
                receiver_attr = self._aliases.get(receiver.id)
            if receiver_attr is not None:
                if name == "join":
                    self.model.joined_attrs.add(receiver_attr)
                elif name == "start":
                    self.model.started_attrs.add(receiver_attr)
                elif name in _MUTATORS:
                    self._record(receiver_attr, node.lineno, write=True)
            if (
                name == "start"
                and isinstance(receiver, ast.Call)
                and _callable_name(receiver.func) == "Thread"
            ):
                # ``threading.Thread(...).start()`` — never bound, no
                # join path can possibly exist.
                self.model.threads.append(
                    ThreadAttr(
                        attr="",
                        daemon=bool(_thread_daemon_flag(receiver)),
                        line=node.lineno,
                        method=self.method,
                    )
                )
            if name == "submit":
                self._scan_pool_arguments(node, via="submit")
        if name in ("Thread", "Process"):
            self._scan_pool_arguments(node, via=name)
        if name == "ProcessPoolExecutor":
            self._scan_pool_arguments(node, via="ProcessPoolExecutor")
        if self._held:
            self._scan_callback_call(node)
        self.generic_visit(node)

    def _scan_callback_call(self, node: ast.Call) -> None:
        """Flag calls of externally-supplied code under a held lock."""
        lock = self._held[-1]
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._loop_vars:
            self.model.callback_calls.append(
                CallbackCall(
                    lock=lock,
                    target=f"element of self.{self._loop_vars[func.id]}",
                    method=self.method,
                    line=node.lineno,
                )
            )
        elif isinstance(func, ast.Subscript):
            attr = _self_attr(func.value)
            if attr is not None:
                self.model.callback_calls.append(
                    CallbackCall(
                        lock=lock,
                        target=f"element of self.{attr}",
                        method=self.method,
                        line=node.lineno,
                    )
                )

    def _scan_pool_arguments(self, node: ast.Call, via: str) -> None:
        """Record self/lock/handle references in pool/thread call arguments."""
        candidates: list[tuple[ast.expr, str]] = [(a, via) for a in node.args]
        for keyword in node.keywords:
            label = via
            if keyword.arg in ("args", "initargs"):
                label = keyword.arg
            if isinstance(keyword.value, (ast.Tuple, ast.List)):
                candidates.extend((e, label) for e in keyword.value.elts)
            else:
                candidates.append((keyword.value, label))
        for expr, label in candidates:
            # ``self`` captured wholesale (the worst case: everything rides),
            # including inside a lambda/closure payload.
            if isinstance(expr, ast.Name) and expr.id == "self":
                self.model.pool_captures.append(
                    PoolCapture(what="self", via=label, method=self.method, line=expr.lineno)
                )
                continue
            if isinstance(expr, ast.Lambda) and any(
                isinstance(sub, ast.Name) and sub.id == "self"
                for sub in ast.walk(expr)
            ):
                self.model.pool_captures.append(
                    PoolCapture(what="self", via=label, method=self.method, line=expr.lineno)
                )
                continue
            attr = _self_attr(expr)
            if attr is not None and (
                attr in self.model.locks or attr in self.model.handle_attrs
            ):
                self.model.pool_captures.append(
                    PoolCapture(what=attr, via=label, method=self.method, line=expr.lineno)
                )

    # -- nested scopes ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs run later on unknown threads; their accesses are
        # scanned with an empty held-lock context under a derived name.
        nested = _MethodScanner(self.model, f"{self.method}.{node.name}")
        for stmt in node.body:
            nested.visit(stmt)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        nested = _MethodScanner(self.model, f"{self.method}.{node.name}")
        for stmt in node.body:
            nested.visit(stmt)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        nested = _MethodScanner(self.model, f"{self.method}.<lambda>")
        nested.visit(node.body)


def _scan_method(model: ClassModel, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
    scanner = _MethodScanner(model, node.name)
    for stmt in node.body:
        scanner.visit(stmt)


def _prescan_locks(
    model: ClassModel, methods: list[ast.FunctionDef | ast.AsyncFunctionDef]
) -> None:
    """First pass: find lock/handle attributes before scope tracking.

    Lock discovery must complete before held-lock scanning: a method
    earlier in the class body may take a lock that ``__init__`` (later
    in source order only by convention) creates.
    """
    for method in methods:
        for node in ast.walk(method):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value = node.value
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                targets = [node.target]
            if value is None:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if isinstance(value, ast.Call):
                    name = _callable_name(value.func)
                    if name in _LOCK_FACTORIES:
                        model.locks.setdefault(
                            attr,
                            LockAttr(name=attr, kind=name, line=target.lineno),
                        )
                if _is_open_call(value):
                    model.handle_attrs.add(attr)


def build_class_models(tree: ast.Module) -> list[ClassModel]:
    """Build a :class:`ClassModel` for every class in the module.

    Nested classes are modelled too (methods of the inner class belong
    to the inner model only).
    """
    models: list[ClassModel] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = ClassModel(name=node.name, line=node.lineno)
        methods = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        _prescan_locks(model, methods)
        for method in methods:
            _scan_method(model, method)
        models.append(model)
    return models
