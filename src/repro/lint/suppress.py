"""Inline physlint suppressions.

Two comment forms, scanned with :mod:`tokenize` so strings containing
the magic words do not count::

    lmat[b, m] = 0.0  # physlint: disable=NUM001     (this line only)
    # physlint: disable=API002                        (whole file)

A comment sharing its line with code suppresses the named codes on that
line; a comment standing alone on its line suppresses them for the whole
file (the issue-tracker style "per-file" waiver).  ``disable=all``
suppresses every rule.  Unknown codes are tolerated (forward
compatibility with newer rule sets).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "scan_suppressions"]

_DIRECTIVE_RE = re.compile(
    r"#\s*physlint:\s*disable\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)


@dataclass
class Suppressions:
    """Suppressed rule codes, per line and file-wide.

    Attributes:
        by_line: line number -> codes disabled on that line.
        file_wide: codes disabled for the whole module.
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether a finding of ``code`` at ``line`` is waived."""
        for codes in (self.file_wide, self.by_line.get(line, set())):
            if "ALL" in codes or code in codes:
                return True
        return False


def _parse_codes(comment: str) -> set[str] | None:
    match = _DIRECTIVE_RE.search(comment)
    if match is None:
        return None
    return {
        token.strip().upper()
        for token in match.group("codes").split(",")
        if token.strip()
    }


def scan_suppressions(source: str) -> Suppressions:
    """All suppression directives of one module's source text.

    Tolerates tokenization failures (the parse-error path already reports
    LNT001); a module that cannot be tokenized has no suppressions.
    """
    suppressions = Suppressions()
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        codes = _parse_codes(token.string)
        if codes is None:
            continue
        line_no, column = token.start
        line_text = lines[line_no - 1] if line_no - 1 < len(lines) else ""
        standalone = line_text[:column].strip() == ""
        if standalone:
            suppressions.file_wide |= codes
        else:
            suppressions.by_line.setdefault(line_no, set()).update(codes)
    return suppressions
