"""The physlint rule catalogue: every code-analysis rule, as data.

Mirrors ``repro.check.registry`` (the *design* linter) for the *code*
linter: each rule is registered once as a :class:`~repro.check.registry.RuleSpec`
carrying its stable code, default severity, category and rationale.
``docs/PHYSLINT.md`` is the human rendering of this table and the tests
cross-check the two.

Codes are grouped by rule family::

    UNT0xx  units        (dimension inference over annotated APIs)
    NUM0xx  numeric      (floating-point robustness)
    API0xx  api          (interface hygiene: mutable defaults, global state)
    CON0xx  concurrency  (lock discipline over the project thread model,
                          see docs/CONLINT.md)
    PRF0xx  performance  (hot-path anti-patterns; severity is
                          profile-guided, see docs/PERFLINT.md)
    ARCH0xx architecture (import-graph layering, see docs/PERFLINT.md)
    LNT0xx  analyzer     (the analyzer's own operational diagnostics)

Codes are append-only: a released code never changes meaning, and retired
codes are not reused.
"""

from __future__ import annotations

from ..check.diagnostics import Severity
from ..check.registry import RuleSpec

__all__ = ["lint_rule_specs", "lint_spec_for"]

_ERROR = Severity.ERROR
_WARNING = Severity.WARNING
_INFO = Severity.INFO

_SPECS: tuple[RuleSpec, ...] = (
    # -- units ------------------------------------------------------------
    RuleSpec(
        "UNT001",
        "mixed-unit-arithmetic",
        _ERROR,
        "units",
        "Adding or subtracting quantities of different dimensions (metres "
        "plus henries) or scales (metres plus millimetres) produces a "
        "number that is wrong by construction; unit-scale slips are the "
        "classic parasitic-extraction failure (H vs nH is nine orders).",
    ),
    RuleSpec(
        "UNT002",
        "mixed-unit-comparison",
        _ERROR,
        "units",
        "Comparing quantities of different dimensions or scales makes the "
        "branch condition meaningless — a distance threshold in mm "
        "silently never fires against a value in m.",
    ),
    RuleSpec(
        "UNT003",
        "call-argument-unit-mismatch",
        _ERROR,
        "units",
        "Passing a value of one unit into a parameter annotated with "
        "another (rad into a degree parameter, mm into a metre API) is "
        "invisible at runtime: everything is float.",
    ),
    RuleSpec(
        "UNT004",
        "return-unit-mismatch",
        _ERROR,
        "units",
        "A function annotated to return one unit but returning an "
        "expression of another breaks every caller that trusts the "
        "signature.",
    ),
    RuleSpec(
        "UNT005",
        "assignment-unit-conflict",
        _ERROR,
        "units",
        "Rebinding a unit-annotated variable with a value of a different "
        "dimension or scale defeats the declared unit for the rest of the "
        "scope.",
    ),
    RuleSpec(
        "UNT006",
        "mixed-units-in-reduction",
        _ERROR,
        "units",
        "min/max/sum/hypot over arguments of different units compares or "
        "accumulates incommensurable quantities.",
    ),
    # -- numeric ----------------------------------------------------------
    RuleSpec(
        "NUM001",
        "exact-float-equality",
        _WARNING,
        "numeric",
        "== / != against a float literal is an exact bit comparison; "
        "computed values (quadrature sums, matrix entries) differ from "
        "their ideal value by rounding, so the branch is unstable.  Use "
        "math.isclose or repro.units.approx_zero.",
    ),
    RuleSpec(
        "NUM002",
        "unguarded-division",
        _WARNING,
        "numeric",
        "Dividing by a runtime quantity that is never validated or "
        "compared anywhere in the function raises ZeroDivisionError (or "
        "yields inf) deep inside a solve instead of failing at the input.",
    ),
    RuleSpec(
        "NUM003",
        "domain-unsafe-math",
        _WARNING,
        "numeric",
        "sqrt/log of a difference can go (numerically) negative even when "
        "the maths says it cannot; clamp or guard the argument.",
    ),
    RuleSpec(
        "NUM004",
        "naive-float-accumulation",
        _WARNING,
        "numeric",
        "Plain sum() accumulates rounding error linearly; PEEC kernels "
        "sum thousands of partial inductances spanning orders of "
        "magnitude, where math.fsum is exact at the same cost.",
    ),
    RuleSpec(
        "NUM005",
        "mutable-default-argument",
        _ERROR,
        "numeric",
        "A mutable default (list/dict/set) is created once at definition "
        "time and shared across calls — cached state leaks between "
        "independent analyses.",
    ),
    # -- api --------------------------------------------------------------
    RuleSpec(
        "API001",
        "module-level-mutable-state",
        _WARNING,
        "api",
        "A lowercase module-level mutable binding reads as an accidental "
        "global; name it like a constant (UPPERCASE) if it is a fixed "
        "registry, or move it into an object if it is state.",
    ),
    RuleSpec(
        "API002",
        "global-statement",
        _WARNING,
        "api",
        "Rebinding module globals from inside functions makes behaviour "
        "order-dependent and untestable; prefer an explicit object or a "
        "documented singleton accessor.",
    ),
    # -- concurrency ------------------------------------------------------
    RuleSpec(
        "CON001",
        "write-outside-inferred-lock",
        _ERROR,
        "concurrency",
        "An attribute written under a lock in one method and without it "
        "in another races: the unguarded write can interleave with a "
        "locked read-modify-write and silently lose an update.  Guarded-by "
        "sets are inferred from 'with self.<lock>:' write sites "
        "(docs/CONLINT.md).",
    ),
    RuleSpec(
        "CON002",
        "inconsistent-lock-order",
        _ERROR,
        "concurrency",
        "Two locks acquired in both nesting orders deadlock the moment "
        "two threads take the orders concurrently; a non-reentrant Lock "
        "re-acquired while held deadlocks a single thread.  The lock-order "
        "graph over every 'with' nesting must stay acyclic.",
    ),
    RuleSpec(
        "CON003",
        "lock-captured-into-worker",
        _ERROR,
        "concurrency",
        "Locks and open file handles shipped into process-pool tasks or "
        "thread targets do not survive pickling/fork coherently: a forked "
        "copy of a held lock stays held forever, and a shared handle "
        "interleaves writes.",
    ),
    RuleSpec(
        "CON004",
        "daemon-thread-without-join",
        _WARNING,
        "concurrency",
        "A daemon thread with no join path dies at interpreter exit at an "
        "arbitrary point in its work — half-written files, dropped final "
        "samples, and CI flakes that only reproduce under load.",
    ),
    RuleSpec(
        "CON005",
        "callback-under-lock",
        _WARNING,
        "concurrency",
        "Invoking externally-supplied code while holding a lock hands "
        "your critical section to arbitrary code: a callback that blocks "
        "stalls every thread on the lock, and one that re-enters the "
        "object deadlocks it.",
    ),
    # -- performance (default severity is info: perflint findings are
    # promoted to error only when the hotness model places them on a
    # recorded hot path — see repro.lint.hotness) -------------------------
    RuleSpec(
        "PRF001",
        "python-loop-over-array",
        _INFO,
        "performance",
        "A Python for-loop iterating numpy array elements (or appending "
        "per element) in a kernel module runs the interpreter once per "
        "element; the vectorised form is orders of magnitude faster and "
        "the ROADMAP's 500-component coupling target dies without it.",
    ),
    RuleSpec(
        "PRF002",
        "loop-invariant-allocation",
        _INFO,
        "performance",
        "Allocating an array whose arguments do not depend on the loop "
        "variable re-runs the allocator every iteration for the same "
        "result; hoist it out of the loop (or preallocate and fill).",
    ),
    RuleSpec(
        "PRF003",
        "repeated-attribute-lookup",
        _INFO,
        "performance",
        "The same dotted attribute path resolved many times inside one "
        "loop pays the lookup chain per iteration; bind it to a local "
        "before the loop.",
    ),
    RuleSpec(
        "PRF004",
        "all-pairs-python-scan",
        _INFO,
        "performance",
        "Nested for-i/for-j Python scans over the same sequence are the "
        "O(n^2) interpreter pattern the blocked/vectorised kernels exist "
        "to replace; route pair work through the vectorised path.",
    ),
    RuleSpec(
        "PRF005",
        "heavy-capture-into-pool",
        _INFO,
        "performance",
        "Heavyweight objects (arrays, components, tracers) passed into "
        "ProcessPoolExecutor task args are pickled per task; ship a "
        "fingerprint or key and rebuild (or cache) in the worker.",
    ),
    # -- architecture (enforces docs/ARCHITECTURE.md; always error) -------
    RuleSpec(
        "ARCH001",
        "import-cycle",
        _ERROR,
        "architecture",
        "An import-time cycle between project modules makes import order "
        "load-bearing: whichever module is imported first wins, and a "
        "cold start from the wrong entry point crashes with a partially "
        "initialised module.",
    ),
    RuleSpec(
        "ARCH002",
        "layer-violation",
        _ERROR,
        "architecture",
        "A lower layer importing an upper one inverts the dependency "
        "arrow the architecture is built on; the upper layer can no "
        "longer be refactored (or extracted into the service layer) "
        "without dragging the kernel along.",
    ),
    RuleSpec(
        "ARCH003",
        "imports-cli",
        _ERROR,
        "architecture",
        "repro.cli is the outermost shell — argument parsing and process "
        "exit codes; library code importing it couples every consumer to "
        "the command line.",
    ),
    # -- analyzer ---------------------------------------------------------
    RuleSpec(
        "LNT001",
        "unparsable-module",
        _ERROR,
        "analyzer",
        "A module that does not parse cannot be analyzed (or imported); "
        "physlint reports it instead of crashing.",
    ),
)

_BY_CODE: dict[str, RuleSpec] = {s.code: s for s in _SPECS}


def lint_rule_specs() -> tuple[RuleSpec, ...]:
    """All registered physlint rules, ordered by code."""
    return _SPECS


def lint_spec_for(code: str) -> RuleSpec:
    """Look up a physlint rule by code.

    Raises:
        KeyError: for an unregistered code.
    """
    return _BY_CODE[code]
