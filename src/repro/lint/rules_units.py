"""Unit-dimension inference — the UNT rule family.

A per-scope abstract interpreter over the AST: parameter and variable
annotations using the :mod:`repro.units` aliases seed an environment of
``name -> Unit``; dimensions propagate through assignments, arithmetic
and call boundaries (via the project-wide :class:`~repro.lint.symbols.SymbolTable`).
Diagnostics fire **only when both sides of an operation have known,
conflicting units** — an unannotated expression is "unknown" and never
flagged, so the analyzer's precision grows with annotation coverage
instead of producing noise up front.

Rules::

    UNT001  add/sub of mixed units (dimension or scale: m + mm, H + nH)
    UNT002  ordering/equality across mixed units
    UNT003  call argument unit != parameter annotation
    UNT004  returned unit != return annotation
    UNT005  rebinding an annotated name with a different unit
    UNT006  min/max/sum/hypot over mixed units
"""

from __future__ import annotations

import ast

from ..units import Unit
from .base import ScopedVisitor
from .dimensions import DIMENSIONLESS, NUMBER, describe, merge, mismatch_text, mixable
from .symbols import FuncSig, SymbolTable

__all__ = ["UnitRuleVisitor"]

_IDENTITY_CALLS = {"abs", "float", "fabs", "absolute", "copysign"}
_HOMOGENEOUS_CALLS = {"min", "max", "fsum", "hypot", "sum", "maximum", "minimum"}

Env = dict[str, Unit]


class UnitRuleVisitor(ScopedVisitor):
    """Walks one module, propagating units and emitting UNT findings."""

    def __init__(self, file: str, table: SymbolTable) -> None:
        super().__init__(file)
        self.table = table

    def run(self, tree: ast.Module) -> None:
        """Analyze the module (module-level code plus every def)."""
        self._exec_body(tree.body, env={}, declared={}, returns=None)

    # -- statement execution ------------------------------------------------

    def _exec_body(
        self,
        body: list[ast.stmt],
        env: Env,
        declared: Env,
        returns: Unit | None,
    ) -> None:
        for stmt in body:
            self._exec(stmt, env, declared, returns)

    def _exec(
        self, stmt: ast.stmt, env: Env, declared: Env, returns: Unit | None
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._symbols.append(stmt.name)
            try:
                self._process_function(stmt)
            finally:
                self._symbols.pop()
        elif isinstance(stmt, ast.ClassDef):
            self._symbols.append(stmt.name)
            try:
                self._exec_body(stmt.body, env={}, declared={}, returns=None)
            finally:
                self._symbols.pop()
        elif isinstance(stmt, ast.Assign):
            value_unit = self._infer(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value_unit, env, declared)
        elif isinstance(stmt, ast.AnnAssign):
            from .dimensions import unit_from_annotation

            annotated = unit_from_annotation(stmt.annotation)
            value_unit = self._infer(stmt.value, env) if stmt.value else None
            if isinstance(stmt.target, ast.Name):
                if annotated is not None:
                    if (
                        value_unit is not None
                        and not mixable(annotated, value_unit)
                    ):
                        self.add(
                            "UNT005",
                            stmt,
                            f"'{stmt.target.id}' is declared {describe(annotated)} "
                            f"but initialised with {describe(value_unit)}",
                        )
                    declared[stmt.target.id] = annotated
                    env[stmt.target.id] = annotated
                elif value_unit is not None:
                    env[stmt.target.id] = value_unit
        elif isinstance(stmt, ast.AugAssign):
            target_unit = self._infer(stmt.target, env)
            value_unit = self._infer(stmt.value, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                if (
                    target_unit is not None
                    and value_unit is not None
                    and not mixable(target_unit, value_unit)
                ):
                    self.add(
                        "UNT001",
                        stmt,
                        f"augmented {'addition' if isinstance(stmt.op, ast.Add) else 'subtraction'}"
                        f" mixes units: {mismatch_text(target_unit, value_unit)}",
                        hint="convert one operand explicitly before combining",
                    )
                if isinstance(stmt.target, ast.Name):
                    merged = merge(target_unit, value_unit)
                    if merged is not None:
                        env[stmt.target.id] = merged
                    else:
                        env.pop(stmt.target.id, None)
            elif isinstance(stmt.target, ast.Name):
                env.pop(stmt.target.id, None)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value_unit = self._infer(stmt.value, env)
                if (
                    returns is not None
                    and value_unit is not None
                    and value_unit != NUMBER
                    and not mixable(returns, value_unit)
                ):
                    self.add(
                        "UNT004",
                        stmt,
                        f"returns {describe(value_unit)} but is annotated to "
                        f"return {describe(returns)}",
                    )
        elif isinstance(stmt, ast.Expr):
            self._infer(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._infer(stmt.test, env)
            self._exec_body(stmt.body, env, declared, returns)
            self._exec_body(stmt.orelse, env, declared, returns)
        elif isinstance(stmt, ast.While):
            self._infer(stmt.test, env)
            self._exec_body(stmt.body, env, declared, returns)
            self._exec_body(stmt.orelse, env, declared, returns)
        elif isinstance(stmt, ast.For):
            self._infer(stmt.iter, env)
            self._bind(stmt.target, None, env, declared)
            self._exec_body(stmt.body, env, declared, returns)
            self._exec_body(stmt.orelse, env, declared, returns)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._infer(item.context_expr, env)
            self._exec_body(stmt.body, env, declared, returns)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body, env, declared, returns)
            for handler in stmt.handlers:
                self._exec_body(handler.body, env, declared, returns)
            self._exec_body(stmt.orelse, env, declared, returns)
            self._exec_body(stmt.finalbody, env, declared, returns)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._infer(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._infer(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Imports, pass, global/nonlocal, etc.: nothing to propagate.

    def _process_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        from .dimensions import unit_from_annotation

        env: Env = {}
        declared: Env = {}
        args = node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            unit = unit_from_annotation(arg.annotation)
            if unit is not None:
                env[arg.arg] = unit
                declared[arg.arg] = unit
        returns = unit_from_annotation(node.returns)
        self._exec_body(node.body, env, declared, returns)

    def _bind(
        self, target: ast.expr, value_unit: Unit | None, env: Env, declared: Env
    ) -> None:
        if isinstance(target, ast.Name):
            expected = declared.get(target.id)
            if (
                expected is not None
                and value_unit is not None
                and value_unit != NUMBER
                and not mixable(expected, value_unit)
            ):
                self.add(
                    "UNT005",
                    target,
                    f"'{target.id}' is declared {describe(expected)} but "
                    f"rebound with {describe(value_unit)}",
                )
            if value_unit is not None:
                env[target.id] = value_unit
            else:
                env.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            expected_attr = self.table.attribute_unit(target.attr)
            if (
                expected_attr is not None
                and value_unit is not None
                and value_unit != NUMBER
                and not mixable(expected_attr, value_unit)
            ):
                self.add(
                    "UNT005",
                    target,
                    f"attribute '{target.attr}' is declared "
                    f"{describe(expected_attr)} but assigned "
                    f"{describe(value_unit)}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, None, env, declared)

    # -- expression inference -----------------------------------------------

    def _infer(self, node: ast.expr | None, env: Env) -> Unit | None:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return NUMBER
            if isinstance(node.value, (int, float)):
                return NUMBER
            return None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            inner = self._infer(node.operand, env)
            return NUMBER if isinstance(node.op, ast.Not) else inner
        if isinstance(node, ast.Compare):
            return self._infer_compare(node, env)
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.Attribute):
            self._infer(node.value, env)
            if isinstance(node.value, ast.Name) and node.value.id in ("math", "np", "numpy"):
                return NUMBER if node.attr in ("pi", "tau", "e", "inf") else None
            return self.table.attribute_unit(node.attr)
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env)
            return merge(self._infer(node.body, env), self._infer(node.orelse, env))
        if isinstance(node, ast.NamedExpr):
            unit = self._infer(node.value, env)
            if isinstance(node.target, ast.Name):
                if unit is not None:
                    env[node.target.id] = unit
                else:
                    env.pop(node.target.id, None)
            return unit
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._infer(value, env)
            return None
        if isinstance(node, ast.Subscript):
            self._infer(node.value, env)
            if isinstance(node.slice, ast.expr):
                self._infer(node.slice, env)
            return None
        if isinstance(node, ast.Starred):
            return self._infer(node.value, env)
        if isinstance(node, ast.Lambda):
            return None  # separate scope; parameters are unknown
        # Containers, comprehensions, f-strings, ...: no unit of their own,
        # but their subexpressions may still contain checkable operations.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._infer(child, env)
            elif isinstance(child, ast.comprehension):
                self._infer(child.iter, env)
                for condition in child.ifs:
                    self._infer(condition, env)
        return None

    def _infer_binop(self, node: ast.BinOp, env: Env) -> Unit | None:
        left = self._infer(node.left, env)
        right = self._infer(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and not mixable(left, right):
                op_name = "addition" if isinstance(node.op, ast.Add) else "subtraction"
                self.add(
                    "UNT001",
                    node,
                    f"{op_name} mixes units: {mismatch_text(left, right)} "
                    f"in '{ast.unparse(node)}'",
                    hint="convert one operand explicitly before combining",
                )
                return None
            return merge(left, right)
        if isinstance(node.op, ast.Mult):
            if left is None or right is None:
                return None
            if left in (NUMBER, DIMENSIONLESS):
                return right
            if right in (NUMBER, DIMENSIONLESS):
                return left
            return None  # product dimensions are not modelled
        if isinstance(node.op, ast.Div):
            if left is None or right is None:
                return None
            if right in (NUMBER, DIMENSIONLESS):
                return left
            if left == NUMBER:
                return None
            if left.dimension == right.dimension and left.scale == right.scale:
                return DIMENSIONLESS
            return None
        return None

    def _infer_compare(self, node: ast.Compare, env: Env) -> Unit:
        checkable = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        operands = [node.left] + list(node.comparators)
        units = [self._infer(operand, env) for operand in operands]
        for i, op in enumerate(node.ops):
            if not isinstance(op, checkable):
                continue
            left, right = units[i], units[i + 1]
            if left is not None and right is not None and not mixable(left, right):
                self.add(
                    "UNT002",
                    node,
                    f"comparison mixes units: {mismatch_text(left, right)} "
                    f"in '{ast.unparse(node)}'",
                    hint="convert one side explicitly before comparing",
                )
        return NUMBER

    def _infer_call(self, node: ast.Call, env: Env) -> Unit | None:
        name = _call_name(node.func)
        self._infer(node.func, env)
        if name in _IDENTITY_CALLS and len(node.args) >= 1 and not node.keywords:
            units = [self._infer(arg, env) for arg in node.args]
            return units[0]
        if name in _HOMOGENEOUS_CALLS and len(node.args) >= 2:
            return self._check_homogeneous(node, name, env)
        sig = self.table.signature_for_call(node.func)
        argument_units = [self._infer(arg, env) for arg in node.args]
        keyword_units = {
            kw.arg: self._infer(kw.value, env) for kw in node.keywords
        }
        if sig is None or any(isinstance(arg, ast.Starred) for arg in node.args):
            return sig.returns if sig is not None else None
        for index, arg_unit in enumerate(argument_units):
            if index >= len(sig.params):
                break
            self._check_argument(node, sig, sig.params[index], arg_unit, index)
        for kw in node.keywords:
            if kw.arg is None:
                continue
            for pname, punit in sig.params:
                if pname == kw.arg:
                    self._check_argument(
                        node, sig, (pname, punit), keyword_units.get(kw.arg), None
                    )
                    break
        return sig.returns

    def _check_argument(
        self,
        node: ast.Call,
        sig: FuncSig,
        param: tuple[str, Unit | None],
        arg_unit: Unit | None,
        index: int | None,
    ) -> None:
        pname, punit = param
        if (
            punit is None
            or arg_unit is None
            or arg_unit == NUMBER
            or punit == NUMBER
            or mixable(punit, arg_unit)
        ):
            return
        where = f"argument {index + 1}" if index is not None else f"argument '{pname}'"
        self.add(
            "UNT003",
            node,
            f"{where} of {sig.name}() is {describe(arg_unit)} but the "
            f"parameter '{pname}' expects {describe(punit)}",
            hint="convert the value to the parameter's unit at the call site",
        )

    def _check_homogeneous(self, node: ast.Call, name: str, env: Env) -> Unit | None:
        units = [self._infer(arg, env) for arg in node.args]
        for keyword in node.keywords:
            self._infer(keyword.value, env)
        known = [u for u in units if u is not None and u != NUMBER]
        for other in known[1:]:
            if not mixable(known[0], other):
                self.add(
                    "UNT006",
                    node,
                    f"{name}() mixes units across its arguments: "
                    f"{mismatch_text(known[0], other)}",
                    hint="reduce over one unit; convert the others first",
                )
                return None
        if known:
            return known[0]
        return None


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""
