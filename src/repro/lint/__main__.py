"""``python -m repro.lint`` — shorthand for ``repro-emi lint-src``.

Forwards all arguments, so ``python -m repro.lint --format json`` is
exactly ``repro-emi lint-src --format json``.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    """Run the lint-src subcommand with the given arguments."""
    from ..cli import main as cli_main

    return cli_main(["lint-src", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
