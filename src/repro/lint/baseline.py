"""The physlint baseline: accepted findings, checked in next to the code.

A baseline lets the analyzer gate *new* findings in CI while the team
burns down the old ones.  Entries are keyed on ``(file, code, symbol)``
rather than line numbers — refactoring inside a function must not
invalidate the waiver, while moving the offending code to another
function (or growing *more* of the same offence in the same function)
must surface it again.  Hence every entry carries a ``count``: the
baseline forgives at most that many findings per key.

The file format is a small JSON document (``physlint-baseline/1``); the
shipped tree's baseline lives at :data:`DEFAULT_BASELINE_PATH` inside the
package so that ``repro-emi lint-src`` finds it from any working
directory.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .base import LintFinding

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH"]

#: The checked-in baseline of the shipped tree.
DEFAULT_BASELINE_PATH = Path(__file__).with_name("physlint_baseline.json")

_SCHEMA = "physlint-baseline/1"


@dataclass
class Baseline:
    """Waived finding counts keyed by ``(file, code, symbol)``."""

    budgets: dict[tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[LintFinding]) -> Baseline:
        """Baseline that waives exactly the given findings."""
        counts = Counter(finding.baseline_key() for finding in findings)
        return cls(budgets=dict(counts))

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Read a baseline document.

        Raises:
            ValueError: for an unrecognised schema or malformed entries.
        """
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path}: not valid JSON: {exc}") from exc
        if not isinstance(document, dict) or document.get("schema") != _SCHEMA:
            raise ValueError(f"baseline {path}: expected schema {_SCHEMA!r}")
        budgets: dict[tuple[str, str, str], int] = {}
        for entry in document.get("entries", []):
            try:
                key = (str(entry["file"]), str(entry["code"]), str(entry["symbol"]))
                budgets[key] = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise ValueError(f"baseline {path}: malformed entry {entry!r}") from exc
        return cls(budgets=budgets)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable document (entries sorted for stable diffs)."""
        entries = [
            {"file": file, "code": code, "symbol": symbol, "count": count}
            for (file, code, symbol), count in sorted(self.budgets.items())
        ]
        return {"schema": _SCHEMA, "entries": entries}

    def save(self, path: Path) -> None:
        """Write the baseline document."""
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def filter(self, findings: list[LintFinding]) -> tuple[list[LintFinding], int]:
        """Split findings into (surfaced, number waived by the baseline).

        Findings are consumed against each key's budget in input order, so
        the (count+1)-th occurrence of a baselined offence surfaces.
        """
        remaining = dict(self.budgets)
        surfaced: list[LintFinding] = []
        waived = 0
        for finding in findings:
            key = finding.baseline_key()
            budget = remaining.get(key, 0)
            if budget > 0:
                remaining[key] = budget - 1
                waived += 1
            else:
                surfaced.append(finding)
        return surfaced, waived

    def __len__(self) -> int:
        return sum(self.budgets.values())
