"""repro.lint — physics-aware static analysis of the codebase ("physlint").

Where :mod:`repro.check` validates *designs* (netlists, coupling data,
placement constraints), this package validates the *code that computes
them*: a custom AST analyzer with two rule families —

* **unit-dimension inference** (UNT001–UNT006): the :mod:`repro.units`
  ``Annotated`` aliases on public physics APIs seed a per-scope
  dimension environment; mixed-unit arithmetic, comparisons, call
  arguments, returns and rebindings are flagged (m + mm, H vs nH,
  degrees into a radian API);
* **numerical robustness / API hygiene** (NUM001–NUM005, API001–API002):
  exact float equality, unguarded division, sqrt/log of differences,
  plain ``sum()`` in PEEC kernels, mutable defaults, module-global
  state;
* **concurrency — "conlint"** (CON001–CON005): a per-class thread model
  (lock attributes, ``with <lock>:`` scopes, thread creation sites)
  feeds guarded-by inference and a lock-order graph; writes outside
  their inferred lock, inconsistent acquisition orders, locks shipped
  into process pools, join-less daemon threads and callbacks invoked
  under a lock are flagged (``docs/CONLINT.md``).  The static pass is
  paired with a runtime lock sanitizer
  (:mod:`repro.lint.sanitizer`, ``make race-check``);
* **performance — "perflint"** (PRF001–PRF005): Python loops over numpy
  arrays in kernel modules, loop-invariant allocations, repeated dotted
  lookups in loops, all-pairs nested scans, heavyweight pool captures.
  Findings default to ``info``; the profile-guided hotness model
  (:mod:`repro.lint.hotness`, fed by the PerfHistory span store)
  promotes hot-path findings to ``error`` (``docs/PERFLINT.md``);
* **architecture** (ARCH001–ARCH003): the project import graph
  (:mod:`repro.lint.imports`) is checked against the layer table in
  :mod:`repro.lint.rules_arch` — import cycles, lower layers importing
  upper ones, anything importing ``repro.cli``.

Entry points:

* :func:`lint_paths` — analyze files/directories, returns a
  :class:`LintResult` wrapping a :class:`~repro.check.diagnostics.CheckReport`;
* ``repro-emi lint-src`` — the CLI front-end (text/JSON output,
  ``--fail-on``, ``--baseline`` / ``--write-baseline``);
* ``python -m repro.lint`` — shorthand for the CLI subcommand.

Findings are waived either inline (``# physlint: disable=CODE``, per
line or per file) or via the checked-in baseline
(:data:`~repro.lint.baseline.DEFAULT_BASELINE_PATH`).  Rule catalogue:
``docs/PHYSLINT.md``.
"""

from .base import LintFinding
from .baseline import DEFAULT_BASELINE_PATH, Baseline
from .engine import LintResult, default_target, lint_paths, lint_sources
from .hotness import HotnessModel
from .imports import ImportGraph, build_import_graph
from .registry import lint_rule_specs, lint_spec_for
from .rules_arch import ARCH_LAYERS, analyze_architecture
from .sanitizer import LockSanitizer, SanitizerFinding, sanitized
from .sarif import findings_to_sarif
from .suppress import Suppressions, scan_suppressions
from .threads import ClassModel, build_class_models

__all__ = [
    "LintFinding",
    "LintResult",
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "lint_paths",
    "lint_sources",
    "default_target",
    "lint_rule_specs",
    "lint_spec_for",
    "Suppressions",
    "scan_suppressions",
    "ClassModel",
    "build_class_models",
    "LockSanitizer",
    "SanitizerFinding",
    "sanitized",
    "HotnessModel",
    "ImportGraph",
    "build_import_graph",
    "ARCH_LAYERS",
    "analyze_architecture",
    "findings_to_sarif",
]
