"""Performance rules — the PRF family ("perflint").

Static detection of the Python-loop anti-patterns that undo the
vectorised kernels: the all-pairs coupling path (ROADMAP item 2) and the
placement rewrite (item 3) both die the moment per-element loops creep
back into hot modules.  Findings default to ``info`` — a cold-path loop
is a style note, not a defect — and are promoted to ``error`` by the
profile-guided hotness model (:mod:`repro.lint.hotness`) when the
offending function lives on a recorded hot path.

Rules::

    PRF001  Python for-loop over numpy array elements (or per-element
            list.append) inside a kernel module (peec/coupling)
    PRF002  allocation inside a loop whose arguments are loop-invariant
            (np.zeros/np.array/np.concatenate rebuilt per iteration
            for nothing)
    PRF003  the same dotted attribute path resolved >= 3 times inside
            one loop body (attribute lookups are dictionary probes;
            hoist to a local)
    PRF004  all-pairs nested for-loops scanning the same sequence —
            the exact O(N^2) pattern the blocked/vectorised paths
            replace (exempt inside those modules, see
            PRF004_EXEMPT_PARTS)
    PRF005  a heavyweight object (component/array/tracer/problem)
            shipped into process-pool task arguments where a
            fingerprint or cache key would do

Each loop is analyzed against its *own* body only — statements of nested
loops belong to the inner loop's analysis (no double reporting), and one
finding per rule per loop keeps the report readable.  Like every
physlint family the rules err on the quiet side; the remainder is
governable with ``# physlint: disable=PRFxxx`` and the perflint
baseline.  Rule catalogue and rationale: ``docs/PERFLINT.md``.
"""

from __future__ import annotations

import ast
from collections import Counter
from collections.abc import Iterator

from .base import ScopedVisitor

__all__ = ["PerformanceRuleVisitor", "KERNEL_MARKERS", "PRF004_EXEMPT_PARTS"]

#: Path parts that mark a module as a numerics kernel (PRF001 applies).
KERNEL_MARKERS = ("peec", "coupling")

#: Path parts of modules whose nested same-sequence scans ARE the blocked
#: or pair-symmetric implementation (PRF004 does not apply): the
#: vectorised filament kernel packs pairs itself, and the inductance
#: assembly fills a symmetric matrix triangle.
PRF004_EXEMPT_PARTS = ("filament.py", "inductance.py")

_NUMPY_MODULES = frozenset({"np", "numpy"})
#: numpy constructors whose call inside a loop allocates a fresh array.
_NUMPY_ALLOCATORS = frozenset(
    {
        "array",
        "asarray",
        "zeros",
        "zeros_like",
        "ones",
        "ones_like",
        "empty",
        "full",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "linspace",
        "arange",
        "eye",
    }
)
#: numpy calls that *produce* an array: looping over their elements in
#: Python is the PRF001 anti-pattern.
_NUMPY_PRODUCERS = _NUMPY_ALLOCATORS | {"nditer", "ravel", "flatten"}

#: Argument names that look like heavyweight payloads when shipped into a
#: process pool (PRF005) — arrays, meshes, component objects, tracers.
_HEAVY_NAME_TOKENS = frozenset(
    {
        "component",
        "components",
        "problem",
        "board",
        "mesh",
        "filaments",
        "tracer",
        "array",
        "arrays",
        "matrix",
        "paths",
    }
)
#: Receiver names that mark a call as pool submission machinery.
_POOL_RECEIVER_TOKENS = ("executor", "pool")
_POOL_METHODS = frozenset({"submit", "map"})


def _is_numpy_call(node: ast.AST, names: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in _NUMPY_MODULES
        and node.func.attr in names
    )


def _dotted_path(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or not parts:
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _loop_targets(node: ast.For | ast.While) -> set[str]:
    if isinstance(node, ast.While):
        return set()
    return {n.id for n in ast.walk(node.target) if isinstance(n, ast.Name)}


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _walk_own_body(loop: ast.For | ast.While) -> Iterator[ast.AST]:
    """Walk a loop's body without descending into nested loops.

    Nested loops analyze their own bodies when the visitor reaches them;
    claiming their statements here would report every finding once per
    enclosing loop level.
    """
    pending: list[ast.AST] = list(loop.body)
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, (ast.For, ast.While)):
            # The nested loop's header expressions still execute per
            # outer iteration; its body does not belong to us.
            if isinstance(node, ast.For):
                pending.append(node.iter)
            else:
                pending.append(node.test)
            continue
        pending.extend(ast.iter_child_nodes(node))


def _assigned_names(nodes: list[ast.AST]) -> set[str]:
    """Every name (re)bound by assignments among the given nodes."""
    assigned: set[str] = set()
    for stmt in nodes:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                assigned |= _names_in(target)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            assigned |= _names_in(stmt.target)
    return assigned


def _range_len_argument(node: ast.expr) -> str | None:
    """The sequence text of a ``range(len(seq))``-shaped iterable."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return None
    if node.func.id != "range" or not node.args:
        return None
    last = node.args[-1]
    if (
        isinstance(last, ast.Call)
        and isinstance(last.func, ast.Name)
        and last.func.id == "len"
        and len(last.args) == 1
    ):
        return ast.unparse(last.args[0])
    return None


def _same_sequence(outer: ast.expr, inner: ast.expr) -> str | None:
    """The shared sequence text when two loop iterables scan one sequence.

    Matches the two all-pairs shapes: both loops iterating the same
    expression directly, and both ``range(len(seq))`` (the inner one
    possibly offset, ``range(i + 1, len(seq))``).
    """
    outer_seq = _range_len_argument(outer)
    inner_seq = _range_len_argument(inner)
    if outer_seq is not None and outer_seq == inner_seq:
        return outer_seq
    outer_text = ast.unparse(outer)
    if outer_text == ast.unparse(inner) and not isinstance(outer, ast.Constant):
        return outer_text
    return None


class PerformanceRuleVisitor(ScopedVisitor):
    """Walks one module emitting PRF001–PRF005 findings."""

    def __init__(self, file: str, is_kernel: bool = False, lookup_threshold: int = 3) -> None:
        super().__init__(file)
        self.is_kernel = is_kernel
        self.lookup_threshold = lookup_threshold
        self.prf004_exempt = any(
            part in PRF004_EXEMPT_PARTS for part in file.split("/")
        )

    def run(self, tree: ast.Module) -> None:
        """Analyze the module."""
        self.visit(tree)

    # -- loops: PRF001 / PRF002 / PRF003 / PRF004 ---------------------------

    def _visit_loop(self, node: ast.For | ast.While) -> None:
        body = list(_walk_own_body(node))
        if isinstance(node, ast.For):
            self._check_prf001(node, body)
            self._check_prf004(node)
        self._check_prf002(node, body)
        self._check_prf003(node, body)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _check_prf001(self, node: ast.For, body: list[ast.AST]) -> None:
        if not self.is_kernel:
            return
        if _is_numpy_call(node.iter, _NUMPY_PRODUCERS):
            self.add(
                "PRF001",
                node,
                f"Python for-loop over numpy array elements "
                f"('for {ast.unparse(node.target)} in "
                f"{ast.unparse(node.iter)}') in a kernel module",
                hint="vectorise: operate on the whole array in one numpy "
                "expression",
            )
            return
        # Per-element append: building a list one element at a time from
        # the loop variable is the scalar shadow of a vectorised
        # expression.
        targets = _loop_targets(node)
        for stmt in body:
            if (
                isinstance(stmt, ast.Call)
                and isinstance(stmt.func, ast.Attribute)
                and stmt.func.attr == "append"
                and len(stmt.args) == 1
                and targets & _names_in(stmt.args[0])
            ):
                self.add(
                    "PRF001",
                    stmt,
                    "per-element append inside a kernel-module loop builds "
                    "an array one scalar at a time",
                    hint="accumulate with a numpy expression (or a "
                    "comprehension feeding one np.array call)",
                )
                return

    def _check_prf004(self, node: ast.For) -> None:
        if self.prf004_exempt:
            return
        for stmt in ast.walk(node):
            if stmt is node or not isinstance(stmt, ast.For):
                continue
            shared = _same_sequence(node.iter, stmt.iter)
            if shared is None:
                continue
            self.add(
                "PRF004",
                stmt,
                f"all-pairs nested scan over '{shared}' — O(N^2) "
                "Python-level pair loop",
                hint="use a blocked/vectorised pair evaluation or a "
                "spatial index (docs/PERFLINT.md)",
            )
            return

    def _check_prf002(self, node: ast.For | ast.While, body: list[ast.AST]) -> None:
        loop_variant = _loop_targets(node) | _assigned_names(body)
        for stmt in body:
            if not _is_numpy_call(stmt, _NUMPY_ALLOCATORS):
                continue
            call = stmt
            if not isinstance(call, ast.Call):  # pragma: no cover - narrowed above
                continue
            arg_names: set[str] = set()
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                arg_names |= _names_in(arg)
            if arg_names & loop_variant:
                continue  # shape depends on the loop; allocation is needed
            self.add(
                "PRF002",
                call,
                f"loop-invariant allocation '{ast.unparse(call)}' rebuilt "
                "every iteration",
                hint="hoist the allocation out of the loop (reuse the "
                "buffer, or build once before the loop)",
            )
            return

    def _check_prf003(self, node: ast.For | ast.While, body: list[ast.AST]) -> None:
        targets = _loop_targets(node)
        written: set[str] = set()
        counts: Counter[str] = Counter()
        anchor: dict[str, ast.Attribute] = {}
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    dotted = _dotted_path(target)
                    if dotted is not None:
                        written.add(dotted)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                dotted = _dotted_path(stmt.target)
                if dotted is not None:
                    written.add(dotted)
            if not isinstance(stmt, ast.Attribute):
                continue
            dotted = _dotted_path(stmt)
            if dotted is None or "." not in dotted:
                continue
            if dotted.split(".")[0] in targets:
                continue  # loop-variant receiver: cannot hoist
            counts[dotted] += 1
            existing = anchor.get(dotted)
            if existing is None or stmt.lineno < existing.lineno:
                anchor[dotted] = stmt
        for dotted, count in sorted(counts.items()):
            if count < self.lookup_threshold or dotted in written:
                continue
            if any(
                dotted != other
                and dotted.startswith(other + ".")
                and counts[other] >= self.lookup_threshold
                for other in counts
            ):
                continue  # report the shortest hot prefix only
            self.add(
                "PRF003",
                anchor[dotted],
                f"attribute path '{dotted}' resolved {count}x inside one "
                "loop",
                hint=f"hoist to a local before the loop: "
                f"{dotted.rsplit('.', 1)[-1]} = {dotted}",
            )

    # -- PRF005: heavyweight pool captures ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and _is_pool_receiver(func.value)
        ):
            arguments = node.args[1:] if func.attr == "submit" else node.args
            for arg in arguments:
                heavy = _heavy_argument(arg)
                if heavy is None:
                    continue
                self.add(
                    "PRF005",
                    node,
                    f"heavyweight object '{heavy}' shipped into pool task "
                    "arguments — it is pickled per task",
                    hint="ship a fingerprint/cache key instead and rebuild "
                    "(or look up) in the worker (repro.parallel.fingerprint)",
                )
                break
        self.generic_visit(node)


def _is_pool_receiver(node: ast.expr) -> bool:
    dotted = _dotted_path(node)
    if dotted is None:
        return False
    leaf = dotted.split(".")[-1].lower()
    return any(token in leaf for token in _POOL_RECEIVER_TOKENS)


def _heavy_argument(node: ast.expr) -> str | None:
    """The offending text when a pool-task argument looks heavyweight."""
    if isinstance(node, ast.Starred):
        node = node.value
    dotted = _dotted_path(node)
    if dotted is None:
        return None
    if dotted == "self":
        return "self"
    leaf = dotted.split(".")[-1].lower()
    if leaf in _HEAVY_NAME_TOKENS:
        return dotted
    return None
