"""SARIF 2.1.0 rendering of physlint findings.

One function, shared by every rule family: :func:`findings_to_sarif`
turns a list of :class:`~repro.lint.base.LintFinding` into the Static
Analysis Results Interchange Format document GitHub code scanning
ingests (``repro-emi lint-src --format sarif``, uploaded by CI on
non-fork runs).

The document is deliberately minimal and deterministic — tool driver,
the rule catalogue for the codes that actually fired (id, short
description, help text from the registry rationale), and one result per
finding with its file/line region.  Deterministic output (sorted rules,
findings already sorted by the engine) keeps the golden-file test
stable.
"""

from __future__ import annotations

from ..check.diagnostics import Severity
from .base import LintFinding
from .registry import lint_spec_for

__all__ = ["SARIF_VERSION", "findings_to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS: dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_entry(code: str) -> dict[str, object]:
    spec = lint_spec_for(code)
    return {
        "id": code,
        "name": spec.title,
        "shortDescription": {"text": spec.title},
        "fullDescription": {"text": spec.rationale},
        "defaultConfiguration": {"level": _LEVELS[spec.severity]},
        "properties": {"category": spec.category},
    }


def _result_entry(finding: LintFinding, rule_index: dict[str, int]) -> dict[str, object]:
    message = finding.message
    if finding.hint:
        message = f"{message} ({finding.hint})"
    return {
        "ruleId": finding.code,
        "ruleIndex": rule_index[finding.code],
        "level": _LEVELS[finding.severity],
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }


def findings_to_sarif(
    findings: list[LintFinding], tool_version: str = "0"
) -> dict[str, object]:
    """The SARIF 2.1.0 document for a set of surfaced findings.

    Args:
        findings: surfaced findings (post suppressions/baseline), in the
            engine's (file, line, code) order — preserved in ``results``.
        tool_version: reported driver version (the package version).
    """
    codes = sorted({finding.code for finding in findings})
    rule_index = {code: index for index, code in enumerate(codes)}
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "physlint",
                        "informationUri": "docs/PHYSLINT.md",
                        "version": tool_version,
                        "rules": [_rule_entry(code) for code in codes],
                    }
                },
                "results": [
                    _result_entry(finding, rule_index) for finding in findings
                ],
            }
        ],
    }
