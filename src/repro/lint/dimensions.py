"""Resolving unit annotations and combining inferred dimensions.

The analyzer resolves annotations *syntactically*: ``x: Meters`` (or
``units.Meters``, ``"Meters"``, ``Meters | None``, ``Optional[Meters]``)
maps through :data:`repro.units.UNIT_ALIASES` by alias *name*, so no
import tracking is needed and fixture modules in tests work without
imports.  The alias table in :mod:`repro.units` is the single source of
truth.

Inference works on ``Unit | None`` — ``None`` means "unknown, assume
nothing" (the analyzer only ever flags when *both* sides of an operation
are known).  Bare numeric literals infer as the :data:`NUMBER` pseudo-unit,
which mixes with everything: ``d * 1.05`` stays metres, ``x + 1.0`` is not
flagged.
"""

from __future__ import annotations

import ast

from ..units import UNIT_ALIASES, Unit

__all__ = [
    "NUMBER",
    "DIMENSIONLESS",
    "unit_from_annotation",
    "mixable",
    "describe",
    "mismatch_text",
]

#: Pseudo-unit of bare numeric literals: compatible with every unit.
NUMBER = Unit("number", 1.0, "")

#: The explicit dimensionless unit (ratios, coupling factors).
DIMENSIONLESS = UNIT_ALIASES["Dimensionless"]

_OPTIONAL_WRAPPERS = {"Optional", "Annotated", "Final"}


def unit_from_annotation(node: ast.expr | None) -> Unit | None:
    """The unit tag of an annotation expression, if it names a unit alias.

    Handles the syntactic forms contributors actually write: a bare alias
    name, an attribute path ending in the alias (``units.Meters``), a
    string annotation, ``X | None`` unions and ``Optional[X]`` /
    ``Final[X]`` wrappers.  Anything else resolves to ``None`` (unknown).
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return UNIT_ALIASES.get(node.id)
    if isinstance(node, ast.Attribute):
        return UNIT_ALIASES.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return None
        return unit_from_annotation(parsed.body)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return unit_from_annotation(node.left) or unit_from_annotation(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        if name in _OPTIONAL_WRAPPERS:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return unit_from_annotation(inner.elts[0])
            return unit_from_annotation(inner)
    return None


def mixable(a: Unit, b: Unit) -> bool:
    """Whether two known units may be added/compared without a diagnostic."""
    if a == NUMBER or b == NUMBER:
        return True
    return a.dimension == b.dimension and a.scale == b.scale


def describe(unit: Unit) -> str:
    """Human label of a unit: ``"length [m]"`` / ``"dimensionless"``."""
    if unit == NUMBER:
        return "number"
    if not unit.symbol:
        return unit.dimension
    return f"{unit.dimension} [{unit.symbol}]"


def mismatch_text(a: Unit, b: Unit) -> str:
    """Phrase a unit mismatch for a diagnostic message."""
    if a.dimension == b.dimension:
        return (
            f"same dimension ({a.dimension}) at different scales: "
            f"{a.symbol or '1'} vs {b.symbol or '1'}"
        )
    return f"{describe(a)} vs {describe(b)}"


def merge(a: Unit | None, b: Unit | None) -> Unit | None:
    """Combine two additive operands' units (no diagnostics here).

    NUMBER defers to the other side; agreeing units keep their unit;
    anything conflicting or unknown yields unknown.
    """
    if a is None or b is None:
        return None
    if a == NUMBER:
        return b
    if b == NUMBER:
        return a
    if mixable(a, b):
        return a
    return None
