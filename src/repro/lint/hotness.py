"""Profile-guided severity: the hotness model behind perflint.

The perf observatory already records where time actually goes — every
benchmark and CLI run appends its span tree to the
:class:`~repro.obs.history.PerfHistory` JSONL store.  This module closes
the loop: it aggregates those spans into a *hotness snapshot* (wall-time
share per span name), maps span names onto modules and functions, and
promotes PRF findings that land on a hot path from ``info`` to
``error``.  A cold-path Python loop is a style note; the same loop
inside ``placement.sequential`` or ``coupling.field_solve`` is a defect
the CI gate must stop.

Snapshot document (``hotness-snapshot/1``), committed at
``benchmarks/baselines/HOTNESS.json`` so CI severity is deterministic
rather than a function of whichever machine ran the benchmarks last::

    {
      "schema": "hotness-snapshot/1",
      "threshold": 0.05,
      "total_wall_s": 65.08,
      "source": "benchmarks/out/perf-history.jsonl",
      "spans": {"placement.sequential": 0.165, "coupling.field_solve": 0.248, ...}
    }

``spans`` maps every recorded span name to its share of total root wall
time; names at or above ``threshold`` are the hot set.  Regenerate with
``make hotness-baseline`` (``repro-emi perf hotness``).

Span names map onto code with the same quiet-side philosophy as the
rules themselves — a mapping miss leaves a finding cold, never
promotes it:

* a span name that extends a module's dotted path marks the whole
  module hot (``coupling.sweep.distance`` -> ``repro/coupling/sweep.py``);
* a span name whose first segment matches the module's package or stem
  marks a *function* hot when a remaining segment's underscore tokens
  are contained in the function name's tokens (``parallel.worker`` ->
  ``_worker_loop``; ``coupling.field_solve`` -> ``_field_solve``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

__all__ = [
    "HOTNESS_SCHEMA",
    "DEFAULT_HOT_SHARE",
    "HotnessModel",
]

HOTNESS_SCHEMA = "hotness-snapshot/1"

#: A span below this share of total recorded wall time is cold.
DEFAULT_HOT_SHARE = 0.05

#: The synthetic root span every report carries; never a hot *path*.
_ROOT_SPAN = "run"


def _tokens(name: str) -> set[str]:
    return {token for token in name.lower().split("_") if token}


def _module_key(file_label: str) -> tuple[str, ...]:
    """Dotted module segments of a file label, project root dropped.

    ``repro/coupling/sweep.py`` -> ``("coupling", "sweep")``;
    ``repro/cli.py`` -> ``("cli",)``; package initializers map to the
    package itself.
    """
    parts = list(PurePosixPath(file_label).with_suffix("").parts)
    if len(parts) > 1:
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return tuple(parts)


@dataclass
class HotnessModel:
    """Hot span names plus the mapping onto modules and functions.

    Attributes:
        shares: span name -> share of total recorded root wall time.
        threshold: minimum share that makes a span hot.
        source: provenance string (history path or snapshot file).
    """

    shares: dict[str, float] = field(default_factory=dict)
    threshold: float = DEFAULT_HOT_SHARE
    source: str = ""

    @property
    def hot_spans(self) -> list[str]:
        """Span names at or above the threshold, hottest first."""
        hot = [
            (share, name)
            for name, share in self.shares.items()
            if share >= self.threshold and name != _ROOT_SPAN
        ]
        return [name for share, name in sorted(hot, reverse=True)]

    # -- the code mapping ---------------------------------------------------

    def is_hot(self, file_label: str, symbol: str) -> bool:
        """Whether a finding's location lies on a recorded hot path.

        Args:
            file_label: the finding's relative file (``repro/peec/mesh.py``).
            symbol: the finding's enclosing dotted symbol
                (``"AutoPlacer._place_one"`` or ``"<module>"``).
        """
        module = _module_key(file_label)
        if not module:
            return False
        function = symbol.rsplit(".", maxsplit=1)[-1]
        function_tokens = _tokens(function)
        for span in self.hot_spans:
            segments = tuple(span.split("."))
            if _covers_module(segments, module):
                return True
            if _covers_function(segments, module, function_tokens):
                return True
        return False

    def promoted_count(self) -> int:
        """Number of hot span names (diagnostic/summary use)."""
        return len(self.hot_spans)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """The snapshot document (spans sorted for stable diffs)."""
        return {
            "schema": HOTNESS_SCHEMA,
            "threshold": self.threshold,
            "source": self.source,
            "spans": {name: round(share, 6) for name, share in sorted(self.shares.items())},
        }

    def save(self, path: Path) -> None:
        """Write the snapshot document."""
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: Path) -> HotnessModel:
        """Read a snapshot document.

        Raises:
            ValueError: for an unrecognised schema or malformed entries.
        """
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"hotness {path}: not valid JSON: {exc}") from exc
        if not isinstance(document, dict) or document.get("schema") != HOTNESS_SCHEMA:
            raise ValueError(f"hotness {path}: expected schema {HOTNESS_SCHEMA!r}")
        spans = document.get("spans", {})
        if not isinstance(spans, dict):
            raise ValueError(f"hotness {path}: 'spans' must be an object")
        try:
            shares = {str(name): float(share) for name, share in spans.items()}
            threshold = float(document.get("threshold", DEFAULT_HOT_SHARE))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"hotness {path}: malformed shares: {exc}") from exc
        return cls(
            shares=shares,
            threshold=threshold,
            source=str(document.get("source", "")),
        )

    @classmethod
    def from_history(
        cls,
        history_path: Path,
        threshold: float = DEFAULT_HOT_SHARE,
    ) -> HotnessModel:
        """Aggregate a perf-history store into a hotness model.

        Every record's span tree contributes its per-span wall seconds;
        shares are relative to the summed root wall time.  An empty or
        missing store yields a model with no hot spans.
        """
        # Local import: repro.obs is cross-cutting, but keeping the lint
        # package importable without it at module load mirrors the engine.
        from ..obs.history import PerfHistory

        totals: dict[str, float] = {}
        root_total = 0.0
        history = PerfHistory(history_path)
        for record in history.records():
            report = record.report
            root_total += report.root.wall_s
            for _path, span in report.root.walk_paths():
                totals[span.name] = totals.get(span.name, 0.0) + span.wall_s
        if root_total <= 0.0:
            return cls(shares={}, threshold=threshold, source=str(history_path))
        shares = {name: wall / root_total for name, wall in totals.items()}
        shares.pop(_ROOT_SPAN, None)
        return cls(shares=shares, threshold=threshold, source=str(history_path))


def _covers_module(segments: tuple[str, ...], module: tuple[str, ...]) -> bool:
    """Span ``coupling.sweep.distance`` covers module ``coupling.sweep``.

    True when the span's segments extend (or equal) the module's dotted
    path — the span is recorded *inside* that module, so everything in
    the module is hot.
    """
    if len(segments) < len(module):
        return False
    return segments[: len(module)] == module


def _covers_function(
    segments: tuple[str, ...],
    module: tuple[str, ...],
    function_tokens: set[str],
) -> bool:
    """Span ``parallel.worker`` covers ``_worker_loop`` in ``parallel.executor``.

    The span's first segment must name the module's package or stem; a
    remaining segment then matches when its underscore tokens are all
    contained in the function name's tokens.
    """
    if not function_tokens:
        return False
    if segments[0] not in (module[0], module[-1]):
        return False
    for segment in segments[1:]:
        segment_tokens = _tokens(segment)
        if segment_tokens and segment_tokens <= function_tokens:
            return True
    return False
