"""Project-wide symbol table for unit inference.

A first pass over every module collects the unit signatures of functions,
methods and annotated class attributes, so the per-module inference pass
can check *call boundaries*: argument units against parameter
annotations, and the unit a call expression evaluates to.

Resolution is by bare name (functions and methods are imported and called
by their last name segment throughout this codebase).  When two
definitions share a name but disagree on units, the name is marked
*ambiguous* and excluded from checking — a linter must never guess.

A small builtin table covers the ``math`` / ``numpy`` functions whose
unit behaviour matters to this codebase (trigonometry takes radians,
``math.degrees`` converts, ...).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..units import UNIT_ALIASES, Unit
from .dimensions import unit_from_annotation

__all__ = ["FuncSig", "SymbolTable", "build_symbol_table"]

_RAD = UNIT_ALIASES["Radians"]
_DEG = UNIT_ALIASES["Degrees"]
_NUMBERLIKE = Unit("number", 1.0, "")


@dataclass(frozen=True)
class FuncSig:
    """Unit signature of one function or method.

    Attributes:
        name: bare function name (diagnostic context).
        params: ordered (name, unit-or-None) pairs, ``self``/``cls``
            stripped for methods.
        returns: unit of the return annotation, if any.
    """

    name: str
    params: tuple[tuple[str, Unit | None], ...]
    returns: Unit | None

    def param_unit(self, index: int, keyword: str | None) -> Unit | None:
        """Unit of the parameter an argument binds to (None if unknown)."""
        if keyword is not None:
            for pname, unit in self.params:
                if pname == keyword:
                    return unit
            return None
        if 0 <= index < len(self.params):
            return self.params[index][1]
        return None


@dataclass
class SymbolTable:
    """Everything the inference pass can resolve across module borders.

    Attributes:
        functions: bare name -> signature, or None when ambiguous.
        attributes: class-attribute name -> unit, or None when ambiguous.
        qualified: dotted builtin name ("math.cos") -> signature.
    """

    functions: dict[str, FuncSig | None] = field(default_factory=dict)
    attributes: dict[str, Unit | None] = field(default_factory=dict)
    qualified: dict[str, FuncSig] = field(default_factory=dict)

    def signature_for_call(self, func: ast.expr) -> FuncSig | None:
        """Resolve the unit signature a call expression targets, if any."""
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                qualified = self.qualified.get(f"{func.value.id}.{func.attr}")
                if qualified is not None:
                    return qualified
            return self.functions.get(func.attr)
        return None

    def attribute_unit(self, name: str) -> Unit | None:
        """Unit of a class attribute by bare name (None if unknown)."""
        return self.attributes.get(name)

    def _record_function(self, sig: FuncSig) -> None:
        existing = self.functions.get(sig.name, _MISSING)
        if existing is _MISSING:
            self.functions[sig.name] = sig
        elif existing != sig:
            self.functions[sig.name] = None  # ambiguous: never guess

    def _record_attribute(self, name: str, unit: Unit) -> None:
        existing = self.attributes.get(name, _MISSING)
        if existing is _MISSING:
            self.attributes[name] = unit
        elif existing != unit:
            self.attributes[name] = None  # ambiguous: never guess


_MISSING: object = object()


def _signature_of(
    node: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> FuncSig | None:
    """Unit signature of a def, or None when no units are involved."""
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    if is_method and ordered and ordered[0].arg in ("self", "cls"):
        ordered = ordered[1:]
    params: list[tuple[str, Unit | None]] = [
        (a.arg, unit_from_annotation(a.annotation)) for a in ordered
    ]
    # Keyword-only parameters participate in keyword binding only; append
    # them after the positionals (they can never bind positionally, but
    # param_unit() looks keywords up by name across the whole tuple).
    params += [(a.arg, unit_from_annotation(a.annotation)) for a in args.kwonlyargs]
    returns = unit_from_annotation(node.returns)
    if returns is None and all(unit is None for _, unit in params):
        return None
    return FuncSig(name=node.name, params=tuple(params), returns=returns)


def _collect(tree: ast.Module, table: SymbolTable) -> None:
    class Collector(ast.NodeVisitor):
        def __init__(self) -> None:
            self._class_depth = 0

        def _handle_def(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
            sig = _signature_of(node, is_method=self._class_depth > 0)
            if sig is not None:
                table._record_function(sig)
            self.generic_visit(node)

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._handle_def(node)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self._handle_def(node)

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    unit = unit_from_annotation(stmt.annotation)
                    if unit is not None:
                        table._record_attribute(stmt.target.id, unit)
            self._class_depth += 1
            try:
                self.generic_visit(node)
            finally:
                self._class_depth -= 1

    Collector().visit(tree)


def _builtin_table() -> dict[str, FuncSig]:
    """Unit behaviour of the relevant ``math`` / ``numpy`` functions."""
    table: dict[str, FuncSig] = {}

    def register(names: tuple[str, ...], param: Unit | None, returns: Unit | None) -> None:
        for dotted in names:
            bare = dotted.rsplit(".", maxsplit=1)[-1]
            table[dotted] = FuncSig(bare, (("x", param),), returns)

    trig = ("math.cos", "math.sin", "math.tan", "np.cos", "np.sin", "np.tan",
            "numpy.cos", "numpy.sin", "numpy.tan")
    register(trig, _RAD, _NUMBERLIKE)
    inverse = ("math.acos", "math.asin", "math.atan", "np.arccos", "np.arcsin",
               "np.arctan", "numpy.arccos", "numpy.arcsin", "numpy.arctan")
    register(inverse, _NUMBERLIKE, _RAD)
    register(("math.degrees", "np.rad2deg", "numpy.rad2deg"), _RAD, _DEG)
    register(("math.radians", "np.deg2rad", "numpy.deg2rad"), _DEG, _RAD)
    # atan2 returns radians; its two arguments share an (unknown) unit.
    for dotted in ("math.atan2", "np.arctan2", "numpy.arctan2"):
        table[dotted] = FuncSig("atan2", (("y", None), ("x", None)), _RAD)
    return table


def build_symbol_table(modules: dict[str, ast.Module]) -> SymbolTable:
    """One table over all parsed modules (file label -> AST)."""
    table = SymbolTable(qualified=_builtin_table())
    for tree in modules.values():
        _collect(tree, table)
    return table
