"""Numerical-robustness and API-hygiene rules — NUM and API families.

These rules are deliberately *heuristic*: a linter that floods a physics
codebase with false positives gets disabled, so every rule errs on the
quiet side and the remainder is governable via inline suppressions and
the checked-in baseline (see :mod:`repro.lint.engine`).

Rules::

    NUM001  == / != against a float literal (exact float equality)
    NUM002  division by a runtime quantity never validated in the scope
    NUM003  sqrt/log of a difference (numerically negative domains)
    NUM004  plain sum() in a PEEC kernel module (math.fsum is exact)
    NUM005  mutable default argument
    API001  lowercase module-level mutable binding
    API002  'global' statement (module state rebound from functions)

NUM002's notion of "guarded" is textual and order-insensitive on
purpose: a quantity that is compared against anything, tested for truth,
or validated by an assert *anywhere in the enclosing scope* counts as
guarded.  That misses some genuinely unsafe divisions, but it means a
finding that does surface is worth reading.
"""

from __future__ import annotations

import ast

from .base import ScopedVisitor

__all__ = ["NumericRuleVisitor"]

_SQRT_LOG = {"sqrt", "log", "log2", "log10"}
_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
_SAFE_MODULES = {"math", "np", "numpy"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_FACTORIES
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _MUTABLE_FACTORIES
    return False


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_string_like(node: ast.expr) -> bool:
    return isinstance(node, ast.JoinedStr) or (
        isinstance(node, ast.Constant) and isinstance(node.value, str)
    )


def _is_non_numeric_binop(node: ast.BinOp) -> bool:
    """True for ``/`` and ``%`` uses that are not arithmetic at all.

    ``pathlib.Path / "name"`` overloads division and ``"%s" % value`` is
    string formatting; a string operand on either side marks the whole
    expression as non-numeric.
    """
    if _is_string_like(node.left) or _is_string_like(node.right):
        return True
    # Chained path joins: (root / "a") / "b" — the inner BinOp already
    # has a string operand.
    left = node.left
    return isinstance(left, ast.BinOp) and _is_non_numeric_binop(left)


def _guarded_expressions(scope: ast.AST) -> set[str]:
    """Textual forms of every expression the scope validates somewhere.

    Collected from comparison operands, truth-tests of ``if`` / ``while``
    / ``assert`` / ternaries / boolean operators, and the arguments of
    ``max(x, positive-literal)`` clamps.  Nested function bodies are
    *included* (ast.walk has no pruning); over-approximating "guarded"
    only makes NUM002 quieter, never noisier.
    """
    guarded: set[str] = set()

    def tests_of(node: ast.expr) -> list[ast.expr]:
        if isinstance(node, ast.BoolOp):
            out: list[ast.expr] = []
            for value in node.values:
                out.extend(tests_of(value))
            return out
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            # ``if not items: return`` validates ``items`` just as well.
            return [node, *tests_of(node.operand)]
        if isinstance(node, ast.Call):
            # ``if approx_zero(r): raise`` / ``if math.isfinite(x):`` —
            # a predicate in a test position validates its arguments.
            return [node, *node.args]
        return [node]

    def record(node: ast.expr) -> None:
        guarded.add(ast.unparse(node))

    for node in ast.walk(scope):
        if isinstance(node, ast.Compare):
            record(node.left)
            for comparator in node.comparators:
                record(comparator)
        elif isinstance(node, (ast.If, ast.While)):
            for test in tests_of(node.test):
                record(test)
        elif isinstance(node, ast.IfExp):
            for test in tests_of(node.test):
                record(test)
        elif isinstance(node, ast.Assert):
            for test in tests_of(node.test):
                record(test)
        elif isinstance(node, ast.Call) and _call_name(node.func) in ("max", "min"):
            has_literal = any(
                isinstance(a, ast.Constant) and isinstance(a.value, (int, float))
                for a in node.args
            )
            if has_literal:
                for argument in node.args:
                    record(argument)
    return guarded


class NumericRuleVisitor(ScopedVisitor):
    """Walks one module emitting NUM and API findings."""

    def __init__(self, file: str, is_peec_kernel: bool = False) -> None:
        super().__init__(file)
        self.is_peec_kernel = is_peec_kernel
        self._guard_stack: list[set[str]] = []

    def run(self, tree: ast.Module) -> None:
        """Analyze the module."""
        self._guard_stack = [_guarded_expressions(tree)]
        self._check_module_level(tree)
        self.visit(tree)

    # -- module-level state (API001) ---------------------------------------

    def _check_module_level(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target] if isinstance(stmt.target, ast.Name) else []
                value = stmt.value
                if _annotation_is_final(stmt.annotation):
                    continue
            else:
                continue
            if not _is_mutable_literal(value):
                continue
            for target in targets:
                name = target.id
                if name.isupper() or name.startswith("__"):
                    continue  # constant-by-convention or dunder
                self.add(
                    "API001",
                    stmt,
                    f"module-level mutable binding '{name}' looks like "
                    "accidental global state",
                    hint="rename to UPPERCASE if it is a fixed registry, or "
                    "move it into a class",
                )

    # -- scope handling -----------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if _is_mutable_literal(default):
                self.add(
                    "NUM005",
                    default,
                    f"mutable default argument in {node.name}()",
                    hint="default to None and create the container inside",
                )
        self._guard_stack.append(_guarded_expressions(node))
        try:
            self._visit_scoped(node, node.name)
        finally:
            self._guard_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- NUM001: exact float equality ---------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[i], operands[i + 1])
            literal = next(
                (
                    operand
                    for operand in pair
                    if isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                ),
                None,
            )
            if literal is None:
                continue
            other = pair[1] if literal is pair[0] else pair[0]
            # Comparing two literals is constant folding, not a float test.
            if isinstance(other, ast.Constant):
                continue
            op_text = "==" if isinstance(op, ast.Eq) else "!="
            self.add(
                "NUM001",
                node,
                f"exact float {op_text} against {literal.value!r} in "
                f"'{ast.unparse(node)}'",
                hint="use math.isclose or repro.units.approx_zero",
            )
        self.generic_visit(node)

    # -- NUM002: unguarded division ------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)) and not _is_non_numeric_binop(node):
            denominator = node.right
            if not self._denominator_safe(denominator):
                self.add(
                    "NUM002",
                    node,
                    f"division by runtime quantity "
                    f"'{ast.unparse(denominator)}' that is never validated "
                    "in this scope",
                    hint="guard against zero (raise, clamp, or test) before "
                    "dividing",
                )
        self.generic_visit(node)

    def _denominator_safe(self, node: ast.expr) -> bool:
        guarded = self._guard_stack[-1] if self._guard_stack else set()
        return self._expr_safe(node, guarded)

    def _expr_safe(self, node: ast.expr, guarded: set[str]) -> bool:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)):
                return node.value != 0
            return True
        if ast.unparse(node) in guarded:
            return True
        if isinstance(node, ast.Name):
            return node.id.isupper()  # module constant by convention
        if isinstance(node, ast.Attribute):
            return isinstance(node.value, ast.Name) and node.value.id in _SAFE_MODULES
        if isinstance(node, ast.UnaryOp):
            return self._expr_safe(node.operand, guarded)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Mult, ast.Add, ast.Pow)
        ):
            return self._expr_safe(node.left, guarded) and self._expr_safe(
                node.right, guarded
            )
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            # ``x or 1.0`` is the canonical zero-denominator guard: the
            # expression evaluates to the fallback whenever x is falsy.
            return self._expr_safe(node.values[-1], guarded)
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in ("max", "min"):
                positive_literal = any(
                    isinstance(a, ast.Constant)
                    and isinstance(a.value, (int, float))
                    and a.value > 0
                    for a in node.args
                )
                if positive_literal:
                    return True
            if name == "exp":  # e**x > 0 for every finite x
                return True
            if name == "len" and len(node.args) == 1:
                # A truth-tested container has nonzero length, and an
                # UPPERCASE module constant is a fixed non-empty registry.
                return self._expr_safe(node.args[0], guarded)
            return False
        return False

    # -- NUM003 / NUM004: domain-unsafe math, naive accumulation -------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        qualified_ok = not isinstance(node.func, ast.Attribute) or (
            isinstance(node.func.value, ast.Name)
            and node.func.value.id in _SAFE_MODULES
        )
        if name in _SQRT_LOG and qualified_ok and node.args:
            argument = node.args[0]
            if isinstance(argument, ast.BinOp) and isinstance(argument.op, ast.Sub):
                self.add(
                    "NUM003",
                    node,
                    f"{name}() of a difference "
                    f"'{ast.unparse(argument)}' can go numerically negative",
                    hint="clamp with max(value, 0.0) or guard the subtraction",
                )
        if (
            name == "sum"
            and isinstance(node.func, ast.Name)
            and self.is_peec_kernel
        ):
            self.add(
                "NUM004",
                node,
                "plain sum() in a PEEC kernel accumulates rounding error",
                hint="use math.fsum for exact float accumulation",
            )
        self.generic_visit(node)

    # -- API002: global statements -------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        names = ", ".join(node.names)
        self.add(
            "API002",
            node,
            f"function rebinds module global(s): {names}",
            hint="prefer an explicit object or a documented singleton "
            "accessor",
        )


def _annotation_is_final(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id == "Final"
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        return isinstance(base, ast.Name) and base.id == "Final"
    return False
