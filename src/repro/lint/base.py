"""Shared plumbing of the physlint rule visitors.

:class:`LintFinding` is the analyzer-internal finding record — unlike the
design linter's :class:`~repro.check.diagnostics.Diagnostic` it keeps the
source location structured (file, line, enclosing symbol) because line
numbers drift between revisions while ``(file, code, symbol)`` is stable
enough to key the baseline on.  The engine converts findings to
diagnostics only after suppression and baseline filtering.

:class:`ScopedVisitor` is the common ``ast.NodeVisitor`` base: it tracks
the enclosing class/function symbol (``"MnaSystem._assemble"``) and
offers :meth:`ScopedVisitor.add` which resolves severity from the rule
registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..check.diagnostics import Diagnostic, Severity
from .registry import lint_spec_for

__all__ = ["LintFinding", "ScopedVisitor"]


@dataclass(frozen=True)
class LintFinding:
    """One physlint finding, with a structured source location.

    Attributes:
        code: stable rule identifier (``UNT001`` ...).
        severity: badness, from the rule registry.
        message: human description citing the offending expression.
        file: path of the module, relative to the linted root (posix).
        line: 1-based source line.
        symbol: dotted enclosing symbol (``"<module>"`` at module level).
        hint: optional suggestion.
    """

    code: str
    severity: Severity
    message: str
    file: str
    line: int
    symbol: str = "<module>"
    hint: str = ""

    def to_diagnostic(self) -> Diagnostic:
        """Render as a design-linter diagnostic (``obj = file:line``)."""
        return Diagnostic(
            code=self.code,
            severity=self.severity,
            message=f"{self.symbol}: {self.message}",
            obj=f"{self.file}:{self.line}",
            hint=self.hint,
        )

    def baseline_key(self) -> tuple[str, str, str]:
        """The (file, code, symbol) triple the baseline matches on."""
        return (self.file, self.code, self.symbol)


class ScopedVisitor(ast.NodeVisitor):
    """Node visitor that tracks the enclosing symbol and collects findings."""

    def __init__(self, file: str) -> None:
        self.file = file
        self.findings: list[LintFinding] = []
        self._symbols: list[str] = []

    @property
    def symbol(self) -> str:
        """Dotted enclosing symbol, ``"<module>"`` outside any def/class."""
        return ".".join(self._symbols) if self._symbols else "<module>"

    def add(
        self,
        code: str,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> None:
        """Record a finding at a node, severity from the registry."""
        self.findings.append(
            LintFinding(
                code=code,
                severity=lint_spec_for(code).severity,
                message=message,
                file=self.file,
                line=getattr(node, "lineno", 1),
                symbol=self.symbol,
                hint=hint,
            )
        )

    # -- symbol tracking ---------------------------------------------------

    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self._symbols.append(name)
        try:
            self.generic_visit(node)
        finally:
            self._symbols.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)
