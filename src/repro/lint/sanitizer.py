"""Runtime lock sanitizer — conlint's dynamic half.

Where :mod:`repro.lint.rules_concurrency` reasons about lock discipline
statically, this module *watches it happen*: an opt-in instrumented-lock
layer that records per-thread acquisition stacks at test time and turns
two classes of latent deadlock/starvation bugs into hard findings:

* **lock-order inversions** — the sanitizer maintains a global
  lock-order graph (edge ``A -> B`` whenever ``B`` is acquired while
  ``A`` is held, with the acquisition stack of the first witness); the
  moment an acquisition would close a cycle, a
  :class:`SanitizerFinding` records both conflicting stacks.  Unlike a
  real deadlock this does not require the unlucky interleaving: taking
  the two orders at *any* time during the run — even sequentially, even
  on one thread — is enough evidence.
* **over-threshold hold times** — a lock held longer than
  ``hold_threshold_s`` (default 1.0 s, env
  ``REPRO_EMI_LOCK_HOLD_S``) starves every other thread; telemetry
  locks in this codebase are meant to be held for microseconds.

Activation is strictly opt-in, in one of two ways:

* programmatically::

      from repro.lint import sanitized

      with sanitized() as sanitizer:
          ...  # threading.Lock()/RLock() created here are instrumented
      assert not sanitizer.findings

* for a whole pytest run, ``REPRO_EMI_LOCK_SANITIZER=1`` — the test
  suite's ``conftest.py`` installs one session sanitizer and fails any
  test on whose watch a finding appeared.  ``make race-check`` runs the
  threaded obs/parallel suites exactly this way.

:func:`install` monkeypatches :func:`threading.Lock` /
:func:`threading.RLock` with instrumenting factories, so *any* lock
created while active — including ones inside :class:`threading.Event`
or :class:`threading.Condition` — is tracked; locks created before
install are untouched.  The instrumented wrappers implement the full
lock protocol (``acquire``/``release``/``locked``/context manager, plus
the ``_release_save``/``_acquire_restore``/``_is_owned`` hooks
:class:`threading.Condition` relies on), so patched code behaves
identically modulo bookkeeping.  Never enable in production hot paths:
every acquisition captures a Python stack.
"""

from __future__ import annotations

import _thread
import os
import threading
import time
import traceback
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

__all__ = [
    "SanitizerFinding",
    "LockSanitizer",
    "install",
    "uninstall",
    "active",
    "sanitized",
    "ENV_VAR",
    "HOLD_ENV_VAR",
]

#: Environment variable that asks the test harness to install a sanitizer.
ENV_VAR = "REPRO_EMI_LOCK_SANITIZER"
#: Environment variable overriding the hold-time threshold [s].
HOLD_ENV_VAR = "REPRO_EMI_LOCK_HOLD_S"

#: Stack frames to keep per acquisition sample.
_STACK_DEPTH = 12


def _thread_name() -> str:
    """Current thread's name, without :func:`threading.current_thread`.

    ``current_thread()`` creates and *registers* a ``_DummyThread`` when
    called from a thread that is still bootstrapping (e.g. from the
    ``Event.set`` inside ``Thread._bootstrap_inner``) — and that dummy's
    own ``Event`` would re-enter the sanitizer, recursing forever.  A
    plain read of the registry has no side effects.
    """
    ident = threading.get_ident()
    registry = getattr(threading, "_active", {})
    thread = registry.get(ident)
    return thread.name if thread is not None else f"thread-{ident}"


def _capture_stack() -> str:
    """The current acquisition stack, sanitizer frames stripped."""
    frames = traceback.extract_stack(limit=_STACK_DEPTH + 4)
    kept = [f for f in frames if os.path.basename(f.filename) != "sanitizer.py"]
    return "".join(traceback.format_list(kept[-_STACK_DEPTH:]))


def default_hold_threshold_s() -> float:
    """Hold-time threshold [s]: ``REPRO_EMI_LOCK_HOLD_S`` or 1.0."""
    raw = os.environ.get(HOLD_ENV_VAR, "")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return value if value > 0 else 1.0


@dataclass(frozen=True)
class SanitizerFinding:
    """One runtime lock-discipline violation.

    Attributes:
        kind: ``"lock-order-inversion"`` or ``"hold-time"``.
        message: human description naming the locks involved.
        thread: name of the thread that triggered the finding.
        stack: acquisition stack at the trigger point.
        other_stack: for inversions, the stack of the conflicting
            (earlier, opposite-order) acquisition.
    """

    kind: str
    message: str
    thread: str
    stack: str = ""
    other_stack: str = ""

    def render(self) -> str:
        """Multi-line human rendering for assertion messages."""
        parts = [f"[{self.kind}] {self.message} (thread {self.thread})"]
        if self.stack:
            parts.append("acquisition stack:\n" + self.stack)
        if self.other_stack:
            parts.append("conflicting acquisition stack:\n" + self.other_stack)
        return "\n".join(parts)


class _Held:
    """Bookkeeping for one currently-held instrumented lock."""

    __slots__ = ("lock", "t_acquired", "count")

    def __init__(self, lock: "_InstrumentedLock", t_acquired: float):
        self.lock = lock
        self.t_acquired = t_acquired
        self.count = 1


class LockSanitizer:
    """Collects lock-order and hold-time evidence from instrumented locks.

    All internal state is guarded by one raw ``_thread`` lock (a raw
    lock so the sanitizer can never instrument itself); no user code is
    ever called while it is held.

    Attributes:
        findings: violations recorded so far (append-only).
        acquisitions: total tracked acquisitions (re-entries included).
        locks_created: instrumented locks handed out by the factories.
    """

    def __init__(self, hold_threshold_s: float | None = None):
        threshold = (
            hold_threshold_s if hold_threshold_s is not None else default_hold_threshold_s()
        )
        if threshold <= 0:
            raise ValueError(f"hold_threshold_s must be > 0, got {threshold}")
        self.hold_threshold_s = threshold
        self.findings: list[SanitizerFinding] = []
        self.acquisitions = 0
        self.locks_created = 0
        self._state = _thread.allocate_lock()
        #: thread ident -> stack of currently held instrumented locks.
        self._held: dict[int, list[_Held]] = {}
        #: lock-order edges: (outer id, inner id) -> witness stack.
        self._edges: dict[tuple[int, int], str] = {}
        #: adjacency over lock ids for cycle detection.
        self._adjacency: dict[int, set[int]] = {}
        #: lock id -> display name (creation site).
        self._names: dict[int, str] = {}
        self._counter = 0

    # -- factories ---------------------------------------------------------

    def lock(self, name: str = "") -> "_InstrumentedLock":
        """A new instrumented non-reentrant lock."""
        return _InstrumentedLock(self, _REAL_LOCK(), reentrant=False, name=name)

    def rlock(self, name: str = "") -> "_InstrumentedLock":
        """A new instrumented reentrant lock."""
        return _InstrumentedLock(self, _REAL_RLOCK(), reentrant=True, name=name)

    # -- registration ------------------------------------------------------

    def _register(self, lock: "_InstrumentedLock", name: str) -> int:
        with self._state:
            self._counter += 1
            self.locks_created += 1
            ident = self._counter
            self._names[ident] = name or f"lock#{ident}"
        return ident

    def _name(self, ident: int) -> str:
        return self._names.get(ident, f"lock#{ident}")

    # -- acquisition/release notes ----------------------------------------

    def _note_acquired(self, lock: "_InstrumentedLock") -> None:
        tid = threading.get_ident()
        now = time.monotonic()
        thread_name = _thread_name()
        inversion: tuple[str, str] | None = None
        with self._state:
            self.acquisitions += 1
            held = self._held.setdefault(tid, [])
            for entry in held:
                if entry.lock is lock:  # re-entrant re-acquisition
                    entry.count += 1
                    return
            if held:
                stack = _capture_stack()
                for entry in held:
                    edge = (entry.lock._ident, lock._ident)
                    if edge[0] == edge[1]:
                        continue
                    if edge not in self._edges:
                        # New edge: does the opposite order already exist?
                        witness = self._reverse_witness(edge[1], edge[0])
                        self._edges[edge] = stack
                        self._adjacency.setdefault(edge[0], set()).add(edge[1])
                        if witness is not None and inversion is None:
                            inversion = (
                                f"lock '{self._name(edge[1])}' acquired while "
                                f"holding '{self._name(edge[0])}', but the "
                                "opposite order was observed earlier — "
                                "deadlock when taken concurrently",
                                witness,
                            )
            held.append(_Held(lock, now))
        if inversion is not None:
            self._record(
                SanitizerFinding(
                    kind="lock-order-inversion",
                    message=inversion[0],
                    thread=thread_name,
                    stack=_capture_stack(),
                    other_stack=inversion[1],
                )
            )

    def _reverse_witness(self, start: int, goal: int) -> str | None:
        """Witness stack when ``goal`` is reachable from ``start``."""
        direct = self._edges.get((start, goal))
        if direct is not None:
            return direct
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            for nxt in self._adjacency.get(node, ()):
                if nxt == goal:
                    return self._edges.get((node, goal), "")
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return None

    def _note_released(self, lock: "_InstrumentedLock") -> None:
        tid = threading.get_ident()
        now = time.monotonic()
        thread_name = _thread_name()
        hold_s: float | None = None
        with self._state:
            held = self._held.get(tid, [])
            for index in range(len(held) - 1, -1, -1):
                entry = held[index]
                if entry.lock is lock:
                    entry.count -= 1
                    if entry.count == 0:
                        held.pop(index)
                        hold_s = now - entry.t_acquired
                    break
        if hold_s is not None and hold_s > self.hold_threshold_s:
            self._record(
                SanitizerFinding(
                    kind="hold-time",
                    message=(
                        f"lock '{self._name(lock._ident)}' held for "
                        f"{hold_s:.3f} s (threshold "
                        f"{self.hold_threshold_s:.3f} s) — every other "
                        "thread on this lock starved meanwhile"
                    ),
                    thread=thread_name,
                    stack=_capture_stack(),
                )
            )

    def _record(self, finding: SanitizerFinding) -> None:
        with self._state:
            self.findings.append(finding)

    # -- reporting ---------------------------------------------------------

    def report(self) -> list[SanitizerFinding]:
        """A snapshot of the findings recorded so far."""
        with self._state:
            return list(self.findings)

    def render(self) -> str:
        """Every finding rendered for an assertion message."""
        return "\n\n".join(f.render() for f in self.report())


class _InstrumentedLock:
    """A lock wrapper reporting acquisitions/releases to its sanitizer.

    Implements the full primitive-lock protocol plus the private hooks
    :class:`threading.Condition` uses on reentrant locks, so it can
    stand in anywhere a real lock does.  The wrapper binds to the
    sanitizer that created it — locks created under a nested sanitizer
    report there, not to an outer one.
    """

    def __init__(
        self,
        sanitizer: LockSanitizer,
        real: Any,
        reentrant: bool,
        name: str = "",
    ):
        self._sanitizer = sanitizer
        self._real = real
        self._reentrant = reentrant
        if not name:
            site = traceback.extract_stack(limit=8)
            caller = next(
                (
                    f
                    for f in reversed(site)
                    if os.path.basename(f.filename)
                    not in ("sanitizer.py", "threading.py")
                ),
                None,
            )
            if caller is not None:
                name = f"{os.path.basename(caller.filename)}:{caller.lineno}"
        self._ident = sanitizer._register(self, name)

    # -- primitive lock protocol ------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._note_acquired(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._note_released(self)
        self._real.release()

    def locked(self) -> bool:
        return bool(self._real.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<Sanitized{kind} {self._sanitizer._name(self._ident)}>"

    # -- Condition integration hooks ---------------------------------------
    # threading.Condition(wrapped_rlock) calls these during wait(); keeping
    # the sanitizer's held-stack in sync avoids phantom hold-time findings
    # spanning a wait.

    def _release_save(self) -> Any:
        self._sanitizer._note_released(self)
        if hasattr(self._real, "_release_save"):
            return self._real._release_save()
        self._real.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        if hasattr(self._real, "_acquire_restore"):
            self._real._acquire_restore(state)
        else:
            self._real.acquire()
        self._sanitizer._note_acquired(self)

    def _is_owned(self) -> bool:
        if hasattr(self._real, "_is_owned"):
            return bool(self._real._is_owned())
        # Primitive-lock fallback, mirroring threading.Condition.
        if self._real.acquire(False):
            self._real.release()
            return False
        return True


# The real factories, captured at import time so install() can restore
# them and the sanitizer can build unwrapped locks for itself.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_active_lock = _thread.allocate_lock()
_active_stack: list[LockSanitizer] = []  # physlint: disable=API001 -- module singleton stack


def _reset_after_fork() -> None:
    """Disarm the sanitizer in forked children.

    A fork can land while another thread holds a sanitizer's raw state
    lock; the child would deadlock on its first tracked acquisition.
    Children get real lock factories and a fresh (empty) stack —
    sanitizing the parent is what the tests care about.
    """
    global _active_lock  # physlint: disable=API002 -- fork-reset of the module lock
    _active_lock = _thread.allocate_lock()
    for sanitizer in _active_stack:
        sanitizer._state = _thread.allocate_lock()
        sanitizer._held.clear()
    _active_stack.clear()
    threading.Lock = _REAL_LOCK  # type: ignore
    threading.RLock = _REAL_RLOCK  # type: ignore


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython >= 3.7
    os.register_at_fork(after_in_child=_reset_after_fork)


def active() -> LockSanitizer | None:
    """The innermost installed sanitizer, or ``None``."""
    with _active_lock:
        return _active_stack[-1] if _active_stack else None


def install(sanitizer: LockSanitizer | None = None) -> LockSanitizer:
    """Install a sanitizer: new ``threading.Lock``/``RLock`` are instrumented.

    Nestable — each :func:`install` pushes onto a stack and
    :func:`uninstall` pops; the factories always bind to the innermost
    sanitizer *at lock-creation time*, so a lock keeps reporting to its
    creator even after an inner sanitizer is popped.
    """
    if sanitizer is None:
        sanitizer = LockSanitizer()

    with _active_lock:
        _active_stack.append(sanitizer)
        threading.Lock = _factory_lock  # type: ignore
        threading.RLock = _factory_rlock  # type: ignore
    return sanitizer


def uninstall() -> LockSanitizer | None:
    """Pop the innermost sanitizer; restores real factories when empty.

    Returns:
        The removed sanitizer, or ``None`` when none was installed.
    """
    with _active_lock:
        if not _active_stack:
            return None
        sanitizer = _active_stack.pop()
        if not _active_stack:
            threading.Lock = _REAL_LOCK  # type: ignore
            threading.RLock = _REAL_RLOCK  # type: ignore
        return sanitizer


def _factory_lock() -> Any:
    sanitizer = active()
    if sanitizer is None:  # pragma: no cover - races with uninstall only
        return _REAL_LOCK()
    return sanitizer.lock()


def _factory_rlock() -> Any:
    sanitizer = active()
    if sanitizer is None:  # pragma: no cover - races with uninstall only
        return _REAL_RLOCK()
    return sanitizer.rlock()


@contextmanager
def sanitized(
    hold_threshold_s: float | None = None,
) -> Iterator[LockSanitizer]:
    """Context manager: install a fresh sanitizer, uninstall on exit.

    The caller decides what to do with ``sanitizer.findings`` — the
    pytest fixtures fail the test when any exist.
    """
    sanitizer = install(LockSanitizer(hold_threshold_s=hold_threshold_s))
    try:
        yield sanitizer
    finally:
        uninstall()
