"""Architecture rules — the ARCH family, enforcing ``docs/ARCHITECTURE.md``.

Operates on the :class:`~repro.lint.imports.ImportGraph` built over the
whole analyzed tree, not on single modules: layering and cycles are
properties of the graph.

Rules::

    ARCH001  import-time cycle between project modules
    ARCH002  a package imports a package above its layer
    ARCH003  a module imports ``repro.cli`` (the CLI is the outermost
             shell; nothing may depend on it)

The layer table below *is* the enforced architecture — it is checked-in
data, rendered in ``docs/ARCHITECTURE.md``, and changing it is an
explicit architectural decision reviewed like code.  A package may
import its own layer and anything below it; ``obs`` and ``units`` are
cross-cutting (importable from everywhere) because tracing spans and
unit aliases deliberately thread through every layer.  Packages absent
from the table (and trees whose labels are not rooted in a known
package) are not judged — the rules stay quiet rather than guess.
"""

from __future__ import annotations

import ast

from .base import LintFinding
from .imports import ImportGraph, build_import_graph
from .registry import lint_spec_for

__all__ = ["ARCH_LAYERS", "CROSS_CUTTING_PACKAGES", "analyze_architecture"]

#: The enforced layering, lowest first.  A module in layer *n* may import
#: packages of layer <= *n*.  Rendered as the diagram in
#: ``docs/ARCHITECTURE.md`` ("Enforced layering"); the two must agree
#: (the docs test cross-checks them).
ARCH_LAYERS: dict[str, int] = {
    "geometry": 0,
    "peec": 1,
    "circuit": 1,
    "components": 2,
    "emi": 2,
    "parallel": 2,
    "coupling": 3,
    "sensitivity": 3,
    "rules": 4,
    "placement": 5,
    "routing": 6,
    "io": 6,
    "viz": 6,
    "check": 6,
    "converters": 7,
    "core": 8,
    "lint": 9,
    "service": 9,
    "cli": 10,
}

#: Importable from every layer: telemetry spans and the unit vocabulary
#: are deliberately woven through the whole tree.
CROSS_CUTTING_PACKAGES: frozenset[str] = frozenset({"obs", "units"})

#: Module basenames whose whole purpose is to invoke the CLI; their
#: ``repro.cli`` import is the feature, not a violation.
_CLI_SHIM_BASENAMES = ("__main__.py",)


def _finding(
    code: str, file: str, line: int, message: str, hint: str = ""
) -> LintFinding:
    return LintFinding(
        code=code,
        severity=lint_spec_for(code).severity,
        message=message,
        file=file,
        line=line,
        symbol="<module>",
        hint=hint,
    )


def _package_of(target: str) -> str:
    """Top-level package (or module) a dotted project target belongs to."""
    parts = target.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def _arch001(graph: ImportGraph) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for cycle in graph.cycles():
        anchor = cycle[0]
        member_names = [graph.nodes[label].name for label in cycle]
        # Report at the anchor's first import-time edge into the cycle.
        line = 1
        cycle_set = set(cycle)
        for edge in graph.nodes[anchor].edges:
            if edge.import_time and graph.resolve(edge.target) in cycle_set:
                line = edge.line
                break
        findings.append(
            _finding(
                "ARCH001",
                anchor,
                line,
                f"import cycle between {len(cycle)} modules: "
                + " -> ".join(member_names[:6])
                + (" -> ..." if len(member_names) > 6 else ""),
                hint="break the cycle: move the shared definition down a "
                "layer, or defer one import into the function that needs it",
            )
        )
    return findings


def _arch002_003(graph: ImportGraph) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for label in sorted(graph.nodes):
        node = graph.nodes[label]
        own = node.package or node.name.split(".")[-1]
        own_layer = ARCH_LAYERS.get(own)
        seen: set[tuple[str, str, int]] = set()
        for edge in node.edges:
            target_package = _package_of(edge.target)
            if target_package == "cli" and own != "cli":
                if not label.endswith(_CLI_SHIM_BASENAMES):
                    findings.append(
                        _finding(
                            "ARCH003",
                            label,
                            edge.line,
                            "imports repro.cli — the CLI is the outermost "
                            "shell and nothing may depend on it",
                            hint="move the shared logic out of repro.cli "
                            "into the package that owns it",
                        )
                    )
                continue
            if own_layer is None or target_package == own:
                continue
            if target_package in CROSS_CUTTING_PACKAGES:
                continue
            target_layer = ARCH_LAYERS.get(target_package)
            if target_layer is None or target_layer <= own_layer:
                continue
            key = (own, target_package, edge.line)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                _finding(
                    "ARCH002",
                    label,
                    edge.line,
                    f"layer violation: '{own}' (layer {own_layer}) imports "
                    f"'{target_package}' (layer {target_layer}) — lower "
                    "layers must not depend on upper ones",
                    hint="move the shared definition into the lower layer, "
                    "or invert the dependency (docs/PERFLINT.md)",
                )
            )
    return findings


def analyze_architecture(modules: dict[str, ast.Module]) -> list[LintFinding]:
    """Run the ARCH rules over the whole analyzed tree.

    Args:
        modules: file label -> parsed AST (the engine's parse output).

    Returns:
        Findings sorted by (file, line, code).
    """
    graph = build_import_graph(modules)
    findings = _arch001(graph) + _arch002_003(graph)
    findings.sort(key=lambda f: (f.file, f.line, f.code))
    return findings
