"""Sensitivity analysis — ranking which magnetic couplings matter.

The paper, section 2: *"a sensitivity analysis is carried out to trace those
parts of the circuit which are sensitive to magnetic coupling.  Therefore
magnetic coupling factors between inductances are inserted and their
influence on emitted interference of the whole circuit characterized …
The sensitivity analysis generates a ranking list of the most influencing
coupling factors"* — and only the top of the list needs an (expensive)
field simulation.

Implementation: per candidate inductor pair, a probe coupling ``k_probe``
is inserted, the interference spectrum at the measurement node re-solved,
and the worst-case level change recorded.  The analyser works on *any*
circuit with a designated measurement node, typically a LISN port.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..circuit import Circuit, MnaSystem
from ..obs import get_tracer
from ..parallel import CouplingExecutor

__all__ = ["SensitivityEntry", "SensitivityAnalyzer"]

#: One deferred probe: (circuit, measurement node, freqs [Hz], baseline
#: levels [dBµV], probe coupling [-], inductor_a, inductor_b).
ProbeTask = tuple[Circuit, str, np.ndarray, np.ndarray, float, str, str]


def evaluate_probe_task(task: ProbeTask) -> SensitivityEntry:
    """Run one packed sensitivity probe — the executor's unit of work.

    Module-level so :class:`repro.parallel.CouplingExecutor` can ship it to
    worker processes by name; the baseline is computed once in the parent
    and shipped inside the payload so workers never race on shared state.

    Args:
        task: ``(circuit, measurement_node, freqs, baseline_db, k_probe,
            inductor_a, inductor_b)`` — frequencies [Hz], baseline levels
            [dBµV], probe coupling factor [-].
    """
    circuit, node, freqs, baseline, k_probe, ind_a, ind_b = task
    variant = circuit.clone()
    existing = variant.coupling_value(ind_a, ind_b)
    variant.set_coupling(ind_a, ind_b, existing + k_probe)
    sweep = MnaSystem(variant).ac_sweep(freqs)
    levels = sweep.magnitude_db(node, reference=1e-6)
    delta = np.abs(levels - baseline)
    worst = int(np.argmax(delta))
    return SensitivityEntry(
        inductor_a=ind_a,
        inductor_b=ind_b,
        impact_db=float(delta[worst]),
        worst_freq=float(freqs[worst]),
    )


@dataclass(frozen=True)
class SensitivityEntry:
    """Impact of one probed coupling on the measured interference."""

    inductor_a: str
    inductor_b: str
    impact_db: float
    worst_freq: float

    def pair(self) -> tuple[str, str]:
        """Canonical (sorted) pair key."""
        return tuple(sorted((self.inductor_a, self.inductor_b)))  # type: ignore[return-value]


class SensitivityAnalyzer:
    """Probes coupling factors and ranks their interference impact.

    Args:
        circuit: the system model (sources configured for the EMI run).
        measurement_node: node whose voltage is "the interference".
        freqs: analysis frequencies [Hz] (e.g. switching harmonics).
        k_probe: probe coupling factor inserted pairwise; the paper uses
            values around 0.01–0.1, small enough to stay in the linear
            regime, large enough to rise above numerical noise.
    """

    def __init__(
        self,
        circuit: Circuit,
        measurement_node: str,
        freqs: np.ndarray,
        k_probe: float = 0.01,
    ):
        if k_probe <= 0.0 or k_probe > 1.0:
            raise ValueError("k_probe must be in (0, 1]")
        self.circuit = circuit
        self.measurement_node = measurement_node
        self.freqs = np.asarray(freqs, dtype=float)
        self.k_probe = k_probe
        self._baseline_db: np.ndarray | None = None

    def _levels_db(self, circuit: Circuit) -> np.ndarray:
        sweep = MnaSystem(circuit).ac_sweep(self.freqs)
        return sweep.magnitude_db(self.measurement_node, reference=1e-6)

    def baseline_db(self) -> np.ndarray:
        """Interference levels [dBµV] with the couplings currently in place."""
        if self._baseline_db is None:
            self._baseline_db = self._levels_db(self.circuit)
        return self._baseline_db

    def _probe_task(self, inductor_a: str, inductor_b: str) -> ProbeTask:
        """Pack one probe into a picklable, self-contained task."""
        return (
            self.circuit,
            self.measurement_node,
            self.freqs,
            self.baseline_db(),
            self.k_probe,
            inductor_a,
            inductor_b,
        )

    def probe_pair(self, inductor_a: str, inductor_b: str) -> SensitivityEntry:
        """Impact of adding ``k_probe`` between one inductor pair."""
        get_tracer().count("sensitivity.probes")
        return evaluate_probe_task(self._probe_task(inductor_a, inductor_b))

    def rank(
        self,
        candidate_pairs: list[tuple[str, str]] | None = None,
        executor: CouplingExecutor | None = None,
    ) -> list[SensitivityEntry]:
        """Probe pairs (all inductor pairs by default) and sort by impact.

        Args:
            candidate_pairs: inductor-name pairs to probe; defaults to all
                ``n (n-1) / 2`` combinations.
            executor: optional process fan-out for the probe re-solves —
                each probe is an independent MNA sweep, so they
                parallelise perfectly; results are identical to serial.
        """
        if candidate_pairs is None:
            names = [ind.name for ind in self.circuit.inductors()]
            candidate_pairs = list(combinations(names, 2))
        with get_tracer().span("sensitivity.rank"):
            if executor is not None and executor.is_parallel and len(candidate_pairs) > 1:
                get_tracer().count("sensitivity.probes", len(candidate_pairs))
                tasks = [self._probe_task(a, b) for a, b in candidate_pairs]
                entries = executor.map(evaluate_probe_task, tasks)
            else:
                entries = [self.probe_pair(a, b) for a, b in candidate_pairs]
        entries.sort(key=lambda e: e.impact_db, reverse=True)
        return entries

    def relevant_pairs(
        self,
        threshold_db: float = 3.0,
        candidate_pairs: list[tuple[str, str]] | None = None,
        executor: CouplingExecutor | None = None,
    ) -> list[SensitivityEntry]:
        """The pairs whose probe impact exceeds ``threshold_db``.

        Only these need a field simulation — the paper's complexity
        reduction: *"only the relevant ones have to be simulated in the
        field simulating environment"*.

        Args:
            threshold_db: minimum worst-case level change [dB] to keep.
            candidate_pairs: inductor-name pairs; defaults to all.
            executor: optional process fan-out, see :meth:`rank`.
        """
        return [
            e
            for e in self.rank(candidate_pairs, executor=executor)
            if e.impact_db >= threshold_db
        ]

    def reduction_ratio(
        self, threshold_db: float = 3.0, candidate_pairs: list[tuple[str, str]] | None = None
    ) -> float:
        """Fraction of candidate pairs pruned by the threshold (0..1)."""
        if candidate_pairs is None:
            names = [ind.name for ind in self.circuit.inductors()]
            candidate_pairs = list(combinations(names, 2))
        if not candidate_pairs:
            return 0.0
        kept = len(self.relevant_pairs(threshold_db, candidate_pairs))
        return 1.0 - kept / len(candidate_pairs)
