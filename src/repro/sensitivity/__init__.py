"""Sensitivity analysis: which magnetic couplings influence the emissions.

Reduces the quadratic number of candidate couplings to the short list that
actually needs field simulation — the paper's key complexity lever.
"""

from .analysis import SensitivityAnalyzer, SensitivityEntry

__all__ = ["SensitivityAnalyzer", "SensitivityEntry"]
