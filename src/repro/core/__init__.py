"""The paper's methodology as a single orchestrating object."""

from .flow import EmiDesignFlow, LayoutEvaluation
from .report import flow_report

__all__ = ["EmiDesignFlow", "LayoutEvaluation", "flow_report"]
