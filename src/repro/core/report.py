"""Markdown report of a complete EMI design-flow run.

Collects every stage of :class:`repro.core.EmiDesignFlow` into one
human-readable document: sensitivity ranking, derived rules, the layout
comparison with per-band levels, and the compliance verdicts — the
artefact an engineer would attach to a design review.
"""

from __future__ import annotations

import numpy as np

from ..emi import CISPR25_CLASS3_PEAK
from .flow import EmiDesignFlow, LayoutEvaluation

__all__ = ["flow_report"]

_BANDS = [
    ("LW 150-300 kHz", 150e3, 300e3),
    ("MW 0.53-1.8 MHz", 530e3, 1.8e6),
    ("SW 5.9-6.2 MHz", 5.9e6, 6.2e6),
    ("CB 26-28 MHz", 26e6, 28e6),
    ("VHF 30-54 MHz", 30e6, 54e6),
    ("FM 87-108 MHz", 87e6, 108e6),
]


def _sensitivity_section(flow: EmiDesignFlow) -> list[str]:
    lines = ["## Sensitivity analysis", ""]
    ranking = flow.run_sensitivity()
    relevant = flow.relevant_pairs()
    lines.append(
        f"{len(ranking)} candidate coupling pairs probed at k = "
        f"{flow.k_threshold}; {len(relevant)} exceed the "
        f"{flow.sensitivity_threshold_db} dB relevance threshold."
    )
    lines.append("")
    lines.append("| rank | coupling pair | impact dB | worst at |")
    lines.append("|---|---|---|---|")
    for i, entry in enumerate(ranking[:10], start=1):
        lines.append(
            f"| {i} | {entry.inductor_a} x {entry.inductor_b} "
            f"| {entry.impact_db:.1f} | {entry.worst_freq / 1e6:.2f} MHz |"
        )
    return lines


def _rules_section(flow: EmiDesignFlow) -> list[str]:
    lines = ["## Derived minimum-distance rules", ""]
    lines.append("| pair | PEMD mm | rotation-proof residual |")
    lines.append("|---|---|---|")
    for rule in flow.derive_rules():
        lines.append(
            f"| {rule.ref_a}-{rule.ref_b} | {rule.pemd * 1e3:.1f} "
            f"| {rule.residual:.2f} |"
        )
    return lines


def _evaluation_section(
    name: str, evaluation: LayoutEvaluation
) -> list[str]:
    lines = [f"### Layout: {name}", ""]
    lines.append(
        f"- min-distance violations: **{evaluation.violations}**"
    )
    lines.append(
        f"- CISPR 25 class-3 worst margin: **{evaluation.worst_margin_db:+.1f} dB** "
        f"({'PASS' if evaluation.passes_limits() else 'FAIL'})"
    )
    strongest = sorted(
        evaluation.couplings.items(), key=lambda kv: -abs(kv[1])
    )[:5]
    pairs = ", ".join(f"{a}-{b} ({k:+.3f})" for (a, b), k in strongest)
    lines.append(f"- strongest measured couplings: {pairs}")
    lines.append("")
    lines.append("| band | max level dBuV | limit dBuV |")
    lines.append("|---|---|---|")
    for label, lo, hi in _BANDS:
        level = evaluation.spectrum.max_dbuv_in(lo, hi)
        limit = CISPR25_CLASS3_PEAK.level_at((lo + hi) / 2.0)
        level_text = f"{level:.1f}" if np.isfinite(level) else "-"
        lines.append(f"| {label} | {level_text} | {limit if limit else '-'} |")
    return lines


def flow_report(
    flow: EmiDesignFlow, evaluations: dict[str, LayoutEvaluation] | None = None
) -> str:
    """Render the whole flow as a Markdown document.

    Args:
        flow: the design flow (sensitivity/rules computed on demand).
        evaluations: named layout evaluations; defaults to the standard
            baseline-versus-optimised comparison.
    """
    if evaluations is None:
        evaluations = flow.compare_layouts()
    design = flow.design
    lines = [
        "# EMI design-flow report",
        "",
        f"Converter: {design.input_voltage:.0f} V -> "
        f"{design.output_voltage:.0f} V @ {design.output_current:.1f} A, "
        f"f_sw = {design.switching_frequency / 1e3:.0f} kHz, "
        f"board {design.board_width * 1e3:.0f} x "
        f"{design.board_height * 1e3:.0f} mm",
        "",
    ]
    lines += _sensitivity_section(flow)
    lines.append("")
    lines += _rules_section(flow)
    lines.append("")
    lines.append("## Layout comparison")
    lines.append("")
    for name, evaluation in evaluations.items():
        lines += _evaluation_section(name, evaluation)
        lines.append("")

    if len(evaluations) == 2:
        items = list(evaluations.values())
        delta = items[0].spectrum.dbuv() - items[1].spectrum.dbuv()
        lines.append(
            f"Peak spectral difference between the layouts: "
            f"**{float(np.max(np.abs(delta))):.1f} dB** — placement alone, "
            "same bill of materials."
        )
    return "\n".join(lines) + "\n"
