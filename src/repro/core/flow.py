"""The end-to-end EMI design flow — the paper's methodology as one object.

The chain (sections 2-5 of the paper):

1. **system simulation** of the converter with parasitics (no couplings);
2. **sensitivity analysis**: probe coupling factors pairwise, rank their
   influence on the LISN interference, keep the relevant pairs;
3. **design-rule derivation**: per relevant pair, sweep coupling versus
   distance with the PEEC engine, fit, invert at the tolerable coupling
   level -> pairwise minimum distances PEMD;
4. **placement**: run the automatic placer under those rules (and the
   EMI-unaware baseline for comparison);
5. **verification**: field-simulate the placed pairs, insert the couplings
   into the circuit, predict the spectrum, check against CISPR 25.

:class:`EmiDesignFlow` runs any prefix of that chain and caches shared
artefacts, so the benchmarks (one per paper figure) stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from pathlib import Path

import numpy as np

from ..check import CheckReport, DesignCheckError, run_checks
from ..converters import (
    COUPLING_BRANCHES,
    BuckConverterDesign,
    layout_couplings,
    synthesize_measurement,
)
from ..coupling import CacheStats, CouplingDatabase
from ..emi import CISPR25_CLASS3_PEAK, EmiReceiver, LimitLine, Spectrum
from ..obs import get_tracer
from ..parallel import CouplingExecutor, PersistentCouplingCache
from ..placement import (
    AutoPlacer,
    BaselinePlacer,
    DesignRuleChecker,
    PlacementProblem,
    PlacementReport,
)
from ..rules import MinDistanceRule, RuleSet, derive_rule_set
from ..sensitivity import SensitivityAnalyzer, SensitivityEntry

__all__ = ["LayoutEvaluation", "EmiDesignFlow"]


@dataclass
class LayoutEvaluation:
    """Verification artefacts for one concrete layout."""

    name: str
    problem: PlacementProblem
    couplings: dict[tuple[str, str], float]
    spectrum: Spectrum
    violations: int
    worst_margin_db: float

    def passes_limits(self) -> bool:
        """CISPR compliance of the predicted spectrum."""
        return self.worst_margin_db >= 0.0


@dataclass
class EmiDesignFlow:
    """Orchestrates prediction, sensitivity, rules, placement, verification.

    Attributes:
        design: the converter under design.
        k_threshold: tolerable coupling factor for rule derivation (the
            paper notes k = 0.1 already severely degrades a pi filter;
            the default leaves a 10x margin below that).
        sensitivity_threshold_db: minimum probe impact for a pair to count
            as relevant.
        limit: CISPR limit line used in verification.
        precheck: when True, statically validate the design (circuit and
            placement problem, see :mod:`repro.check`) before the first
            solve and refuse to run on error-level diagnostics.
        workers: worker processes for the coupling/sensitivity fan-out
            (1 = serial; results are identical either way, see
            docs/PERFORMANCE.md).
        cache_dir: when set, attach a persistent on-disk coupling cache
            rooted here; ``None`` keeps the flow memory-only.
    """

    design: BuckConverterDesign
    k_threshold: float = 0.01
    sensitivity_threshold_db: float = 3.0
    limit: LimitLine = field(default_factory=lambda: CISPR25_CLASS3_PEAK)
    ground_plane_z: float | None = None
    precheck: bool = False
    workers: int = 1
    cache_dir: str | Path | None = None
    _sensitivity: list[SensitivityEntry] | None = field(default=None, init=False)
    _rules: list[MinDistanceRule] | None = field(default=None, init=False)
    _db: CouplingDatabase = field(default_factory=CouplingDatabase, init=False)
    _precheck_report: CheckReport | None = field(default=None, init=False)
    _executor: CouplingExecutor | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self._db.ground_plane_z = self.ground_plane_z
        if self.cache_dir is not None:
            self._db.persistent = PersistentCouplingCache(cache_dir=self.cache_dir)

    @property
    def executor(self) -> CouplingExecutor:
        """The flow's shared (lazily created) coupling executor."""
        if self._executor is None:
            self._executor = CouplingExecutor(workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Release the worker pool (safe to call repeatedly)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    @property
    def coupling_stats(self) -> CacheStats:
        """Cache accounting of the flow's shared coupling database."""
        return self._db.stats

    # -- step 0: static validation (opt-in) ---------------------------------

    def run_precheck(self) -> CheckReport:
        """Statically validate the design without solving (cached).

        Lints the EMI circuit and the bare placement problem through
        :func:`repro.check.run_checks`.  Called automatically before the
        first solve when ``precheck=True``.

        Raises:
            DesignCheckError: on any error-level diagnostic.
        """
        if self._precheck_report is None:
            tracer = get_tracer()
            with tracer.stage("check"), tracer.span("flow.precheck"):
                circuit, _meas = self.design.emi_circuit()
                self._precheck_report = run_checks(
                    problem=self.design.placement_problem(),
                    circuit=circuit,
                    subject=type(self.design).__name__,
                )
        if self._precheck_report.errors():
            raise DesignCheckError(self._precheck_report)
        return self._precheck_report

    def _gate(self) -> None:
        if self.precheck:
            self.run_precheck()

    # -- step 1: prediction -------------------------------------------------

    def predict(
        self, couplings: dict[tuple[str, str], float] | None = None
    ) -> Spectrum:
        """Interference spectrum with optional layout couplings."""
        self._gate()
        tracer = get_tracer()
        with tracer.stage("prediction"), tracer.span("flow.simulate"):
            return self.design.emission_spectrum(couplings)

    # -- step 2: sensitivity --------------------------------------------------

    def sensitivity_frequencies(self) -> np.ndarray:
        """Decimated harmonic grid for the (many) sensitivity solves."""
        harmonics = self.design.harmonic_frequencies()
        return harmonics[:: max(1, len(harmonics) // 40)]

    def run_sensitivity(self) -> list[SensitivityEntry]:
        """Rank all coupling-branch pairs by interference impact (cached)."""
        self._gate()
        if self._sensitivity is None:
            tracer = get_tracer()
            with tracer.stage("sensitivity"), tracer.span("flow.sensitivity"):
                circuit, meas = self.design.emi_circuit()
                analyzer = SensitivityAnalyzer(
                    circuit,
                    meas,
                    self.sensitivity_frequencies(),
                    k_probe=self.k_threshold,
                )
                pairs = list(combinations(sorted(COUPLING_BRANCHES), 2))
                self._sensitivity = analyzer.rank(
                    pairs, executor=self.executor if self.workers > 1 else None
                )
            tracer.gauge("flow.pairs_ranked", len(self._sensitivity))
        return self._sensitivity

    def relevant_pairs(self) -> list[SensitivityEntry]:
        """The pairs above the sensitivity threshold."""
        return [
            e
            for e in self.run_sensitivity()
            if e.impact_db >= self.sensitivity_threshold_db
        ]

    # -- step 3: rules -----------------------------------------------------------

    def derive_rules(self) -> list[MinDistanceRule]:
        """PEMD rules for every relevant pair (cached)."""
        if self._rules is None:
            relevant = self.relevant_pairs()
            tracer = get_tracer()
            with tracer.stage("rules"), tracer.span("flow.rules"):
                self._rules = derive_rule_set(
                    self.design.parts(),
                    relevant,
                    COUPLING_BRANCHES,
                    k_threshold_db_map=self.k_threshold,
                    ground_plane_z=self.ground_plane_z,
                    executor=self.executor if self.workers > 1 else None,
                    database=self._db,
                )
            tracer.gauge("flow.pairs_relevant", len(relevant))
            tracer.gauge("flow.rules_derived", len(self._rules))
        return self._rules

    def problem_with_rules(self) -> PlacementProblem:
        """A fresh placement problem carrying the derived rule set."""
        problem = self.design.placement_problem()
        problem.rules = RuleSet(min_distance=list(self.derive_rules()))
        return problem

    # -- step 4: placement ----------------------------------------------------------

    def place_baseline(self) -> tuple[PlacementProblem, PlacementReport]:
        """EMI-unaware compact layout (the paper's Fig. 1 situation)."""
        self._gate()
        problem = self.problem_with_rules()
        tracer = get_tracer()
        with tracer.stage("placement", {"layout": "baseline"}), tracer.span(
            "flow.placement"
        ):
            report = BaselinePlacer(problem).run()
        return problem, report

    def place_optimized(self) -> tuple[PlacementProblem, PlacementReport]:
        """EMI-aware automatic layout (the paper's Fig. 2 / Fig. 16)."""
        self._gate()
        problem = self.problem_with_rules()
        tracer = get_tracer()
        with tracer.stage("placement", {"layout": "optimized"}), tracer.span(
            "flow.placement"
        ):
            report = AutoPlacer(problem).run()
        return problem, report

    # -- step 5: verification -----------------------------------------------------

    def evaluate(self, name: str, problem: PlacementProblem) -> LayoutEvaluation:
        """Field-simulate a layout, predict its spectrum, check limits."""
        tracer = get_tracer()
        with tracer.stage("verification", {"layout": name}), tracer.span(
            "flow.verification"
        ):
            couplings = layout_couplings(
                problem,
                refdes_of_interest=list(COUPLING_BRANCHES.values()),
                ground_plane_z=self.ground_plane_z,
                database=self._db,
                executor=self.executor if self.workers > 1 else None,
            )
            spectrum = self.predict(couplings)
            checker = DesignRuleChecker(problem)
            violations = len(checker.check_min_distances())
            margin = self.limit.worst_margin_db(spectrum)
        tracer.gauge(f"flow.worst_margin_db.{name}", margin)
        return LayoutEvaluation(
            name=name,
            problem=problem,
            couplings=couplings,
            spectrum=spectrum,
            violations=violations,
            worst_margin_db=margin,
        )

    def measurement_for(
        self, evaluation: LayoutEvaluation, seed: int = 2008
    ) -> Spectrum:
        """The synthetic bench measurement for a layout (see DESIGN.md)."""
        return synthesize_measurement(self.design, evaluation.couplings, seed=seed)

    def receiver_trace(self, spectrum: Spectrum, points: int = 160) -> Spectrum:
        """Display-binned receiver trace of a line spectrum."""
        receiver = EmiReceiver("peak", noise_floor_dbuv=5.0)
        grid = receiver.standard_grid(points=points)
        return receiver.display_trace(spectrum, grid)

    # -- headline comparison -------------------------------------------------------

    def compare_layouts(self) -> dict[str, LayoutEvaluation]:
        """Baseline versus optimised — the Fig. 1 / Fig. 2 experiment."""
        baseline_problem, _ = self.place_baseline()
        optimized_problem, _ = self.place_optimized()
        return {
            "baseline": self.evaluate("baseline", baseline_problem),
            "optimized": self.evaluate("optimized", optimized_problem),
        }
