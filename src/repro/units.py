"""Unit vocabulary — ``Annotated`` aliases that carry physical dimensions.

The EMI flow mixes quantities whose magnitudes differ by nine orders
(metres vs millimetres on boards, henries vs nanohenries in parasitics,
hertz vs rad/s in sweeps).  Python's type system cannot stop a caller from
feeding millimetres into a metre-valued API — but a *static analyzer* can,
if the APIs say what they expect.  This module is the single source of
truth for that vocabulary:

* the unit aliases (:data:`Meters`, :data:`Henries`, ...) are plain
  ``Annotated[float, Unit(...)]`` types: zero runtime cost, ``float`` to
  mypy, and a machine-readable dimension tag for ``repro.lint`` (the
  "physlint" analyzer, see ``docs/PHYSLINT.md``);
* :data:`UNIT_ALIASES` maps alias *names* to their :class:`Unit` so the
  analyzer can resolve annotations syntactically (``x: Meters`` works in
  any module without import tracking);
* :func:`approx_zero` / :func:`same_float` are the sanctioned ways to
  compare computed floats — physlint rule NUM001 flags raw ``==``/``!=``.

Annotation conventions for contributors (enforced by ``repro-emi
lint-src``): public physics APIs annotate every float parameter and
return that has a dimension; base-SI aliases (``Meters``, not
``Millimeters``) are the default at API boundaries; scaled aliases exist
so that the *rare* non-SI interface (CLI millimetre flags, nanohenry
tables) is visible to the analyzer instead of being a silent factor of
1e-3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Annotated, TypeAlias

__all__ = [
    "Unit",
    "Meters",
    "Millimeters",
    "Henries",
    "NanoHenries",
    "Farads",
    "Ohms",
    "Hertz",
    "RadPerSec",
    "Tesla",
    "Seconds",
    "Radians",
    "Degrees",
    "Volts",
    "Amperes",
    "Dimensionless",
    "UNIT_ALIASES",
    "approx_zero",
    "same_float",
]


@dataclass(frozen=True)
class Unit:
    """Dimension tag carried inside an ``Annotated`` unit alias.

    Attributes:
        dimension: name of the physical dimension ("length", "inductance",
            ...).  Two aliases with the same dimension but different scales
            (``Meters`` / ``Millimeters``) are *convertible but not
            mixable* — adding or comparing them is a physlint error.
        scale: factor to the dimension's base SI unit (``Millimeters`` has
            ``scale=1e-3``).
        symbol: short human symbol used in diagnostics ("m", "nH").
    """

    dimension: str
    scale: float
    symbol: str


# -- the alias vocabulary ---------------------------------------------------

Meters: TypeAlias = Annotated[float, Unit("length", 1.0, "m")]
Millimeters: TypeAlias = Annotated[float, Unit("length", 1e-3, "mm")]
Henries: TypeAlias = Annotated[float, Unit("inductance", 1.0, "H")]
NanoHenries: TypeAlias = Annotated[float, Unit("inductance", 1e-9, "nH")]
Farads: TypeAlias = Annotated[float, Unit("capacitance", 1.0, "F")]
Ohms: TypeAlias = Annotated[float, Unit("resistance", 1.0, "ohm")]
Hertz: TypeAlias = Annotated[float, Unit("frequency", 1.0, "Hz")]
RadPerSec: TypeAlias = Annotated[float, Unit("angular-frequency", 1.0, "rad/s")]
Tesla: TypeAlias = Annotated[float, Unit("flux-density", 1.0, "T")]
Seconds: TypeAlias = Annotated[float, Unit("time", 1.0, "s")]
Radians: TypeAlias = Annotated[float, Unit("angle", 1.0, "rad")]
Degrees: TypeAlias = Annotated[float, Unit("angle", math.pi / 180.0, "deg")]
Volts: TypeAlias = Annotated[float, Unit("voltage", 1.0, "V")]
Amperes: TypeAlias = Annotated[float, Unit("current", 1.0, "A")]
#: Explicitly unitless quantities (coupling factors k, residuals, ratios).
Dimensionless: TypeAlias = Annotated[float, Unit("dimensionless", 1.0, "")]

#: Alias name -> unit tag; the analyzer's annotation-resolution table.
UNIT_ALIASES: dict[str, Unit] = {
    "Meters": Unit("length", 1.0, "m"),
    "Millimeters": Unit("length", 1e-3, "mm"),
    "Henries": Unit("inductance", 1.0, "H"),
    "NanoHenries": Unit("inductance", 1e-9, "nH"),
    "Farads": Unit("capacitance", 1.0, "F"),
    "Ohms": Unit("resistance", 1.0, "ohm"),
    "Hertz": Unit("frequency", 1.0, "Hz"),
    "RadPerSec": Unit("angular-frequency", 1.0, "rad/s"),
    "Tesla": Unit("flux-density", 1.0, "T"),
    "Seconds": Unit("time", 1.0, "s"),
    "Radians": Unit("angle", 1.0, "rad"),
    "Degrees": Unit("angle", math.pi / 180.0, "deg"),
    "Volts": Unit("voltage", 1.0, "V"),
    "Amperes": Unit("current", 1.0, "A"),
    "Dimensionless": Unit("dimensionless", 1.0, ""),
}


# -- sanctioned float comparisons ------------------------------------------

#: Default absolute tolerance of :func:`approx_zero`.  1e-15 sits far
#: below every physical magnitude in the flow (the smallest are stray
#: inductances around 1e-12 H) yet far above accumulated rounding noise.
APPROX_ZERO_TOL = 1e-15


def approx_zero(value: float, tol: float = APPROX_ZERO_TOL) -> bool:
    """Whether a computed float is zero within an absolute tolerance.

    ``math.isclose(x, 0.0)`` degenerates to an exact test (relative
    tolerance against zero is zero), which is why raw ``== 0.0`` checks
    creep in; this helper is the explicit replacement physlint's NUM001
    rule points to.

    Args:
        value: the quantity to test (any unit; the tolerance is absolute).
        tol: absolute tolerance, must be non-negative.
    """
    if tol < 0.0:
        raise ValueError("tolerance must be non-negative")
    return abs(value) <= tol


def same_float(a: float, b: float, rel_tol: float = 1e-9, abs_tol: float = APPROX_ZERO_TOL) -> bool:
    """Tolerant float equality: ``math.isclose`` with a nonzero ``abs_tol``.

    The nonzero absolute floor makes the test meaningful when one operand
    is exactly zero (where ``math.isclose`` defaults to an exact compare).
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
