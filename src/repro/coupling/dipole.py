"""Magnetic-dipole approximation of component coupling.

Far from a component (distance large against its loop size) its stray field
is that of a point dipole with the moment-per-ampere the current path
reports.  The dipole-dipole mutual inductance

``M = (mu0 / 4 pi d^3) * (3 (ma.e)(mb.e) - ma.mb)``

(with ``e`` the unit separation vector and ``m`` the vector moments per
ampere) gives a closed-form coupling estimate that is orders of magnitude
cheaper than the filament double sum — the placer's candidate scoring uses
it, and it doubles as a far-field cross-check of the PEEC numbers.
"""

from __future__ import annotations

import math

from ..components import Component
from ..geometry import Placement2D
from ..peec import MU0

__all__ = ["dipole_mutual_inductance", "dipole_coupling_factor"]


def dipole_mutual_inductance(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
) -> float:
    """Dipole-approximated mutual inductance [H] (signed).

    Uses each component's moment-per-ampere (including turns) and applies
    the same effective-permeability scaling as the full computation.
    """
    ta = placement_a.to_transform3d()
    tb = placement_b.to_transform3d()
    path_a = comp_a.current_path
    path_b = comp_b.current_path
    m_a = ta.apply_direction(path_a.magnetic_moment())
    m_b = tb.apply_direction(path_b.magnetic_moment())
    c_a = ta.apply(path_a.centroid())
    c_b = tb.apply(path_b.centroid())

    sep = c_b - c_a
    d = sep.norm()
    if d < 1e-9:
        raise ValueError("components coincide; dipole model undefined")
    e = sep / d
    dot_term = 3.0 * m_a.dot(e) * m_b.dot(e) - m_a.dot(m_b)
    m_air = MU0 / (4.0 * math.pi * d**3) * dot_term
    scale = math.sqrt(
        comp_a.mu_eff * comp_a.core.stray_fraction * comp_b.mu_eff * comp_b.core.stray_fraction
    )
    return m_air * scale


def dipole_coupling_factor(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
) -> float:
    """Dipole-approximated coupling factor (signed, clamped to [-1, 1])."""
    m = dipole_mutual_inductance(comp_a, placement_a, comp_b, placement_b)
    k = m / math.sqrt(comp_a.self_inductance * comp_b.self_inductance)
    return max(-1.0, min(1.0, k))
