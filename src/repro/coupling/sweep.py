"""Parameter sweeps of the coupling factor — the paper's Figs. 5–8 engines.

Each sweep varies one placement degree of freedom while holding everything
else fixed:

* :func:`distance_sweep` — centre-to-centre distance at fixed orientations
  (Fig. 5 for capacitors, Fig. 7 for bobbin coils);
* :func:`rotation_sweep` — relative rotation at fixed distance (the Fig. 6
  orthogonality rule and the Fig. 10 cos(alpha) law);
* :func:`angular_position_sweep` — a victim orbiting a source at fixed
  radius (Fig. 8's preferred positions around CM chokes).
"""

from __future__ import annotations

import numpy as np

from ..components import Component
from ..geometry import Placement2D, Vec2
from ..obs import get_tracer
from ..units import Degrees, Meters
from .pair import component_coupling

__all__ = ["distance_sweep", "rotation_sweep", "angular_position_sweep"]


def distance_sweep(
    comp_a: Component,
    comp_b: Component,
    distances: np.ndarray,
    rotation_a_deg: Degrees = 0.0,
    rotation_b_deg: Degrees = 0.0,
    direction_deg: Degrees = 0.0,
    ground_plane_z: Meters | None = None,
) -> np.ndarray:
    """|k| versus centre-to-centre distance.

    Component A sits at the origin; B moves along ``direction_deg``.

    Args:
        distances: centre-to-centre distances [m], strictly positive.

    Returns:
        Unsigned coupling factors, same shape as ``distances``.
    """
    d = np.asarray(distances, dtype=float)
    if np.any(d <= 0.0):
        raise ValueError("distances must be positive")
    tracer = get_tracer()
    with tracer.span("coupling.sweep.distance"):
        tracer.count("coupling.sweep_points", len(d))
        place_a = Placement2D.at(0.0, 0.0, rotation_a_deg)
        direction = Vec2.from_polar(1.0, np.deg2rad(direction_deg))
        out = np.empty_like(d)
        for i, dist in enumerate(d):
            place_b = Placement2D(direction * float(dist), np.deg2rad(rotation_b_deg))
            out[i] = abs(
                component_coupling(comp_a, place_a, comp_b, place_b, ground_plane_z).k
            )
    return out


def rotation_sweep(
    comp_a: Component,
    comp_b: Component,
    distance: Meters,
    angles_deg: np.ndarray,
    rotation_a_deg: Degrees = 0.0,
    ground_plane_z: Meters | None = None,
) -> np.ndarray:
    """Signed k versus the rotation of component B at a fixed distance.

    B sits on the +x axis at ``distance``; its rotation sweeps through
    ``angles_deg``.  The cosine shape of the result is what justifies the
    placer's ``EMD = PEMD * |cos(alpha)|`` reduction.
    """
    if distance <= 0.0:
        raise ValueError("distance must be positive")
    tracer = get_tracer()
    with tracer.span("coupling.sweep.rotation"):
        tracer.count("coupling.sweep_points", len(angles_deg))
        place_a = Placement2D.at(0.0, 0.0, rotation_a_deg)
        out = np.empty(len(angles_deg), dtype=float)
        for i, ang in enumerate(np.asarray(angles_deg, dtype=float)):
            place_b = Placement2D.at(distance, 0.0, float(ang))
            out[i] = component_coupling(
                comp_a, place_a, comp_b, place_b, ground_plane_z
            ).k
    return out


def angular_position_sweep(
    source: Component,
    victim: Component,
    radius: Meters,
    angles_deg: np.ndarray,
    victim_faces_source: bool = True,
    victim_rotation_deg: Degrees = 0.0,
    ground_plane_z: Meters | None = None,
) -> np.ndarray:
    """|k| versus the victim's angular position around a fixed source.

    The source sits at the origin (rotation 0).  The victim orbits at
    ``radius``; with ``victim_faces_source`` its own rotation tracks the
    orbit angle (tangential mounting, the natural board layout around a
    choke), otherwise it keeps ``victim_rotation_deg``.

    The Fig. 8 reproduction runs this for the 2- and 3-winding CM chokes:
    the 2-winding curve has deep decoupled minima, the 3-winding one does
    not.
    """
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    tracer = get_tracer()
    with tracer.span("coupling.sweep.angular_position"):
        tracer.count("coupling.sweep_points", len(angles_deg))
        place_src = Placement2D.at(0.0, 0.0, 0.0)
        out = np.empty(len(angles_deg), dtype=float)
        for i, ang in enumerate(np.asarray(angles_deg, dtype=float)):
            pos = Vec2.from_polar(radius, np.deg2rad(float(ang)))
            rot = float(ang) + 90.0 if victim_faces_source else victim_rotation_deg
            place_vic = Placement2D(pos, np.deg2rad(rot))
            out[i] = abs(
                component_coupling(
                    source, place_src, victim, place_vic, ground_plane_z
                ).k
            )
    return out
