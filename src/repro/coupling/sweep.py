"""Parameter sweeps of the coupling factor — the paper's Figs. 5–8 engines.

Each sweep varies one placement degree of freedom while holding everything
else fixed:

* :func:`distance_sweep` — centre-to-centre distance at fixed orientations
  (Fig. 5 for capacitors, Fig. 7 for bobbin coils);
* :func:`rotation_sweep` — relative rotation at fixed distance (the Fig. 6
  orthogonality rule and the Fig. 10 cos(alpha) law);
* :func:`angular_position_sweep` — a victim orbiting a source at fixed
  radius (Fig. 8's preferred positions around CM chokes).

Every sweep accepts two optional accelerators (see docs/PERFORMANCE.md):
an ``executor`` fans the per-point field simulations out over worker
processes, and a ``database`` answers points from its cache tiers first
and stores fresh solves for the next run.  Results are identical to the
serial, uncached evaluation in every combination.
"""

from __future__ import annotations

import numpy as np

from ..components import Component
from ..geometry import Placement2D, Vec2
from ..obs import get_tracer
from ..parallel import CouplingExecutor
from ..units import Degrees, Meters
from .database import CouplingDatabase
from .pair import CouplingResult, CouplingTask, evaluate_coupling_task

__all__ = ["distance_sweep", "rotation_sweep", "angular_position_sweep"]

#: Default Gauss–Legendre order of the per-point field simulations, kept in
#: lockstep with :func:`repro.coupling.pair.component_coupling`.
_SWEEP_ORDER = 8


def _validated_distances(distances: np.ndarray) -> np.ndarray:
    """Distance grid checked for the silent-NaN failure modes.

    A NaN or infinite entry sails through a plain ``d <= 0`` test (NaN
    compares false) and used to surface only as NaN couplings much later;
    a non-monotonic grid breaks the power-law fits downstream.  Both are
    rejected here with a clear message instead.

    Args:
        distances: centre-to-centre distances [m].

    Raises:
        ValueError: when empty, non-finite, non-positive or not strictly
            increasing.
    """
    d = np.atleast_1d(np.asarray(distances, dtype=float))
    if d.size == 0:
        raise ValueError("distances must not be empty")
    if not np.all(np.isfinite(d)):
        raise ValueError("distances must be finite (got NaN or infinity)")
    if np.any(d <= 0.0):
        raise ValueError("distances must be strictly positive")
    if d.size > 1 and not np.all(np.diff(d) > 0.0):
        raise ValueError("distances must be strictly increasing")
    return d


def _validated_scalar(value: float, name: str) -> float:
    """A strictly positive, finite scalar length [m], or ValueError."""
    v = float(value)
    if not np.isfinite(v) or v <= 0.0:
        raise ValueError(f"{name} must be finite and positive, got {value!r}")
    return v


def _validated_angles(angles_deg: np.ndarray) -> np.ndarray:
    """A finite angle grid [deg], or ValueError (NaN angles → NaN k)."""
    a = np.atleast_1d(np.asarray(angles_deg, dtype=float))
    if a.size == 0:
        raise ValueError("angles must not be empty")
    if not np.all(np.isfinite(a)):
        raise ValueError("angles must be finite (got NaN or infinity)")
    return a


def _signed_couplings(
    comp_a: Component,
    place_a: Placement2D,
    comp_b: Component,
    placements_b: list[Placement2D],
    ground_plane_z: Meters | None,
    executor: CouplingExecutor | None,
    database: CouplingDatabase | None,
) -> np.ndarray:
    """Signed k for component B at each placement, accelerated if asked.

    The single evaluation engine behind all three sweeps: cache lookups
    through ``database`` (when given), misses computed via ``executor``
    (when parallel) or inline, results returned in placement order.
    """
    if database is not None:
        if ground_plane_z is not None:
            database.ground_plane_z = ground_plane_z
        ground_plane_z = database.ground_plane_z
        order = database.order
    else:
        order = _SWEEP_ORDER

    if database is not None:
        results: list[CouplingResult | None] = [
            database.peek(comp_a, place_a, comp_b, place_b)
            for place_b in placements_b
        ]
        pending = [i for i, hit in enumerate(results) if hit is None]
    else:
        results = [None] * len(placements_b)
        pending = list(range(len(placements_b)))

    if pending:
        tasks: list[CouplingTask] = [
            (comp_a, place_a, comp_b, placements_b[i], ground_plane_z, order)
            for i in pending
        ]
        tracer = get_tracer()
        if database is not None:
            database.misses += len(pending)
            tracer.count("coupling.cache_misses", len(pending))
        if executor is not None and executor.is_parallel and len(tasks) > 1:
            with tracer.span("coupling.field_solve"):
                computed = executor.map(evaluate_coupling_task, tasks)
        else:

            def _solve(task: CouplingTask) -> CouplingResult:
                with tracer.span("coupling.field_solve"):
                    return evaluate_coupling_task(task)

            computed = [_solve(task) for task in tasks]
        for i, result in zip(pending, computed, strict=True):
            if database is not None:
                result = database.store(
                    comp_a, place_a, comp_b, placements_b[i], result
                )
            results[i] = result
    return np.array([r.k for r in results])  # type: ignore[union-attr]


def distance_sweep(
    comp_a: Component,
    comp_b: Component,
    distances: np.ndarray,
    rotation_a_deg: Degrees = 0.0,
    rotation_b_deg: Degrees = 0.0,
    direction_deg: Degrees = 0.0,
    ground_plane_z: Meters | None = None,
    executor: CouplingExecutor | None = None,
    database: CouplingDatabase | None = None,
) -> np.ndarray:
    """|k| versus centre-to-centre distance.

    Component A sits at the origin; B moves along ``direction_deg``.

    Args:
        comp_a, comp_b: the component pair (local-frame field models).
        distances: centre-to-centre distances [m] — strictly positive,
            finite and strictly increasing (non-finite or unsorted grids
            raise instead of silently producing NaN couplings).
        rotation_a_deg, rotation_b_deg: fixed component rotations [deg].
        direction_deg: bearing of B from A [deg].
        ground_plane_z: optional shielding plane height [m].
        executor: optional process fan-out for the field simulations.
        database: optional cache tiers consulted/filled per point.

    Returns:
        Unsigned coupling factors, same shape as ``distances``.
    """
    d = _validated_distances(distances)
    tracer = get_tracer()
    with tracer.span("coupling.sweep.distance"):
        tracer.count("coupling.sweep_points", len(d))
        place_a = Placement2D.at(0.0, 0.0, rotation_a_deg)
        direction = Vec2.from_polar(1.0, np.deg2rad(direction_deg))
        placements_b = [
            Placement2D(direction * float(dist), np.deg2rad(rotation_b_deg))
            for dist in d
        ]
        out = np.abs(
            _signed_couplings(
                comp_a, place_a, comp_b, placements_b, ground_plane_z, executor, database
            )
        )
    return out


def rotation_sweep(
    comp_a: Component,
    comp_b: Component,
    distance: Meters,
    angles_deg: np.ndarray,
    rotation_a_deg: Degrees = 0.0,
    ground_plane_z: Meters | None = None,
    executor: CouplingExecutor | None = None,
    database: CouplingDatabase | None = None,
) -> np.ndarray:
    """Signed k versus the rotation of component B at a fixed distance.

    B sits on the +x axis at ``distance``; its rotation sweeps through
    ``angles_deg``.  The cosine shape of the result is what justifies the
    placer's ``EMD = PEMD * |cos(alpha)|`` reduction.

    Args:
        comp_a, comp_b: the component pair (local-frame field models).
        distance: fixed centre-to-centre distance [m], finite and positive.
        angles_deg: rotations of B to evaluate [deg], finite.
        rotation_a_deg: fixed rotation of A [deg].
        ground_plane_z: optional shielding plane height [m].
        executor: optional process fan-out for the field simulations.
        database: optional cache tiers consulted/filled per point.
    """
    dist = _validated_scalar(distance, "distance")
    angles = _validated_angles(angles_deg)
    tracer = get_tracer()
    with tracer.span("coupling.sweep.rotation"):
        tracer.count("coupling.sweep_points", len(angles))
        place_a = Placement2D.at(0.0, 0.0, rotation_a_deg)
        placements_b = [Placement2D.at(dist, 0.0, float(ang)) for ang in angles]
        out = _signed_couplings(
            comp_a, place_a, comp_b, placements_b, ground_plane_z, executor, database
        )
    return out


def angular_position_sweep(
    source: Component,
    victim: Component,
    radius: Meters,
    angles_deg: np.ndarray,
    victim_faces_source: bool = True,
    victim_rotation_deg: Degrees = 0.0,
    ground_plane_z: Meters | None = None,
    executor: CouplingExecutor | None = None,
    database: CouplingDatabase | None = None,
) -> np.ndarray:
    """|k| versus the victim's angular position around a fixed source.

    The source sits at the origin (rotation 0).  The victim orbits at
    ``radius``; with ``victim_faces_source`` its own rotation tracks the
    orbit angle (tangential mounting, the natural board layout around a
    choke), otherwise it keeps ``victim_rotation_deg``.

    The Fig. 8 reproduction runs this for the 2- and 3-winding CM chokes:
    the 2-winding curve has deep decoupled minima, the 3-winding one does
    not.

    Args:
        source, victim: the component pair (local-frame field models).
        radius: orbit radius [m], finite and strictly positive (a NaN
            radius used to propagate into NaN couplings; it raises now).
        angles_deg: orbit angles to evaluate [deg], finite.
        victim_faces_source: tie the victim rotation to the orbit angle.
        victim_rotation_deg: fixed victim rotation [deg] when not facing.
        ground_plane_z: optional shielding plane height [m].
        executor: optional process fan-out for the field simulations.
        database: optional cache tiers consulted/filled per point.
    """
    r = _validated_scalar(radius, "radius")
    angles = _validated_angles(angles_deg)
    tracer = get_tracer()
    with tracer.span("coupling.sweep.angular_position"):
        tracer.count("coupling.sweep_points", len(angles))
        place_src = Placement2D.at(0.0, 0.0, 0.0)
        placements_vic = []
        for ang in angles:
            pos = Vec2.from_polar(r, np.deg2rad(float(ang)))
            rot = float(ang) + 90.0 if victim_faces_source else victim_rotation_deg
            placements_vic.append(Placement2D(pos, np.deg2rad(rot)))
        out = np.abs(
            _signed_couplings(
                source, place_src, victim, placements_vic, ground_plane_z, executor, database
            )
        )
    return out
