"""Phase-resolved coupling to multi-winding chokes — the Fig. 8 analysis.

The paper's observation: *"the two winding design offers preferred
placements for capacitors … while the three winding design generates almost
rotating stray fields and therefore no decoupled position for adjacent
components can be found."*

The physics: each winding ``w`` of the choke carries a current with its own
phase ``exp(j phi_w)``.  The victim's induced voltage is linear in its own
orientation angle ``alpha``::

    M(alpha) = A cos(alpha) + B sin(alpha),   A, B complex

where ``A`` and ``B`` sum the per-winding mutuals with their phases.  If
the windings are co-phased (single-phase CM or DM pair) the field is
*linearly polarised* — ``A`` and ``B`` share a phase, the victim can always
rotate into a null.  Three-phase excitation makes the field *elliptically
polarised*: the residual minimum over ``alpha`` equals the ellipse's minor
axis, computed here as the smallest singular value of ``[[Re A, Re B],
[Im A, Im B]]``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

import numpy as np

from ..components import Capacitor, CommonModeChoke
from ..geometry import Placement2D, Vec2
from ..peec import loop_self_inductance, mutual_inductance_paths_fast

__all__ = ["PolarizedCoupling", "polarized_coupling", "decoupling_sweep"]


@dataclass(frozen=True)
class PolarizedCoupling:
    """Orientation-resolved coupling of a victim at one position.

    Attributes:
        k_max: coupling factor at the worst victim orientation.
        k_min: coupling factor at the best orientation — 0 for linear
            polarisation, > 0 for a rotating field.
        best_angle_deg: victim rotation achieving ``k_min``.
    """

    k_max: float
    k_min: float
    best_angle_deg: float

    @property
    def decouplable(self) -> bool:
        """Whether a rotation exists that (practically) decouples the victim."""
        return self.k_min < 0.05 * max(self.k_max, 1e-12)


def _winding_phases(choke: CommonModeChoke, excitation: str) -> list[complex]:
    if excitation == "common":
        return [1.0 + 0.0j] * choke.n_windings
    if excitation == "phase":
        return [
            cmath.exp(2j * math.pi * w / choke.n_windings) for w in range(choke.n_windings)
        ]
    raise ValueError("excitation must be 'common' or 'phase'")


def polarized_coupling(
    choke: CommonModeChoke,
    choke_placement: Placement2D,
    victim: Capacitor,
    victim_placement: Placement2D,
    excitation: str = "phase",
    order: int = 8,
) -> PolarizedCoupling:
    """Min/max coupling over the victim's in-plane rotation.

    ``excitation='common'`` drives all windings in phase (single-phase CM
    current); ``'phase'`` applies the symmetric multi-phase set — identical
    to 'common' for anything the victim sees only when n_windings == 1.
    """
    phases = _winding_phases(choke, excitation)
    transform = choke_placement.to_transform3d()

    # Victim mutuals at 0 and 90 degrees span the orientation dependence.
    base_rot = victim_placement.rotation_rad
    v0 = victim.current_path.transformed(victim_placement.to_transform3d())
    v90 = victim.current_path.transformed(
        victim_placement.rotated_to(base_rot + math.pi / 2.0).to_transform3d()
    )

    a = 0.0 + 0.0j
    b = 0.0 + 0.0j
    for w, phase in enumerate(phases):
        wp = choke.winding_path(w).transformed(transform)
        a += phase * mutual_inductance_paths_fast(wp, v0, order)
        b += phase * mutual_inductance_paths_fast(wp, v90, order)

    scale = math.sqrt(
        choke.mu_eff * choke.core.stray_fraction * victim.mu_eff * victim.core.stray_fraction
    )
    l_choke = loop_self_inductance(choke.current_path) * choke.mu_eff
    l_victim = loop_self_inductance(victim.current_path) * victim.mu_eff
    norm = scale / math.sqrt(l_choke * l_victim)
    a *= norm
    b *= norm

    matrix = np.array([[a.real, b.real], [a.imag, b.imag]])
    singular = np.linalg.svd(matrix, compute_uv=False)
    k_max = float(singular[0])
    k_min = float(singular[-1])

    # Best angle: minimise |A cos + B sin| over alpha (coarse + refine).
    alphas = np.linspace(0.0, math.pi, 181)
    mags = np.abs(a * np.cos(alphas) + b * np.sin(alphas))
    best = float(np.degrees(alphas[int(np.argmin(mags))]))
    return PolarizedCoupling(k_max=k_max, k_min=k_min, best_angle_deg=best)


def decoupling_sweep(
    choke: CommonModeChoke,
    victim: Capacitor,
    radius: float,
    angles_deg: np.ndarray,
    excitation: str = "phase",
) -> tuple[np.ndarray, np.ndarray]:
    """(k_max, k_min) versus the victim's angular position around the choke.

    The Fig. 8 benchmark calls this once for the 2-winding choke (k_min
    collapses to ~0 everywhere: preferred placements exist) and once for
    the 3-winding one (k_min stays finite: no decoupled position).
    """
    place_choke = Placement2D.at(0.0, 0.0, 0.0)
    k_max = np.empty(len(angles_deg))
    k_min = np.empty(len(angles_deg))
    for i, ang in enumerate(np.asarray(angles_deg, dtype=float)):
        pos = Vec2.from_polar(radius, math.radians(float(ang)))
        place_victim = Placement2D(pos, 0.0)
        result = polarized_coupling(
            choke, place_choke, victim, place_victim, excitation
        )
        k_max[i] = result.k_max
        k_min[i] = result.k_min
    return k_max, k_min
