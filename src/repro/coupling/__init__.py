"""Coupling models: placed-pair field simulations, sweeps, fits and caching.

The bridge between the PEEC engine and everything downstream: sensitivity
analysis consumes pairwise coupling factors, the design-rule derivation
consumes fitted k(d) laws, and the placer consumes the cached database.
"""

from .capacitive import (
    CapacitiveResult,
    capacitive_layout_couplings,
    component_capacitance,
)
from .database import CacheStats, CouplingDatabase
from .dipole import dipole_coupling_factor, dipole_mutual_inductance
from .fit import PowerLawFit, fit_power_law
from .polarization import PolarizedCoupling, decoupling_sweep, polarized_coupling
from .pair import CouplingResult, component_coupling, pair_coupling_factor
from .sweep import angular_position_sweep, distance_sweep, rotation_sweep

__all__ = [
    "CouplingResult",
    "CapacitiveResult",
    "component_capacitance",
    "capacitive_layout_couplings",
    "component_coupling",
    "pair_coupling_factor",
    "distance_sweep",
    "rotation_sweep",
    "angular_position_sweep",
    "PowerLawFit",
    "fit_power_law",
    "dipole_coupling_factor",
    "dipole_mutual_inductance",
    "CacheStats",
    "CouplingDatabase",
    "PolarizedCoupling",
    "polarized_coupling",
    "decoupling_sweep",
]
