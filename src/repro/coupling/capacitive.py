"""Capacitive coupling between placed components.

The paper's outlook: *"capacitive coupling gain more influence at higher
frequencies"*.  This module extends the placed-pair analysis with the
electric-field path: each component body is reduced to an equivalent
sphere, and the pairwise mutual capacitance (plus the body-to-ground
capacitance when a plane is present) is computed from the placement.

The resulting capacitances slot into the circuit model as bridging
capacitors between the components' hot nodes — see
:meth:`repro.converters.BuckConverterDesign.apply_capacitive_couplings`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..components import Component
from ..geometry import Placement2D
from ..peec.capacitance import (
    equivalent_radius,
    mutual_capacitance_spheres,
    plate_capacitance,
)

__all__ = ["CapacitiveResult", "component_capacitance", "capacitive_layout_couplings"]


@dataclass(frozen=True)
class CapacitiveResult:
    """Electric-field coupling of one placed pair."""

    mutual_f: float
    c_ground_a: float
    c_ground_b: float

    @property
    def mutual_pf(self) -> float:
        """Mutual capacitance in picofarads (the EMC-native unit)."""
        return self.mutual_f * 1e12


def _body_radius(component: Component) -> float:
    return equivalent_radius(
        component.footprint_w, component.footprint_h, component.body_height
    )


def component_capacitance(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
    ground_plane_z: float | None = None,
) -> CapacitiveResult:
    """Mutual and ground capacitances for a placed pair.

    The body centres sit at half the body height; mutual capacitance uses
    the sphere-pair first order, ground capacitance the parallel-plate
    formula over the body footprint.

    Raises:
        ValueError: for coincident components.
    """
    ra = _body_radius(comp_a)
    rb = _body_radius(comp_b)
    center_a = placement_a.position.as_vec3(comp_a.body_height / 2.0)
    center_b = placement_b.position.as_vec3(comp_b.body_height / 2.0)
    d = center_a.distance_to(center_b)
    if d < 1e-9:
        raise ValueError("components coincide; capacitance model undefined")
    mutual = mutual_capacitance_spheres(ra, rb, d)

    cg_a = cg_b = 0.0
    if ground_plane_z is not None:
        gap_a = max(comp_a.body_height / 2.0 - ground_plane_z, 1e-4)
        gap_b = max(comp_b.body_height / 2.0 - ground_plane_z, 1e-4)
        cg_a = plate_capacitance(comp_a.footprint_area(), gap_a)
        cg_b = plate_capacitance(comp_b.footprint_area(), gap_b)
    return CapacitiveResult(mutual_f=mutual, c_ground_a=cg_a, c_ground_b=cg_b)


def capacitive_layout_couplings(
    problem,
    refdes_of_interest: list[str] | None = None,
    ground_plane_z: float | None = None,
    c_floor: float = 1e-15,
) -> dict[tuple[str, str], float]:
    """All-pairs mutual capacitances for the placed components of a layout.

    Mirrors :func:`repro.converters.layout_couplings` for the electric
    field: returns (refdes_a, refdes_b) -> farads, pairs below ``c_floor``
    dropped.
    """
    placed = [
        c
        for c in problem.placed()
        if refdes_of_interest is None or c.refdes in refdes_of_interest
    ]
    out: dict[tuple[str, str], float] = {}
    for i in range(len(placed)):
        for j in range(i + 1, len(placed)):
            a, b = placed[i], placed[j]
            if a.board != b.board:
                continue
            result = component_capacitance(
                a.component, a.placement, b.component, b.placement, ground_plane_z
            )
            if result.mutual_f >= c_floor:
                key = (a.refdes, b.refdes) if a.refdes < b.refdes else (b.refdes, a.refdes)
                out[key] = result.mutual_f
    return out
