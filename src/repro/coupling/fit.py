"""Power-law fits of coupling-versus-distance data.

The repro band for this paper notes the *absence of measured component
data*; in its place the PEEC sweeps are fitted with scipy so that design
rules can be derived from a smooth, invertible model:

``|k|(d) = c * d^(-n)``

(a magnetic dipole pair in free space gives n = 3; shielding planes and
finite component size bend the effective exponent).  The inverse of the fit
— *the distance at which |k| drops to a target* — is exactly the paper's
parallel-axes minimum distance PEMD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..units import Dimensionless, Meters

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """``|k|(d) = c * d**(-n)`` with goodness-of-fit metadata.

    Attributes:
        c: amplitude of the law [m^n] — |k| at d = 1 m (dimensionally it
            absorbs the exponent, so compare amplitudes only between fits
            with similar n).
        n: decay exponent [-]; a free-space dipole pair gives n = 3.
        r_squared: coefficient of determination of the fit [-], in
            (-inf, 1], computed on the linear (not log) residuals.
    """

    c: float
    n: float
    r_squared: float

    def predict(self, distance: float | np.ndarray) -> float | np.ndarray:
        """Unsigned coupling factor |k| [-] at a distance.

        Args:
            distance: centre-to-centre distance(s) [m], strictly positive
                (the power law diverges at zero).

        Returns:
            A scalar for scalar input, else an array of the same shape.
        """
        d = np.asarray(distance, dtype=float)
        result = self.c * d ** (-self.n)
        return float(result) if np.ndim(distance) == 0 else result

    def distance_for_coupling(self, k_target: Dimensionless) -> Meters:
        """Distance at which the coupling falls to ``k_target`` (the PEMD).

        Args:
            k_target: unsigned coupling factor [-] to invert the law at,
                strictly positive.

        Returns:
            The distance [m] where ``predict`` equals ``k_target``.

        Raises:
            ValueError: for non-positive targets.
        """
        if k_target <= 0.0:
            raise ValueError("k_target must be positive")
        return float((self.c / k_target) ** (1.0 / self.n))


def fit_power_law(distances: np.ndarray, couplings: np.ndarray) -> PowerLawFit:
    """Least-squares power-law fit in log-log space, refined by curve_fit.

    Args:
        distances: distances [m], strictly positive.
        couplings: |k| values [-], strictly positive (zeros are dropped
            with their distances — a decoupled orientation contributes
            nothing to a distance law).

    Returns:
        The fitted :class:`PowerLawFit` (amplitude, exponent, R^2).

    Raises:
        ValueError: with fewer than 3 usable points.
    """
    d = np.asarray(distances, dtype=float)
    k = np.abs(np.asarray(couplings, dtype=float))
    mask = (d > 0.0) & (k > 1e-12)
    d, k = d[mask], k[mask]
    if len(d) < 3:
        raise ValueError("need at least 3 positive data points for a fit")

    # Log-log linear regression seeds the nonlinear refinement.
    log_d, log_k = np.log(d), np.log(k)
    slope, intercept = np.polyfit(log_d, log_k, 1)
    c0, n0 = float(np.exp(intercept)), float(-slope)

    def model(x: np.ndarray, c: float, n: float) -> np.ndarray:
        return c * x ** (-n)

    try:
        popt, _ = optimize.curve_fit(model, d, k, p0=[max(c0, 1e-12), max(n0, 0.1)], maxfev=5000)
        c, n = float(popt[0]), float(popt[1])
    except RuntimeError:
        c, n = c0, n0

    residual = k - model(d, c, n)
    ss_res = float(np.sum(residual**2))
    ss_tot = float(np.sum((k - np.mean(k)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    return PowerLawFit(c=c, n=n, r_squared=r2)
