"""Coupling factor between two *placed* components.

This is the field-simulation step of the paper's flow: take two component
models (their simplified current paths), put them at their board positions
and orientations, and compute the magnetic coupling factor — optionally in
the presence of a solid ground plane (image method) and with the effective-
permeability correction for cored parts.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..components import Component
from ..geometry import Placement2D
from ..obs import get_tracer
from ..peec import (
    image_path,
    mutual_inductance_paths_fast,
    with_ground_plane,
)
from ..units import Dimensionless, Henries, Meters

__all__ = [
    "CouplingResult",
    "CouplingTask",
    "component_coupling",
    "evaluate_coupling_task",
    "pair_coupling_factor",
]


@dataclass(frozen=True)
class CouplingResult:
    """Outcome of one field simulation of a component pair."""

    k: Dimensionless
    mutual_h: Henries
    self_a_h: Henries
    self_b_h: Henries
    shielded: bool

    @property
    def k_abs(self) -> Dimensionless:
        """Unsigned coupling factor (what distance rules compare against)."""
        return abs(self.k)


def component_coupling(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
    ground_plane_z: Meters | None = None,
    order: int = 8,
) -> CouplingResult:
    """Full PEEC coupling computation for a placed component pair.

    The effective-permeability correction follows the paper's recipe: the
    air-core mutual is scaled by ``sqrt(mu_eff_a * stray_a * mu_eff_b *
    stray_b)`` and each self-inductance by its ``mu_eff`` — neglecting field
    redirection by the cores (the documented ~15 % error source).

    Args:
        comp_a, comp_b: the components (local-frame field models).
        placement_a, placement_b: board placements.
        ground_plane_z: if set, a solid plane at this height shields the
            coupling via image currents.
        order: Gauss–Legendre order of the mutual integral.

    Returns:
        The signed coupling factor and its ingredients.
    """
    path_a = comp_a.placed_current_path(placement_a)
    path_b = comp_b.placed_current_path(placement_b)
    la_geo = comp_a.geometric_inductance
    lb_geo = comp_b.geometric_inductance

    if ground_plane_z is not None:
        # Image method: the victim sees the source's real + image currents;
        # self-inductances pick up the (negative) own-image mutual.
        source_a = with_ground_plane(path_a, ground_plane_z)
        m_air = mutual_inductance_paths_fast(source_a, path_b, order)
        la_geo = la_geo + mutual_inductance_paths_fast(
            image_path(path_a, ground_plane_z), path_a, order
        )
        lb_geo = lb_geo + mutual_inductance_paths_fast(
            image_path(path_b, ground_plane_z), path_b, order
        )
        la_geo = max(la_geo, 1e-12)
        lb_geo = max(lb_geo, 1e-12)
    else:
        m_air = mutual_inductance_paths_fast(path_a, path_b, order)
    mu_a, mu_b = comp_a.mu_eff, comp_b.mu_eff
    stray_a = comp_a.core.stray_fraction
    stray_b = comp_b.core.stray_fraction
    m = m_air * math.sqrt(mu_a * stray_a * mu_b * stray_b)
    la = la_geo * mu_a
    lb = lb_geo * mu_b
    k = m / math.sqrt(la * lb)
    # Discretisation and image artefacts can push |k| epsilon above 1 for
    # nearly coincident parts; clamp to the physical range.
    k = max(-1.0, min(1.0, k))
    return CouplingResult(
        k=k, mutual_h=m, self_a_h=la, self_b_h=lb, shielded=ground_plane_z is not None
    )


#: One deferred :func:`component_coupling` call, picklable for process fan-out.
CouplingTask = tuple[Component, Placement2D, Component, Placement2D, "Meters | None", int]


def evaluate_coupling_task(task: CouplingTask) -> CouplingResult:
    """Run one packed field simulation — the executor's unit of work.

    Module-level so :class:`repro.parallel.CouplingExecutor` can ship it to
    worker processes by name; pure, so a serial fallback can re-run it.

    Args:
        task: ``(comp_a, placement_a, comp_b, placement_b, ground_plane_z,
            order)`` exactly as :func:`component_coupling` takes them
            (positions [m], rotations [rad], plane height [m] or ``None``,
            quadrature order dimensionless).

    Each call observes its wall time into the ``coupling.pair_seconds``
    histogram — inside pool workers the chunk tracer records it, and the
    buckets merge back into the parent, so the per-pair kernel-time
    distribution is identical whether the run was serial or parallel.
    """
    comp_a, placement_a, comp_b, placement_b, ground_plane_z, order = task
    t0 = time.perf_counter()
    result = component_coupling(
        comp_a, placement_a, comp_b, placement_b, ground_plane_z, order
    )
    get_tracer().observe("coupling.pair_seconds", time.perf_counter() - t0)
    return result


def pair_coupling_factor(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
    ground_plane_z: Meters | None = None,
) -> Dimensionless:
    """Shorthand returning just the signed k."""
    return component_coupling(
        comp_a, placement_a, comp_b, placement_b, ground_plane_z
    ).k
