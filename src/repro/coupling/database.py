"""Coupling database: cached field simulations for component pairs.

The paper's point about complexity: *"(n (n-1) / 2) minimum distances can be
defined"* and every coupling simulation costs field-solver time, so results
are cached by the pair's *relative* pose (coupling is invariant under a
rigid motion of the pair).  Poses are quantised to 0.1 mm / 1 degree, which
is far below any placement-relevant sensitivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..check.limits import COUPLING_CLAMP_TOLERANCE
from ..components import Component
from ..geometry import Placement2D
from ..obs import get_tracer
from ..units import Dimensionless, Meters
from .pair import CouplingResult, component_coupling

__all__ = ["CacheStats", "CouplingDatabase"]


def _validated(
    result: CouplingResult, part_a: str, part_b: str
) -> CouplingResult:
    """Enforce |k| <= 1 before a result enters the cache.

    Quadrature error on nearly coincident paths can push |k| marginally
    past 1; such results are clamped back to +-1.  A gross violation is a
    non-physical field model and is rejected — letting it through would
    poison the MNA inductance matrix much later (rule CPL001).

    Raises:
        ValueError: when |k| exceeds 1 beyond the numerical tolerance.
    """
    if abs(result.k) <= 1.0:
        return result
    if abs(result.k) <= 1.0 + COUPLING_CLAMP_TOLERANCE:
        return replace(result, k=math.copysign(1.0, result.k))
    raise ValueError(
        f"[CPL001] non-physical coupling factor k = {result.k:.4f} for pair "
        f"{part_a}/{part_b} (|k| must be <= 1): the component field models "
        f"overlap or are degenerate at this relative pose"
    )


def _relative_key(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
) -> tuple:
    """Cache key from the pair's relative pose, quantised.

    The relative pose is B expressed in A's frame: offset rotated by -rot_a
    and the rotation difference.
    """
    rel = placement_b.position - placement_a.position
    local = rel.rotated(-placement_a.rotation_rad)
    drot = placement_b.rotation_rad - placement_a.rotation_rad
    qmm = 1e-4  # 0.1 mm
    qdeg = math.pi / 180.0
    return (
        id(comp_a),
        id(comp_b),
        round(local.x / qmm),
        round(local.y / qmm),
        round(drot / qdeg) % 360,
        placement_a.side,
        placement_b.side,
    )


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of a :class:`CouplingDatabase`.

    Attributes:
        hits: lookups answered from the cache (direct or mirrored key).
        misses: lookups that ran a field simulation.
        size: number of stored field simulations.
    """

    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        """Total number of coupling requests."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Dimensionless:
        """Fraction of lookups served from the cache [-] (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0


@dataclass
class CouplingDatabase:
    """Caching front-end for :func:`component_coupling`.

    Attributes:
        ground_plane_z: shared shielding-plane height [m] above the board
            (``None`` = no plane, no image currents).
        order: Gauss–Legendre quadrature order passed to the field
            computation (dimensionless count, not a physical quantity).
    """

    ground_plane_z: Meters | None = None
    order: int = 8
    _cache: dict[tuple, CouplingResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def coupling(
        self,
        comp_a: Component,
        placement_a: Placement2D,
        comp_b: Component,
        placement_b: Placement2D,
    ) -> CouplingResult:
        """Coupling for a placed pair, cached by relative pose.

        Args:
            comp_a, comp_b: the components (field models in their local
                frames; linear dimensions in metres).
            placement_a, placement_b: board placements (positions [m],
                rotations [rad]).

        Returns:
            The validated :class:`CouplingResult` — coupling factor ``k``
            [-], mutual and self inductances [H].
        """
        tracer = get_tracer()
        key = _relative_key(comp_a, placement_a, comp_b, placement_b)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            tracer.count("coupling.cache_hits")
            return cached
        # Symmetric orientation: try the mirrored key too (k is symmetric).
        mirror = _relative_key(comp_b, placement_b, comp_a, placement_a)
        cached = self._cache.get(mirror)
        if cached is not None:
            self.hits += 1
            tracer.count("coupling.cache_hits")
            return cached
        self.misses += 1
        tracer.count("coupling.cache_misses")
        with tracer.span("coupling.field_solve"):
            result = component_coupling(
                comp_a, placement_a, comp_b, placement_b, self.ground_plane_z, self.order
            )
        result = _validated(result, comp_a.part_number, comp_b.part_number)
        self._cache[key] = result
        return result

    def pairwise_couplings(
        self, placed: list[tuple[str, Component, Placement2D]]
    ) -> dict[tuple[str, str], CouplingResult]:
        """All-pairs coupling map for a list of (refdes, component, placement).

        Returns a dict keyed by the (refdes_a, refdes_b) pair with
        refdes_a < refdes_b lexicographically.
        """
        out: dict[tuple[str, str], CouplingResult] = {}
        for i in range(len(placed)):
            for j in range(i + 1, len(placed)):
                ref_a, comp_a, pl_a = placed[i]
                ref_b, comp_b, pl_b = placed[j]
                key = (ref_a, ref_b) if ref_a < ref_b else (ref_b, ref_a)
                out[key] = self.coupling(comp_a, pl_a, comp_b, pl_b)
        return out

    def cache_size(self) -> int:
        """Number of stored field simulations."""
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss accounting as an immutable snapshot."""
        return CacheStats(hits=self.hits, misses=self.misses, size=len(self._cache))

    def clear(self) -> None:
        """Drop all cached results and counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
