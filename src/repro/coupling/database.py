"""Coupling database: cached field simulations for component pairs.

The paper's point about complexity: *"(n (n-1) / 2) minimum distances can be
defined"* and every coupling simulation costs field-solver time, so results
are cached by the pair's *relative* pose (coupling is invariant under a
rigid motion of the pair).  Poses are quantised to 0.1 mm / 1 degree, which
is far below any placement-relevant sensitivity.

Two cache tiers share that key semantics:

* the **in-memory** dict keyed by component identity + relative pose
  (this module), free to probe, gone with the process;
* an optional **persistent** tier (:class:`repro.parallel.
  PersistentCouplingCache`) keyed by a *content hash* of the component
  geometry, effective-µ parameters, relative pose, ground plane and
  quadrature order — survives restarts and is shared across runs.

Batch lookups (:meth:`CouplingDatabase.pairwise_couplings`) can fan the
cache misses out over a :class:`repro.parallel.CouplingExecutor`; results
are inserted deterministically in pair order, so parallel and serial runs
produce identical databases.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace

from ..components import Component
from ..geometry import Placement2D
from ..obs import get_tracer
from ..parallel import (
    CouplingExecutor,
    PersistentCouplingCache,
    component_fingerprint,
    pair_cache_key,
)
from ..units import Dimensionless, Meters
from .pair import (
    CouplingResult,
    CouplingTask,
    component_coupling,
    evaluate_coupling_task,
)

__all__ = ["CacheStats", "CouplingDatabase", "COUPLING_CLAMP_TOLERANCE"]

#: Numerical overshoot of |k| beyond 1.0 that the database clamps back to
#: +-1 instead of rejecting (quadrature error on nearly coincident
#: paths); anything larger raises.  Lives here (not in repro.check) so
#: the clamp and the CPL001 rule that audits it share one number without
#: the coupling layer importing the check layer above it (ARCH002).
COUPLING_CLAMP_TOLERANCE = 0.02


def _validated(
    result: CouplingResult, part_a: str, part_b: str
) -> CouplingResult:
    """Enforce |k| <= 1 before a result enters the cache.

    Quadrature error on nearly coincident paths can push |k| marginally
    past 1; such results are clamped back to +-1.  A gross violation is a
    non-physical field model and is rejected — letting it through would
    poison the MNA inductance matrix much later (rule CPL001).

    Raises:
        ValueError: when |k| exceeds 1 beyond the numerical tolerance.
    """
    if abs(result.k) <= 1.0:
        return result
    if abs(result.k) <= 1.0 + COUPLING_CLAMP_TOLERANCE:
        return replace(result, k=math.copysign(1.0, result.k))
    raise ValueError(
        f"[CPL001] non-physical coupling factor k = {result.k:.4f} for pair "
        f"{part_a}/{part_b} (|k| must be <= 1): the component field models "
        f"overlap or are degenerate at this relative pose"
    )


def _relative_key(
    comp_a: Component,
    placement_a: Placement2D,
    comp_b: Component,
    placement_b: Placement2D,
) -> tuple:
    """Cache key from the pair's relative pose, quantised.

    The relative pose is B expressed in A's frame: offset rotated by -rot_a
    and the rotation difference.
    """
    rel = placement_b.position - placement_a.position
    local = rel.rotated(-placement_a.rotation_rad)
    drot = placement_b.rotation_rad - placement_a.rotation_rad
    qmm = 1e-4  # 0.1 mm
    qdeg = math.pi / 180.0
    return (
        id(comp_a),
        id(comp_b),
        round(local.x / qmm),
        round(local.y / qmm),
        round(drot / qdeg) % 360,
        placement_a.side,
        placement_b.side,
    )


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of a :class:`CouplingDatabase`.

    Attributes:
        hits: lookups answered from a cache (in-memory or persistent,
            direct or mirrored key).
        misses: lookups that ran a field simulation.
        size: number of field simulations held in memory.
        persistent_hits: subset of ``hits`` answered from the on-disk
            tier (0 when no persistent cache is attached).
        persistent_stale: on-disk entries rejected for a schema-version
            mismatch or corruption (each also counts as a miss).
    """

    hits: int
    misses: int
    size: int
    persistent_hits: int = 0
    persistent_stale: int = 0

    @property
    def lookups(self) -> int:
        """Total number of coupling requests."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Dimensionless:
        """Fraction of lookups served from the cache [-] (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0


@dataclass
class CouplingDatabase:
    """Caching front-end for :func:`component_coupling`.

    Attributes:
        ground_plane_z: shared shielding-plane height [m] above the board
            (``None`` = no plane, no image currents).
        order: Gauss–Legendre quadrature order passed to the field
            computation (dimensionless count, not a physical quantity).
        persistent: optional on-disk cache tier consulted on in-memory
            misses and written through on every solve (``None`` = memory
            only; see docs/PERFORMANCE.md for the key semantics).
    """

    ground_plane_z: Meters | None = None
    order: int = 8
    persistent: PersistentCouplingCache | None = None
    _cache: dict[tuple, CouplingResult] = field(default_factory=dict)
    _fingerprints: dict[int, str] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    persistent_hits: int = 0

    def _fingerprint(self, component: Component) -> str:
        """Content hash of a component, memoised per object identity."""
        cached = self._fingerprints.get(id(component))
        if cached is None:
            cached = component_fingerprint(component)
            self._fingerprints[id(component)] = cached
        return cached

    def _persistent_key(
        self,
        comp_a: Component,
        placement_a: Placement2D,
        comp_b: Component,
        placement_b: Placement2D,
    ) -> str:
        return pair_cache_key(
            self._fingerprint(comp_a),
            self._fingerprint(comp_b),
            placement_a,
            placement_b,
            self.ground_plane_z,
            self.order,
        )

    def _from_payload(self, payload: dict) -> CouplingResult | None:
        """Rebuild a result from its JSON payload; ``None`` if malformed."""
        try:
            return CouplingResult(
                k=float(payload["k"]),
                mutual_h=float(payload["mutual_h"]),
                self_a_h=float(payload["self_a_h"]),
                self_b_h=float(payload["self_b_h"]),
                shielded=bool(payload["shielded"]),
            )
        except (KeyError, TypeError, ValueError):
            get_tracer().count("cache.stale")
            return None

    def peek(
        self,
        comp_a: Component,
        placement_a: Placement2D,
        comp_b: Component,
        placement_b: Placement2D,
    ) -> CouplingResult | None:
        """Cached coupling for a placed pair, or ``None`` — never solves.

        Probes the in-memory tier (direct and mirrored key — k is
        symmetric), then the persistent tier (both key orders).  A
        persistent hit is promoted into the in-memory cache.

        Args:
            comp_a, comp_b: the components (field models in their local
                frames; linear dimensions in metres).
            placement_a, placement_b: board placements (positions [m],
                rotations [rad]).
        """
        tracer = get_tracer()
        key = _relative_key(comp_a, placement_a, comp_b, placement_b)
        cached = self._cache.get(key)
        if cached is None:
            mirror = _relative_key(comp_b, placement_b, comp_a, placement_a)
            cached = self._cache.get(mirror)
        if cached is not None:
            self.hits += 1
            tracer.count("coupling.cache_hits")
            return cached
        if self.persistent is not None:
            payload = self.persistent.get(
                self._persistent_key(comp_a, placement_a, comp_b, placement_b)
            )
            if payload is None:
                payload = self.persistent.get(
                    self._persistent_key(comp_b, placement_b, comp_a, placement_a)
                )
            if payload is not None:
                result = self._from_payload(payload)
                if result is not None:
                    self._cache[key] = result
                    self.hits += 1
                    self.persistent_hits += 1
                    tracer.count("coupling.cache_hits")
                    return result
        return None

    def store(
        self,
        comp_a: Component,
        placement_a: Placement2D,
        comp_b: Component,
        placement_b: Placement2D,
        result: CouplingResult,
    ) -> CouplingResult:
        """Validate a computed result and write it through every cache tier.

        Returns:
            The validated (possibly clamped, see rule CPL001) result that
            was stored.
        """
        result = _validated(result, comp_a.part_number, comp_b.part_number)
        key = _relative_key(comp_a, placement_a, comp_b, placement_b)
        self._cache[key] = result
        if self.persistent is not None:
            self.persistent.put(
                self._persistent_key(comp_a, placement_a, comp_b, placement_b),
                asdict(result),
            )
        return result

    def coupling(
        self,
        comp_a: Component,
        placement_a: Placement2D,
        comp_b: Component,
        placement_b: Placement2D,
    ) -> CouplingResult:
        """Coupling for a placed pair, cached by relative pose.

        Args:
            comp_a, comp_b: the components (field models in their local
                frames; linear dimensions in metres).
            placement_a, placement_b: board placements (positions [m],
                rotations [rad]).

        Returns:
            The validated :class:`CouplingResult` — coupling factor ``k``
            [-], mutual and self inductances [H].
        """
        cached = self.peek(comp_a, placement_a, comp_b, placement_b)
        if cached is not None:
            return cached
        tracer = get_tracer()
        self.misses += 1
        tracer.count("coupling.cache_misses")
        with tracer.span("coupling.field_solve") as handle:
            result = component_coupling(
                comp_a, placement_a, comp_b, placement_b, self.ground_plane_z, self.order
            )
        if handle.elapsed_s is not None:
            tracer.observe("coupling.pair_seconds", handle.elapsed_s)
        return self.store(comp_a, placement_a, comp_b, placement_b, result)

    def pairwise_couplings(
        self,
        placed: list[tuple[str, Component, Placement2D]],
        executor: CouplingExecutor | None = None,
    ) -> dict[tuple[str, str], CouplingResult]:
        """All-pairs coupling map for a list of (refdes, component, placement).

        Args:
            placed: the placed components; placements in board coordinates
                (positions [m], rotations [rad]).
            executor: optional fan-out for the cache misses; results are
                identical to the serial run and inserted in deterministic
                pair order.

        Returns:
            A dict keyed by the (refdes_a, refdes_b) pair with
            refdes_a < refdes_b lexicographically.
        """
        tracer = get_tracer()
        pairs: list[tuple[tuple[str, str], Component, Placement2D, Component, Placement2D]] = []
        for i in range(len(placed)):
            for j in range(i + 1, len(placed)):
                ref_a, comp_a, pl_a = placed[i]
                ref_b, comp_b, pl_b = placed[j]
                key = (ref_a, ref_b) if ref_a < ref_b else (ref_b, ref_a)
                pairs.append((key, comp_a, pl_a, comp_b, pl_b))

        results: dict[tuple[str, str], CouplingResult] = {}
        pending = []
        for entry in pairs:
            key, comp_a, pl_a, comp_b, pl_b = entry
            cached = self.peek(comp_a, pl_a, comp_b, pl_b)
            if cached is not None:
                results[key] = cached
            else:
                pending.append(entry)

        if pending:
            self.misses += len(pending)
            tracer.count("coupling.cache_misses", len(pending))
            tasks: list[CouplingTask] = [
                (comp_a, pl_a, comp_b, pl_b, self.ground_plane_z, self.order)
                for _, comp_a, pl_a, comp_b, pl_b in pending
            ]
            if executor is not None and executor.is_parallel and len(tasks) > 1:
                with tracer.span("coupling.field_solve"):
                    computed = executor.map(evaluate_coupling_task, tasks)
            else:
                computed = []
                for task in tasks:
                    with tracer.span("coupling.field_solve"):
                        computed.append(evaluate_coupling_task(task))
            for entry, result in zip(pending, computed, strict=True):
                key, comp_a, pl_a, comp_b, pl_b = entry
                results[key] = self.store(comp_a, pl_a, comp_b, pl_b, result)

        # Deterministic map order regardless of which pairs were cached.
        return {entry[0]: results[entry[0]] for entry in pairs}

    def cache_size(self) -> int:
        """Number of field simulations held in memory."""
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss accounting as an immutable snapshot."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._cache),
            persistent_hits=self.persistent_hits,
            persistent_stale=self.persistent.stale if self.persistent is not None else 0,
        )

    def clear(self) -> None:
        """Drop the in-memory cache and counters (the disk tier survives)."""
        self._cache.clear()
        self._fingerprints.clear()
        self.hits = 0
        self.misses = 0
        self.persistent_hits = 0
