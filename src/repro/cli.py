"""Command-line interface of the placement tool.

Mirrors the paper's usage loop on the ASCII file interface::

    repro-emi check  board.txt --format json --fail-on error
    repro-emi lint-src src/repro --format json
    repro-emi place  board.txt -o placed.txt --svg board.svg
    repro-emi drc    placed.txt
    repro-emi rules  board.txt --k-threshold 0.01 -o ruled.txt
    repro-emi compact placed.txt -o compacted.txt
    repro-emi demo   --out-dir out/
    repro-emi cache gc --max-size-mb 256 --max-age-days 30
    repro-emi serve  --port 8765

``check`` statically validates a design file without running any solver
(rule catalogue in ``docs/CHECKS.md``), ``lint-src`` statically analyzes
the *source tree* for unit-dimension and numerical-robustness defects
(rule catalogue in ``docs/PHYSLINT.md``), ``place`` runs the automatic
three-step method, ``drc`` prints the red/green rule verdicts, ``rules``
derives PEMD rules for every pair of field-relevant parts in the file,
``compact`` shrinks a legal layout, ``demo`` reproduces the
buck-converter headline comparison, and ``serve`` runs the whole design
flow as an HTTP/JSON job service with live SSE progress streaming and
per-job artifact storage (API reference in ``docs/SERVICE.md``).

Every traced run mints a ULID-like *run-correlation id*, stamped into
the run report meta, every telemetry event and the perf-history row; a
literal ``{run_id}`` in ``--metrics-out`` / ``--events-out`` paths is
substituted with it, and ``perf history`` / ``perf diff`` accept
``--run-id`` to select runs by it.

Every subcommand accepts ``--trace`` (print the span/counter table after
the run), ``--metrics-out FILE`` (write the run report as JSON),
``--mem-trace`` (tracemalloc gauges per top-level span), ``--events-out
FILE`` (stream every telemetry event as JSONL while the run goes) and
``--live`` (single-line console progress: stage, span path, rates,
cache hit-rate); see ``docs/OBSERVABILITY.md``.  The field-solving subcommands (``rules``,
``demo``) additionally accept ``--workers N`` (process fan-out of the
coupling computations), ``--cache-dir DIR`` and ``--no-cache``
(persistent coupling cache, on by default); see ``docs/PERFORMANCE.md``.

The ``perf`` subcommand group is the perf observatory over those run
reports::

    repro-emi perf record metrics.json        # append to the history store
    repro-emi perf history --key demo         # the stored trajectory
    repro-emi perf diff                       # delta table, last two runs
    repro-emi perf check metrics.json --fail-on regression
    repro-emi perf export metrics.json --format chrome -o trace.json
    repro-emi perf flight metrics.json --events events.jsonl -o flight.html
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-emi",
        description="EMI-coupling-aware placement for power electronics "
        "(reproduction of Stube et al., DATE 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Instrumentation flags shared by every subcommand.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace",
        action="store_true",
        help="print the span/counter table after the run",
    )
    obs_flags.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the run report (span tree, counters, gauges) as JSON",
    )
    obs_flags.add_argument(
        "--mem-trace",
        action="store_true",
        help="also record tracemalloc peak/current bytes per top-level span "
        "(mem.* gauges; slows the run measurably)",
    )
    obs_flags.add_argument(
        "--events-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="stream every telemetry event (spans, counters, gauges, stages, "
        "worker chunks) as JSONL while the run goes; tail-able and "
        "crash-safe to the last event",
    )
    obs_flags.add_argument(
        "--live",
        action="store_true",
        help="single-line live progress on stderr: current stage, open span "
        "path, event/counter rates, cache hit-rate, RSS",
    )

    p_check = sub.add_parser(
        "check",
        help="statically validate a design file (no solver runs)",
        parents=[obs_flags],
    )
    p_check.add_argument("problem", type=Path)
    p_check.add_argument(
        "--netlist",
        type=Path,
        default=None,
        metavar="FILE",
        help="also lint a SPICE-style netlist file against the circuit rules",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report rendering (default: text)",
    )
    p_check.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="warning",
        help="minimum severity that produces a nonzero exit code "
        "(default: warning; the exit code is the max severity, 1 or 2)",
    )

    p_lint = sub.add_parser(
        "lint-src",
        help="physics-aware static analysis of the source tree (physlint)",
        parents=[obs_flags],
    )
    p_lint.add_argument(
        "paths",
        type=Path,
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report rendering (default: text; sarif emits a SARIF 2.1.0 "
        "document for GitHub code scanning)",
    )
    p_lint.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="warning",
        help="minimum severity that produces a nonzero exit code "
        "(default: warning; the exit code is the max severity, 1 or 2)",
    )
    p_lint.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes or family prefixes to run "
        "(e.g. CON, or NUM002,UNT; default: every rule)",
    )
    p_lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline of waived findings (default: the checked-in "
        "package baseline)",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore every baseline, surface all findings",
    )
    p_lint.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the surfaced findings as a new baseline and exit 0",
    )
    p_lint.add_argument(
        "--hotness",
        type=Path,
        default=None,
        metavar="FILE",
        help="hotness snapshot JSON (make hotness-baseline); PRF findings "
        "on its recorded hot paths are promoted to error",
    )

    p_place = sub.add_parser(
        "place",
        help="automatic placement of a problem file",
        parents=[obs_flags],
    )
    p_place.add_argument("problem", type=Path)
    p_place.add_argument("-o", "--output", type=Path, help="write placed problem")
    p_place.add_argument("--svg", type=Path, help="write an SVG board view")
    p_place.add_argument(
        "--baseline", action="store_true", help="EMI-blind placement (no min distances)"
    )
    p_place.add_argument(
        "--partition", action="store_true", help="partition onto two boards first"
    )
    p_place.add_argument(
        "--no-rotation", action="store_true", help="skip the optimal-rotation step"
    )
    p_place.add_argument(
        "--refine",
        action="store_true",
        help="rip-up-and-replace wirelength refinement after placement",
    )

    p_drc = sub.add_parser(
        "drc", help="check a placed problem file", parents=[obs_flags]
    )
    p_drc.add_argument("problem", type=Path)
    p_drc.add_argument("--csv", type=Path, help="write rule markers as CSV")

    # Performance flags shared by the field-solving subcommands.
    perf_flags = argparse.ArgumentParser(add_help=False)
    perf_flags.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the coupling fan-out (default: 1, serial; "
        "results are identical either way)",
    )
    perf_flags.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="root of the persistent coupling cache "
        "(default: $REPRO_EMI_CACHE_DIR or ~/.cache/repro-emi/coupling)",
    )
    perf_flags.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent coupling cache for this run",
    )

    p_rules = sub.add_parser(
        "rules",
        help="derive PEMD rules for the field-relevant parts",
        parents=[obs_flags, perf_flags],
    )
    p_rules.add_argument("problem", type=Path)
    p_rules.add_argument("--k-threshold", type=float, default=0.01)
    p_rules.add_argument("-o", "--output", type=Path, help="write problem incl. rules")
    p_rules.add_argument(
        "--max-pairs", type=int, default=40, help="cap on derived pairs"
    )

    p_compact = sub.add_parser(
        "compact", help="shrink a legal layout", parents=[obs_flags]
    )
    p_compact.add_argument("problem", type=Path)
    p_compact.add_argument("-o", "--output", type=Path)
    p_compact.add_argument("--step-mm", type=float, default=1.0)

    p_demo = sub.add_parser(
        "demo",
        help="run the buck-converter comparison",
        parents=[obs_flags, perf_flags],
    )
    p_demo.add_argument("--out-dir", type=Path, default=Path("repro-demo-out"))

    p_cache = sub.add_parser(
        "cache",
        help="manage the persistent coupling cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    pc_gc = cache_sub.add_parser(
        "gc",
        help="evict stale/excess cache entries (LRU by file mtime)",
        description="Garbage-collect the persistent coupling cache: first "
        "drop entries older than --max-age-days, then drop the "
        "least-recently-used entries until the cache fits --max-size-mb. "
        "At least one bound is required.",
    )
    pc_gc.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="root of the persistent coupling cache "
        "(default: $REPRO_EMI_CACHE_DIR or ~/.cache/repro-emi/coupling)",
    )
    pc_gc.add_argument(
        "--max-size-mb",
        type=float,
        default=None,
        metavar="MB",
        help="evict least-recently-used entries until the cache is at most "
        "this many megabytes",
    )
    pc_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="evict entries whose mtime is older than this many days",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the EMI-design HTTP job service",
        description="Serve the EMI design flow as an HTTP/JSON job API: "
        "POST design or board payloads to /jobs, stream progress as "
        "Server-Sent Events from /jobs/{id}/events, fetch artifacts from "
        "/jobs/{id}/artifacts and Prometheus metrics from /metrics "
        "(full reference: docs/SERVICE.md).",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port; 0 picks an ephemeral port (default: 8765)",
    )
    p_serve.add_argument(
        "--pool",
        type=int,
        default=2,
        metavar="N",
        help="job worker threads (default: 2)",
    )
    p_serve.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="artifact root (default: $REPRO_EMI_SERVICE_DIR or "
        "~/.cache/repro-emi/service)",
    )
    p_serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="shared persistent coupling cache (default: "
        "~/.cache/repro-emi/coupling)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared persistent coupling cache",
    )
    p_serve.add_argument(
        "--job-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="default per-job wall-clock timeout in seconds (default: 300)",
    )
    p_serve.add_argument(
        "--max-jobs",
        type=int,
        default=64,
        metavar="N",
        help="queued-job bound; submissions beyond it get 429 (default: 64)",
    )
    p_serve.add_argument(
        "--event-buffer",
        type=int,
        default=65536,
        metavar="N",
        help="per-job telemetry ring-buffer capacity (default: 65536)",
    )

    # -- the perf observatory (docs/OBSERVABILITY.md) ----------------------

    store_flags = argparse.ArgumentParser(add_help=False)
    store_flags.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="FILE",
        help="perf-history JSONL file (default: $REPRO_EMI_PERF_HISTORY or "
        "~/.cache/repro-emi/perf/history.jsonl)",
    )
    threshold_flags = argparse.ArgumentParser(add_help=False)
    threshold_flags.add_argument(
        "--wall-threshold",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="relative span wall-time growth that flags a regression "
        "(default: 0.30 = +30%%)",
    )
    threshold_flags.add_argument(
        "--counter-threshold",
        type=float,
        default=0.05,
        metavar="FRAC",
        help="relative counter growth that flags a regression (default: 0.05)",
    )
    threshold_flags.add_argument(
        "--min-wall-s",
        type=float,
        default=0.005,
        metavar="S",
        help="spans faster than this never flag (noise floor, default: 0.005)",
    )

    p_perf = sub.add_parser(
        "perf",
        help="perf observatory: record, diff, gate and export run reports",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    pp_record = perf_sub.add_parser(
        "record",
        help="append --metrics-out / BENCH_*.json report files to the store",
        parents=[store_flags],
    )
    pp_record.add_argument("reports", type=Path, nargs="+", metavar="REPORT")
    pp_record.add_argument(
        "--key",
        default=None,
        help="series key (default: the report's meta benchmark/command)",
    )

    pp_history = perf_sub.add_parser(
        "history",
        help="list (or summarise) the stored perf trajectory",
        parents=[store_flags],
    )
    pp_history.add_argument("--key", default=None, help="restrict to one series")
    pp_history.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="restrict to records whose run-correlation id starts with ID",
    )
    pp_history.add_argument(
        "--limit", type=int, default=20, help="most recent N records (default: 20)"
    )
    pp_history.add_argument(
        "--stats",
        action="store_true",
        help="per-span/per-counter medians of the series instead of the record list",
    )
    pp_history.add_argument("--format", choices=("text", "json"), default="text")

    pp_diff = perf_sub.add_parser(
        "diff",
        help="per-span/per-counter delta table between two runs",
        parents=[store_flags, threshold_flags],
    )
    pp_diff.add_argument(
        "reports",
        type=Path,
        nargs="*",
        metavar="REPORT",
        help="two report files (baseline, current); with none given, the "
        "store's last two records (of --key, when set) are compared",
    )
    pp_diff.add_argument("--key", default=None, help="series key for store mode")
    pp_diff.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="store mode: diff the stored record whose run-correlation id "
        "starts with ID against its predecessor in the series",
    )
    pp_diff.add_argument("--format", choices=("text", "json"), default="text")

    pp_check = perf_sub.add_parser(
        "check",
        help="gate a run report against a rolling (or committed) baseline",
        parents=[store_flags, threshold_flags],
    )
    pp_check.add_argument("report", type=Path, metavar="REPORT")
    pp_check.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="a committed report file as the baseline (bypasses the store)",
    )
    pp_check.add_argument("--key", default=None, help="series key for store mode")
    pp_check.add_argument(
        "--window",
        type=int,
        default=5,
        metavar="N",
        help="rolling baseline = median of the last N stored runs (default: 5)",
    )
    pp_check.add_argument(
        "--fail-on",
        choices=("regression", "never"),
        default="regression",
        help="exit non-zero on a regression verdict (default: regression)",
    )
    pp_check.add_argument(
        "--record",
        action="store_true",
        help="append the checked report to the store after the verdict",
    )
    pp_check.add_argument("--format", choices=("text", "json"), default="text")

    pp_export = perf_sub.add_parser(
        "export",
        help="export a run report (Chrome trace JSON or Prometheus text)",
    )
    pp_export.add_argument("report", type=Path, metavar="REPORT")
    pp_export.add_argument(
        "--format",
        choices=("chrome", "prometheus"),
        default="chrome",
        help="chrome: Trace Event JSON for Perfetto/about://tracing; "
        "prometheus: text exposition of the scalars (default: chrome)",
    )
    pp_export.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write here instead of stdout",
    )

    pp_hotness = perf_sub.add_parser(
        "hotness",
        help="aggregate the perf-history store into a hotness snapshot "
        "(profile-guided severity for lint-src --hotness)",
        parents=[store_flags],
    )
    pp_hotness.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="SHARE",
        help="minimum share of total root wall time that makes a span hot "
        "(default: 0.05)",
    )
    pp_hotness.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the snapshot JSON here instead of stdout",
    )

    pp_flight = perf_sub.add_parser(
        "flight",
        help="render one run as a self-contained HTML flight recorder",
        parents=[store_flags, threshold_flags],
    )
    pp_flight.add_argument("report", type=Path, metavar="REPORT")
    pp_flight.add_argument(
        "--events",
        type=Path,
        default=None,
        metavar="FILE",
        help="the run's --events-out JSONL log (adds the event timeline)",
    )
    pp_flight.add_argument(
        "--key",
        default=None,
        help="history series key (default: the report's meta benchmark/command)",
    )
    pp_flight.add_argument(
        "--window",
        type=int,
        default=20,
        metavar="N",
        help="sparkline over the last N stored runs (default: 20)",
    )
    pp_flight.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path("flight.html"),
        metavar="FILE",
        help="output HTML file (default: flight.html)",
    )
    return parser


def _load(path: Path):
    from .io import read_problem

    return read_problem(path.read_text())


def _save(problem, path: Path, title: str) -> None:
    from .io import write_problem

    path.write_text(write_problem(problem, title=title))


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import Severity, run_checks
    from .io import AsciiFormatError

    try:
        problem = _load(args.problem)
    except OSError as exc:
        print(f"check: cannot read {args.problem}: {exc}", file=sys.stderr)
        return int(Severity.ERROR)
    except AsciiFormatError as exc:
        print(f"check: cannot parse {args.problem}: {exc}", file=sys.stderr)
        return int(Severity.ERROR)
    circuit = None
    if args.netlist is not None:
        from .circuit import parse_netlist

        try:
            circuit = parse_netlist(args.netlist.read_text(), title=args.netlist.name)
        except OSError as exc:
            print(f"check: cannot read {args.netlist}: {exc}", file=sys.stderr)
            return int(Severity.ERROR)
        except (ValueError, KeyError) as exc:
            print(f"check: cannot parse {args.netlist}: {exc}", file=sys.stderr)
            return int(Severity.ERROR)
    report = run_checks(problem=problem, circuit=circuit, subject=args.problem.name)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.text())
    return report.exit_code(Severity.parse(args.fail_on))


def _cmd_lint_src(args: argparse.Namespace) -> int:
    from .check import Severity
    from .lint import DEFAULT_BASELINE_PATH, Baseline, HotnessModel, lint_paths

    hotness = None
    if args.hotness is not None:
        try:
            hotness = HotnessModel.load(args.hotness)
        except OSError as exc:
            print(f"lint-src: cannot read {args.hotness}: {exc}", file=sys.stderr)
            return int(Severity.ERROR)
        except ValueError as exc:
            print(f"lint-src: {exc}", file=sys.stderr)
            return int(Severity.ERROR)
    baseline = None
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None and DEFAULT_BASELINE_PATH.is_file():
            baseline_path = DEFAULT_BASELINE_PATH
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except OSError as exc:
                print(f"lint-src: cannot read {baseline_path}: {exc}", file=sys.stderr)
                return int(Severity.ERROR)
            except ValueError as exc:
                print(f"lint-src: {exc}", file=sys.stderr)
                return int(Severity.ERROR)
    select = None
    if args.select:
        select = [token.strip().upper() for token in args.select.split(",") if token.strip()]
        if not select:
            print("lint-src: --select given but no codes parsed", file=sys.stderr)
            return int(Severity.ERROR)
    try:
        result = lint_paths(
            paths=list(args.paths) or None,
            baseline=baseline,
            select=select,
            hotness=hotness,
        )
    except FileNotFoundError as exc:
        print(f"lint-src: {exc}", file=sys.stderr)
        return int(Severity.ERROR)
    if args.write_baseline is not None:
        Baseline.from_findings(result.findings).save(args.write_baseline)
        print(
            f"wrote {args.write_baseline} "
            f"({len(result.findings)} finding(s) baselined)"
        )
        return 0
    if args.format == "sarif":
        import json

        from . import __version__
        from .lint import findings_to_sarif

        print(json.dumps(findings_to_sarif(result.findings, __version__), indent=2))
    elif args.format == "json":
        document = result.report.to_dict()
        document["files"] = result.files
        document["suppressed"] = result.suppressed
        document["baselined"] = result.baselined
        import json

        print(json.dumps(document, indent=2))
    else:
        print(result.report.text())
        print(
            f"{result.files} file(s) analyzed; {result.suppressed} inline "
            f"suppression(s), {result.baselined} baselined"
        )
    return result.report.exit_code(Severity.parse(args.fail_on))


def _cmd_place(args: argparse.Namespace) -> int:
    from .placement import AutoPlacer, BaselinePlacer, PlacementError

    problem = _load(args.problem)
    placer = (
        BaselinePlacer(problem)
        if args.baseline
        else AutoPlacer(
            problem,
            optimize_rotation=not args.no_rotation,
            partition=args.partition,
        )
    )
    try:
        report = placer.run()
    except PlacementError as exc:
        print(f"placement failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"placed {report.placed_count} components in {report.runtime_s * 1e3:.0f} ms; "
        f"violations: {report.violations_after}"
    )
    if args.refine and not args.baseline:
        from .placement import refine_wirelength

        result = refine_wirelength(problem)
        print(
            f"refinement: wirelength {result.wirelength_before * 1e3:.0f} -> "
            f"{result.wirelength_after * 1e3:.0f} mm "
            f"({result.improvement * 100:.0f}% shorter)"
        )
    if args.output:
        _save(problem, args.output, f"placed from {args.problem.name}")
        print(f"wrote {args.output}")
    if args.svg:
        from .viz import render_board_svg

        args.svg.write_text(render_board_svg(problem, title=args.problem.stem))
        print(f"wrote {args.svg}")
    return 0 if report.violations_after == 0 else 1


def _cmd_drc(args: argparse.Namespace) -> int:
    from .placement import DesignRuleChecker

    problem = _load(args.problem)
    checker = DesignRuleChecker(problem)
    violations = checker.check_all()
    for marker in checker.rule_markers():
        print(
            f"  {marker.color.upper():5s} {marker.ref_a}-{marker.ref_b} "
            f"(EMD {marker.radius * 2e3:.1f} mm)"
        )
    for violation in violations:
        print(f"  ! {violation.message}")
    print(f"{len(violations)} violation(s)")
    if args.csv:
        from .viz import markers_to_csv

        args.csv.write_text(markers_to_csv(problem))
        print(f"wrote {args.csv}")
    return 0 if not violations else 1


def _perf_setup(args: argparse.Namespace):
    """(executor, database) honouring --workers / --cache-dir / --no-cache.

    The executor is ``None`` for serial runs; the database always exists
    and carries a persistent tier unless ``--no-cache`` was given.
    """
    from .coupling import CouplingDatabase
    from .parallel import CouplingExecutor, PersistentCouplingCache

    executor = CouplingExecutor(workers=args.workers) if args.workers > 1 else None
    persistent = None
    if not args.no_cache:
        persistent = PersistentCouplingCache(cache_dir=args.cache_dir)
    return executor, CouplingDatabase(persistent=persistent)


def _cmd_rules(args: argparse.Namespace) -> int:
    from .obs import get_tracer
    from .rules import RuleSet, derive_pemd

    problem = _load(args.problem)
    # Field-relevant parts: meaningful stray field (moment above noise).
    relevant = [
        (ref, comp.component)
        for ref, comp in problem.components.items()
        if comp.component.current_path.magnetic_moment().norm() > 1e-6
    ]
    executor, database = _perf_setup(args)
    derivation_cache: dict[tuple[str, str], object] = {}
    rules = list(problem.rules.min_distance)
    known = {r.pair() for r in rules}
    derived = 0
    try:
        with get_tracer().stage("rules", {"max_pairs": args.max_pairs}):
            for i in range(len(relevant)):
                for j in range(i + 1, len(relevant)):
                    if derived >= args.max_pairs:
                        break
                    ref_a, comp_a = relevant[i]
                    ref_b, comp_b = relevant[j]
                    if tuple(sorted((ref_a, ref_b))) in known:
                        continue
                    type_key = tuple(
                        sorted((comp_a.part_number, comp_b.part_number))
                    )
                    derivation = derivation_cache.get(type_key)
                    if derivation is None:
                        derivation = derive_pemd(
                            comp_a,
                            comp_b,
                            args.k_threshold,
                            executor=executor,
                            database=database,
                        )
                        derivation_cache[type_key] = derivation
                    rule = derivation.rule(ref_a, ref_b)  # type: ignore[attr-defined]
                    rules.append(rule)
                    derived += 1
                    print(
                        f"  {ref_a}-{ref_b}: PEMD {rule.pemd * 1e3:.1f} mm "
                        f"(residual {rule.residual:.2f})"
                    )
    finally:
        if executor is not None:
            executor.close()
    stats = database.stats
    print(
        f"coupling cache: {stats.hits} hit(s) ({stats.persistent_hits} from "
        f"disk), {stats.misses} field solve(s)"
    )
    problem.rules = RuleSet(
        min_distance=rules,
        clearance=problem.rules.clearance,
        groups=problem.rules.groups,
        net_lengths=problem.rules.net_lengths,
    )
    print(f"derived {derived} rule(s), total {len(rules)}")
    if args.output:
        _save(problem, args.output, f"rules for {args.problem.name}")
        print(f"wrote {args.output}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from .placement.compaction import compact_layout

    problem = _load(args.problem)
    result = compact_layout(problem, step=args.step_mm * 1e-3)
    print(
        f"compaction: {result.moves} moves in {result.passes} pass(es); "
        f"area {result.area_before * 1e4:.2f} -> {result.area_after * 1e4:.2f} cm^2 "
        f"({result.reduction * 100:.1f}% smaller)"
    )
    if args.output:
        _save(problem, args.output, f"compacted from {args.problem.name}")
        print(f"wrote {args.output}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .converters import BuckConverterDesign
    from .core import EmiDesignFlow
    from .viz import render_board_svg, spectrum_to_csv

    from .parallel import default_cache_dir

    out = args.out_dir
    out.mkdir(parents=True, exist_ok=True)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    flow = EmiDesignFlow(
        BuckConverterDesign(), workers=args.workers, cache_dir=cache_dir
    )
    try:
        evaluations = flow.compare_layouts()
    finally:
        flow.close()
    stats = flow.coupling_stats
    print(
        f"coupling cache: {stats.hits} hit(s) ({stats.persistent_hits} from "
        f"disk), {stats.misses} field solve(s)"
    )
    for name, evaluation in evaluations.items():
        print(
            f"{name}: {evaluation.violations} violations, "
            f"CISPR margin {evaluation.worst_margin_db:+.1f} dB"
        )
        (out / f"{name}.svg").write_text(
            render_board_svg(evaluation.problem, title=name)
        )
    (out / "spectra.csv").write_text(
        spectrum_to_csv({n: e.spectrum for n, e in evaluations.items()})
    )
    from .core import flow_report

    (out / "report.md").write_text(flow_report(flow, evaluations))
    print(f"artifacts in {out}/")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from .parallel import PersistentCouplingCache

    if args.max_size_mb is None and args.max_age_days is None:
        print(
            "cache gc: pass --max-size-mb and/or --max-age-days",
            file=sys.stderr,
        )
        return 2
    cache = PersistentCouplingCache(cache_dir=args.cache_dir)
    stats = cache.gc(
        max_size_bytes=(
            None if args.max_size_mb is None else int(args.max_size_mb * 1024 * 1024)
        ),
        max_age_s=(
            None if args.max_age_days is None else args.max_age_days * 86400.0
        ),
    )
    print(
        f"cache gc {cache.cache_dir}: scanned {stats['scanned']} entr"
        f"{'y' if stats['scanned'] == 1 else 'ies'}, evicted "
        f"{stats['evicted']}, kept {stats['kept']}"
    )
    print(
        f"  {stats['bytes_before'] / 1e6:.2f} MB -> "
        f"{stats['bytes_after'] / 1e6:.2f} MB "
        f"({stats['bytes_evicted'] / 1e6:.2f} MB freed)"
    )
    return 0


_CACHE_COMMANDS = {
    "gc": _cmd_cache_gc,
}


def _cmd_cache(args: argparse.Namespace) -> int:
    return _CACHE_COMMANDS[args.cache_command](args)


# -- perf observatory subcommands ------------------------------------------


def _load_run_report(path: Path):
    """Parse a run-report JSON file or fail with a CLI-style message."""
    from .obs import RunReport

    try:
        return RunReport.from_json(path.read_text())
    except OSError as exc:
        print(f"perf: cannot read {path}: {exc}", file=sys.stderr)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"perf: cannot parse {path}: {exc}", file=sys.stderr)
    return None


def _thresholds(args: argparse.Namespace):
    from .obs import Thresholds

    return Thresholds(
        wall_rel=args.wall_threshold,
        counter_rel=args.counter_threshold,
        min_wall_s=args.min_wall_s,
    )


def _cmd_perf_record(args: argparse.Namespace) -> int:
    from .obs import PerfHistory

    history = PerfHistory(args.store)
    for path in args.reports:
        report = _load_run_report(path)
        if report is None:
            return 2
        record = history.append(report, key=args.key)
        print(
            f"recorded {record.key} @ {record.git_sha[:10]} "
            f"({record.wall_s:.3f} s) -> {history.path}"
        )
    return 0


def _cmd_perf_history(args: argparse.Namespace) -> int:
    import json

    from .obs import PerfHistory

    history = PerfHistory(args.store)
    if args.stats:
        if args.key is None:
            print("perf history --stats requires --key", file=sys.stderr)
            return 2
        summary = history.summarise(args.key)
        if args.format == "json":
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        print(
            f"{summary['key']}: {summary['runs']} run(s) "
            f"{summary['first']} .. {summary['last']}"
        )
        for path, stats in summary["spans"].items():
            print(
                f"  {path}: median {stats['median']:.4f} s "
                f"(min {stats['min']:.4f}, max {stats['max']:.4f}, "
                f"last {stats['last']:.4f})"
            )
        return 0
    if args.run_id:
        matching = [
            r
            for r in history.records(key=args.key)
            if r.run_id and r.run_id.startswith(args.run_id)
        ]
        records = matching[-args.limit :] if args.limit > 0 else matching
    else:
        records = history.last(key=args.key, n=args.limit)
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"no records in {history.path}")
        return 0
    for record in records:
        run_id = f"  {record.run_id}" if record.run_id else ""
        print(
            f"{record.recorded_at}  {record.git_sha[:10]:10s}  "
            f"{record.wall_s:9.3f} s  {record.key}{run_id}"
        )
    if history.skipped_lines:
        print(f"({history.skipped_lines} malformed line(s) skipped)")
    return 0


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    import json

    from .obs import PerfHistory, compare

    if len(args.reports) == 2:
        baseline = _load_run_report(args.reports[0])
        current = _load_run_report(args.reports[1])
        if baseline is None or current is None:
            return 2
        pair = (baseline, current)
        origin = f"{args.reports[0]} -> {args.reports[1]}"
    elif not args.reports:
        history = PerfHistory(args.store)
        if args.run_id:
            series = history.records(key=args.key)
            index = next(
                (
                    i
                    for i, r in enumerate(series)
                    if r.run_id and r.run_id.startswith(args.run_id)
                ),
                None,
            )
            if index is None:
                print(
                    f"perf diff: no stored run with run id {args.run_id!r} "
                    f"in {history.path}",
                    file=sys.stderr,
                )
                return 2
            if index == 0:
                print(
                    f"perf diff: run {series[0].run_id} is the oldest stored "
                    "record; nothing to diff against",
                    file=sys.stderr,
                )
                return 2
            records = [series[index - 1], series[index]]
        else:
            records = history.last(key=args.key, n=2)
        if len(records) < 2:
            print(
                f"perf diff: need two stored runs, found {len(records)} "
                f"in {history.path}",
                file=sys.stderr,
            )
            return 2
        pair = (records[0].report, records[1].report)
        origin = (
            f"{records[0].recorded_at} ({records[0].git_sha[:10]}) -> "
            f"{records[1].recorded_at} ({records[1].git_sha[:10]})"
        )
    else:
        print("perf diff: pass exactly two report files, or none", file=sys.stderr)
        return 2
    verdict = compare(pair[1], [pair[0]], _thresholds(args))
    if args.format == "json":
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"diff {origin}")
        print(verdict.table())
        print(verdict.summary())
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    import json

    from .obs import PerfHistory, compare

    current = _load_run_report(args.report)
    if current is None:
        return 2
    if args.baseline is not None:
        base = _load_run_report(args.baseline)
        if base is None:
            return 2
        baseline = [base]
    else:
        history = PerfHistory(args.store)
        baseline = [r.report for r in history.last(key=args.key, n=args.window)]
        if not baseline:
            # An empty store must not brick CI on its first run: record
            # the report so the next run has a baseline, and pass.
            history.append(current, key=args.key)
            print(
                f"perf check: no baseline in {history.path}; recorded this "
                "run as the first (verdict: OK)"
            )
            return 0
    verdict = compare(current, baseline, _thresholds(args))
    if args.format == "json":
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    else:
        print(verdict.table(show_ok=False) or "")
        print(verdict.summary())
    if args.baseline is None and args.record:
        PerfHistory(args.store).append(current, key=args.key)
    if args.fail_on == "regression" and not verdict.ok:
        return 1
    return 0


def _cmd_perf_export(args: argparse.Namespace) -> int:
    from .obs import chrome_trace_json, to_prometheus

    report = _load_run_report(args.report)
    if report is None:
        return 2
    if args.format == "chrome":
        text = chrome_trace_json(report) + "\n"
    else:
        text = to_prometheus(report)
    if args.output is not None:
        args.output.write_text(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_perf_flight(args: argparse.Namespace) -> int:
    from .obs import (
        PerfHistory,
        compare,
        default_key,
        render_flight_html,
        validate_event_dict,
    )

    report = _load_run_report(args.report)
    if report is None:
        return 2

    events = None
    if args.events is not None:
        try:
            text = args.events.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"perf flight: cannot read {args.events}: {exc}", file=sys.stderr)
            return 2
        import json

        events = []
        skipped = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(data, dict) or validate_event_dict(data):
                skipped += 1
                continue
            events.append(data)
        if skipped:
            print(
                f"perf flight: skipped {skipped} malformed event line(s)",
                file=sys.stderr,
            )

    history = PerfHistory(args.store)
    key = args.key if args.key is not None else default_key(report)
    records = history.last(key=key, n=max(args.window, 0))
    verdict = None
    if records:
        verdict = compare(
            report, [r.report for r in records], _thresholds(args)
        )

    html = render_flight_html(
        report,
        events=events,
        history=records or None,
        verdict=verdict,
        title=f"repro-emi flight recorder — {key}",
    )
    args.output.write_text(html, encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


def _cmd_perf_hotness(args: argparse.Namespace) -> int:
    import json

    from .lint.hotness import DEFAULT_HOT_SHARE, HotnessModel
    from .obs import PerfHistory

    history = PerfHistory(args.store)
    threshold = args.threshold if args.threshold is not None else DEFAULT_HOT_SHARE
    model = HotnessModel.from_history(history.path, threshold=threshold)
    if not model.shares:
        print(f"no usable records in {history.path}", file=sys.stderr)
        return 2
    if args.output is not None:
        model.save(args.output)
        hot = model.hot_spans
        print(
            f"wrote {args.output}: {len(model.shares)} span(s), "
            f"{len(hot)} hot at threshold {threshold:g}"
        )
        for name in hot:
            print(f"  hot {model.shares[name]:6.1%}  {name}")
    else:
        print(json.dumps(model.to_dict(), indent=2))
    return 0


_PERF_COMMANDS = {
    "record": _cmd_perf_record,
    "history": _cmd_perf_history,
    "diff": _cmd_perf_diff,
    "check": _cmd_perf_check,
    "export": _cmd_perf_export,
    "flight": _cmd_perf_flight,
    "hotness": _cmd_perf_hotness,
}


def _cmd_perf(args: argparse.Namespace) -> int:
    return _PERF_COMMANDS[args.perf_command](args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import EmiService, ServiceConfig, default_data_dir

    cache_dir = None if args.no_cache else args.cache_dir
    kwargs: dict = {
        "host": args.host,
        "port": args.port,
        "pool_workers": args.pool,
        "data_dir": args.data_dir or default_data_dir(),
        "job_timeout_s": args.job_timeout,
        "max_queued": args.max_jobs,
        "event_buffer": args.event_buffer,
    }
    if args.no_cache or args.cache_dir is not None:
        kwargs["cache_dir"] = cache_dir
    config = ServiceConfig(**kwargs)
    service = EmiService(config)
    url = service.start()
    print(f"repro-emi service listening on {url}")
    print(f"  artifacts: {config.jobs_root()}")
    print(
        f"  workers: {config.pool_workers}  cache: "
        f"{config.cache_dir if config.cache_dir else 'disabled'}"
    )
    print("POST /jobs to submit; Ctrl-C drains in-flight jobs and exits.")
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        print("shutting down: draining in-flight jobs...", flush=True)
        service.stop(drain=True)
        metrics = service.manager.metrics.snapshot()
        completed = int(metrics["counters"].get("service.jobs_completed", 0))
        failed = int(metrics["counters"].get("service.jobs_failed", 0))
        cancelled = int(metrics["counters"].get("service.jobs_cancelled", 0))
        print(
            f"done: {completed} succeeded, {failed} failed, "
            f"{cancelled} cancelled"
        )
    return 0


_COMMANDS = {
    "check": _cmd_check,
    "lint-src": _cmd_lint_src,
    "place": _cmd_place,
    "drc": _cmd_drc,
    "rules": _cmd_rules,
    "compact": _cmd_compact,
    "demo": _cmd_demo,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "perf": _cmd_perf,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    When ``--trace`` or ``--metrics-out`` is given, the command runs under
    a fresh global tracer; the resulting run report is printed as a table
    and/or written as JSON after the command finishes (also on failure, so
    partial runs can be diagnosed).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    events_out = getattr(args, "events_out", None)
    live = getattr(args, "live", False)
    want_metrics = (
        getattr(args, "trace", False)
        or getattr(args, "metrics_out", None) is not None
        or getattr(args, "mem_trace", False)
        or events_out is not None
        or live
    )
    if not want_metrics:
        return _COMMANDS[args.command](args)

    from datetime import datetime, timezone

    from .obs import (
        EventBus,
        JsonlSink,
        LiveRenderer,
        ResourceSampler,
        disable,
        enable,
        new_run_id,
    )

    # Mint the run-correlation id up front so artifact paths can carry it:
    # a literal ``{run_id}`` in --metrics-out / --events-out substitutes.
    run_id = new_run_id()
    if args.metrics_out is not None and "{run_id}" in str(args.metrics_out):
        args.metrics_out = Path(str(args.metrics_out).replace("{run_id}", run_id))
    if events_out is not None and "{run_id}" in str(events_out):
        events_out = Path(str(events_out).replace("{run_id}", run_id))
        args.events_out = events_out

    # Fail fast: don't run a long command only to lose its report.
    if args.metrics_out is not None:
        parent = Path(args.metrics_out).resolve().parent
        if not parent.is_dir():
            parser.error(f"--metrics-out: directory does not exist: {parent}")
    if events_out is not None:
        parent = Path(events_out).resolve().parent
        if not parent.is_dir():
            parser.error(f"--events-out: directory does not exist: {parent}")

    bus = None
    if events_out is not None or live:
        bus = EventBus()
        if events_out is not None:
            bus.subscribe(JsonlSink(events_out))
        if live:
            bus.subscribe(LiveRenderer())
    tracer = enable(
        meta={
            "command": args.command,
            "argv": list(argv or sys.argv[1:]),
            "started_at": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        mem_trace=getattr(args, "mem_trace", False),
        bus=bus,
        run_id=run_id,
    )
    sampler = None
    if bus is not None:
        sampler = ResourceSampler(tracer, bus=bus)
        sampler.start()
    # On an exception the partial report still flushes, stamped with the
    # failure so downstream tooling never mistakes it for a healthy run.
    status_meta: dict = {"status": "ok"}
    try:
        return _COMMANDS[args.command](args)
    except BaseException as exc:
        status_meta = {"status": "error", "error_type": type(exc).__name__}
        raise
    finally:
        if sampler is not None:
            sampler.stop()
        disable()
        tracer.stop_mem_trace()
        report = tracer.report(extra_meta=status_meta)
        if bus is not None:
            bus.close()
        if args.metrics_out is not None:
            report.write(args.metrics_out)
            print(f"wrote {args.metrics_out}")
        if events_out is not None:
            print(f"wrote {events_out}")
        if args.trace:
            print(report.table())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
