"""Command-line interface of the placement tool.

Mirrors the paper's usage loop on the ASCII file interface::

    repro-emi check  board.txt --format json --fail-on error
    repro-emi lint-src src/repro --format json
    repro-emi place  board.txt -o placed.txt --svg board.svg
    repro-emi drc    placed.txt
    repro-emi rules  board.txt --k-threshold 0.01 -o ruled.txt
    repro-emi compact placed.txt -o compacted.txt
    repro-emi demo   --out-dir out/

``check`` statically validates a design file without running any solver
(rule catalogue in ``docs/CHECKS.md``), ``lint-src`` statically analyzes
the *source tree* for unit-dimension and numerical-robustness defects
(rule catalogue in ``docs/PHYSLINT.md``), ``place`` runs the automatic
three-step method, ``drc`` prints the red/green rule verdicts, ``rules``
derives PEMD rules for every pair of field-relevant parts in the file,
``compact`` shrinks a legal layout, and ``demo`` reproduces the
buck-converter headline comparison.

Every subcommand accepts ``--trace`` (print the span/counter table after
the run) and ``--metrics-out FILE`` (write the run report as JSON); see
``docs/OBSERVABILITY.md``.  The field-solving subcommands (``rules``,
``demo``) additionally accept ``--workers N`` (process fan-out of the
coupling computations), ``--cache-dir DIR`` and ``--no-cache``
(persistent coupling cache, on by default); see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-emi",
        description="EMI-coupling-aware placement for power electronics "
        "(reproduction of Stube et al., DATE 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Instrumentation flags shared by every subcommand.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace",
        action="store_true",
        help="print the span/counter table after the run",
    )
    obs_flags.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the run report (span tree, counters, gauges) as JSON",
    )

    p_check = sub.add_parser(
        "check",
        help="statically validate a design file (no solver runs)",
        parents=[obs_flags],
    )
    p_check.add_argument("problem", type=Path)
    p_check.add_argument(
        "--netlist",
        type=Path,
        default=None,
        metavar="FILE",
        help="also lint a SPICE-style netlist file against the circuit rules",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report rendering (default: text)",
    )
    p_check.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="warning",
        help="minimum severity that produces a nonzero exit code "
        "(default: warning; the exit code is the max severity, 1 or 2)",
    )

    p_lint = sub.add_parser(
        "lint-src",
        help="physics-aware static analysis of the source tree (physlint)",
        parents=[obs_flags],
    )
    p_lint.add_argument(
        "paths",
        type=Path,
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report rendering (default: text)",
    )
    p_lint.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="warning",
        help="minimum severity that produces a nonzero exit code "
        "(default: warning; the exit code is the max severity, 1 or 2)",
    )
    p_lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline of waived findings (default: the checked-in "
        "package baseline)",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore every baseline, surface all findings",
    )
    p_lint.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the surfaced findings as a new baseline and exit 0",
    )

    p_place = sub.add_parser(
        "place",
        help="automatic placement of a problem file",
        parents=[obs_flags],
    )
    p_place.add_argument("problem", type=Path)
    p_place.add_argument("-o", "--output", type=Path, help="write placed problem")
    p_place.add_argument("--svg", type=Path, help="write an SVG board view")
    p_place.add_argument(
        "--baseline", action="store_true", help="EMI-blind placement (no min distances)"
    )
    p_place.add_argument(
        "--partition", action="store_true", help="partition onto two boards first"
    )
    p_place.add_argument(
        "--no-rotation", action="store_true", help="skip the optimal-rotation step"
    )
    p_place.add_argument(
        "--refine",
        action="store_true",
        help="rip-up-and-replace wirelength refinement after placement",
    )

    p_drc = sub.add_parser(
        "drc", help="check a placed problem file", parents=[obs_flags]
    )
    p_drc.add_argument("problem", type=Path)
    p_drc.add_argument("--csv", type=Path, help="write rule markers as CSV")

    # Performance flags shared by the field-solving subcommands.
    perf_flags = argparse.ArgumentParser(add_help=False)
    perf_flags.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the coupling fan-out (default: 1, serial; "
        "results are identical either way)",
    )
    perf_flags.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="root of the persistent coupling cache "
        "(default: $REPRO_EMI_CACHE_DIR or ~/.cache/repro-emi/coupling)",
    )
    perf_flags.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent coupling cache for this run",
    )

    p_rules = sub.add_parser(
        "rules",
        help="derive PEMD rules for the field-relevant parts",
        parents=[obs_flags, perf_flags],
    )
    p_rules.add_argument("problem", type=Path)
    p_rules.add_argument("--k-threshold", type=float, default=0.01)
    p_rules.add_argument("-o", "--output", type=Path, help="write problem incl. rules")
    p_rules.add_argument(
        "--max-pairs", type=int, default=40, help="cap on derived pairs"
    )

    p_compact = sub.add_parser(
        "compact", help="shrink a legal layout", parents=[obs_flags]
    )
    p_compact.add_argument("problem", type=Path)
    p_compact.add_argument("-o", "--output", type=Path)
    p_compact.add_argument("--step-mm", type=float, default=1.0)

    p_demo = sub.add_parser(
        "demo",
        help="run the buck-converter comparison",
        parents=[obs_flags, perf_flags],
    )
    p_demo.add_argument("--out-dir", type=Path, default=Path("repro-demo-out"))
    return parser


def _load(path: Path):
    from .io import read_problem

    return read_problem(path.read_text())


def _save(problem, path: Path, title: str) -> None:
    from .io import write_problem

    path.write_text(write_problem(problem, title=title))


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import Severity, run_checks
    from .io import AsciiFormatError

    try:
        problem = _load(args.problem)
    except OSError as exc:
        print(f"check: cannot read {args.problem}: {exc}", file=sys.stderr)
        return int(Severity.ERROR)
    except AsciiFormatError as exc:
        print(f"check: cannot parse {args.problem}: {exc}", file=sys.stderr)
        return int(Severity.ERROR)
    circuit = None
    if args.netlist is not None:
        from .circuit import parse_netlist

        try:
            circuit = parse_netlist(args.netlist.read_text(), title=args.netlist.name)
        except OSError as exc:
            print(f"check: cannot read {args.netlist}: {exc}", file=sys.stderr)
            return int(Severity.ERROR)
        except (ValueError, KeyError) as exc:
            print(f"check: cannot parse {args.netlist}: {exc}", file=sys.stderr)
            return int(Severity.ERROR)
    report = run_checks(problem=problem, circuit=circuit, subject=args.problem.name)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.text())
    return report.exit_code(Severity.parse(args.fail_on))


def _cmd_lint_src(args: argparse.Namespace) -> int:
    from .check import Severity
    from .lint import DEFAULT_BASELINE_PATH, Baseline, lint_paths

    baseline = None
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None and DEFAULT_BASELINE_PATH.is_file():
            baseline_path = DEFAULT_BASELINE_PATH
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except OSError as exc:
                print(f"lint-src: cannot read {baseline_path}: {exc}", file=sys.stderr)
                return int(Severity.ERROR)
            except ValueError as exc:
                print(f"lint-src: {exc}", file=sys.stderr)
                return int(Severity.ERROR)
    try:
        result = lint_paths(paths=list(args.paths) or None, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"lint-src: {exc}", file=sys.stderr)
        return int(Severity.ERROR)
    if args.write_baseline is not None:
        Baseline.from_findings(result.findings).save(args.write_baseline)
        print(
            f"wrote {args.write_baseline} "
            f"({len(result.findings)} finding(s) baselined)"
        )
        return 0
    if args.format == "json":
        document = result.report.to_dict()
        document["files"] = result.files
        document["suppressed"] = result.suppressed
        document["baselined"] = result.baselined
        import json

        print(json.dumps(document, indent=2))
    else:
        print(result.report.text())
        print(
            f"{result.files} file(s) analyzed; {result.suppressed} inline "
            f"suppression(s), {result.baselined} baselined"
        )
    return result.report.exit_code(Severity.parse(args.fail_on))


def _cmd_place(args: argparse.Namespace) -> int:
    from .placement import AutoPlacer, BaselinePlacer, PlacementError

    problem = _load(args.problem)
    placer = (
        BaselinePlacer(problem)
        if args.baseline
        else AutoPlacer(
            problem,
            optimize_rotation=not args.no_rotation,
            partition=args.partition,
        )
    )
    try:
        report = placer.run()
    except PlacementError as exc:
        print(f"placement failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"placed {report.placed_count} components in {report.runtime_s * 1e3:.0f} ms; "
        f"violations: {report.violations_after}"
    )
    if args.refine and not args.baseline:
        from .placement import refine_wirelength

        result = refine_wirelength(problem)
        print(
            f"refinement: wirelength {result.wirelength_before * 1e3:.0f} -> "
            f"{result.wirelength_after * 1e3:.0f} mm "
            f"({result.improvement * 100:.0f}% shorter)"
        )
    if args.output:
        _save(problem, args.output, f"placed from {args.problem.name}")
        print(f"wrote {args.output}")
    if args.svg:
        from .viz import render_board_svg

        args.svg.write_text(render_board_svg(problem, title=args.problem.stem))
        print(f"wrote {args.svg}")
    return 0 if report.violations_after == 0 else 1


def _cmd_drc(args: argparse.Namespace) -> int:
    from .placement import DesignRuleChecker

    problem = _load(args.problem)
    checker = DesignRuleChecker(problem)
    violations = checker.check_all()
    for marker in checker.rule_markers():
        print(
            f"  {marker.color.upper():5s} {marker.ref_a}-{marker.ref_b} "
            f"(EMD {marker.radius * 2e3:.1f} mm)"
        )
    for violation in violations:
        print(f"  ! {violation.message}")
    print(f"{len(violations)} violation(s)")
    if args.csv:
        from .viz import markers_to_csv

        args.csv.write_text(markers_to_csv(problem))
        print(f"wrote {args.csv}")
    return 0 if not violations else 1


def _perf_setup(args: argparse.Namespace):
    """(executor, database) honouring --workers / --cache-dir / --no-cache.

    The executor is ``None`` for serial runs; the database always exists
    and carries a persistent tier unless ``--no-cache`` was given.
    """
    from .coupling import CouplingDatabase
    from .parallel import CouplingExecutor, PersistentCouplingCache

    executor = CouplingExecutor(workers=args.workers) if args.workers > 1 else None
    persistent = None
    if not args.no_cache:
        persistent = PersistentCouplingCache(cache_dir=args.cache_dir)
    return executor, CouplingDatabase(persistent=persistent)


def _cmd_rules(args: argparse.Namespace) -> int:
    from .rules import RuleSet, derive_pemd

    problem = _load(args.problem)
    # Field-relevant parts: meaningful stray field (moment above noise).
    relevant = [
        (ref, comp.component)
        for ref, comp in problem.components.items()
        if comp.component.current_path.magnetic_moment().norm() > 1e-6
    ]
    executor, database = _perf_setup(args)
    derivation_cache: dict[tuple[str, str], object] = {}
    rules = list(problem.rules.min_distance)
    known = {r.pair() for r in rules}
    derived = 0
    try:
        for i in range(len(relevant)):
            for j in range(i + 1, len(relevant)):
                if derived >= args.max_pairs:
                    break
                ref_a, comp_a = relevant[i]
                ref_b, comp_b = relevant[j]
                if tuple(sorted((ref_a, ref_b))) in known:
                    continue
                type_key = tuple(sorted((comp_a.part_number, comp_b.part_number)))
                derivation = derivation_cache.get(type_key)
                if derivation is None:
                    derivation = derive_pemd(
                        comp_a,
                        comp_b,
                        args.k_threshold,
                        executor=executor,
                        database=database,
                    )
                    derivation_cache[type_key] = derivation
                rule = derivation.rule(ref_a, ref_b)  # type: ignore[attr-defined]
                rules.append(rule)
                derived += 1
                print(
                    f"  {ref_a}-{ref_b}: PEMD {rule.pemd * 1e3:.1f} mm "
                    f"(residual {rule.residual:.2f})"
                )
    finally:
        if executor is not None:
            executor.close()
    stats = database.stats
    print(
        f"coupling cache: {stats.hits} hit(s) ({stats.persistent_hits} from "
        f"disk), {stats.misses} field solve(s)"
    )
    problem.rules = RuleSet(
        min_distance=rules,
        clearance=problem.rules.clearance,
        groups=problem.rules.groups,
        net_lengths=problem.rules.net_lengths,
    )
    print(f"derived {derived} rule(s), total {len(rules)}")
    if args.output:
        _save(problem, args.output, f"rules for {args.problem.name}")
        print(f"wrote {args.output}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from .placement.compaction import compact_layout

    problem = _load(args.problem)
    result = compact_layout(problem, step=args.step_mm * 1e-3)
    print(
        f"compaction: {result.moves} moves in {result.passes} pass(es); "
        f"area {result.area_before * 1e4:.2f} -> {result.area_after * 1e4:.2f} cm^2 "
        f"({result.reduction * 100:.1f}% smaller)"
    )
    if args.output:
        _save(problem, args.output, f"compacted from {args.problem.name}")
        print(f"wrote {args.output}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .converters import BuckConverterDesign
    from .core import EmiDesignFlow
    from .viz import render_board_svg, spectrum_to_csv

    from .parallel import default_cache_dir

    out = args.out_dir
    out.mkdir(parents=True, exist_ok=True)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    flow = EmiDesignFlow(
        BuckConverterDesign(), workers=args.workers, cache_dir=cache_dir
    )
    try:
        evaluations = flow.compare_layouts()
    finally:
        flow.close()
    stats = flow.coupling_stats
    print(
        f"coupling cache: {stats.hits} hit(s) ({stats.persistent_hits} from "
        f"disk), {stats.misses} field solve(s)"
    )
    for name, evaluation in evaluations.items():
        print(
            f"{name}: {evaluation.violations} violations, "
            f"CISPR margin {evaluation.worst_margin_db:+.1f} dB"
        )
        (out / f"{name}.svg").write_text(
            render_board_svg(evaluation.problem, title=name)
        )
    (out / "spectra.csv").write_text(
        spectrum_to_csv({n: e.spectrum for n, e in evaluations.items()})
    )
    from .core import flow_report

    (out / "report.md").write_text(flow_report(flow, evaluations))
    print(f"artifacts in {out}/")
    return 0


_COMMANDS = {
    "check": _cmd_check,
    "lint-src": _cmd_lint_src,
    "place": _cmd_place,
    "drc": _cmd_drc,
    "rules": _cmd_rules,
    "compact": _cmd_compact,
    "demo": _cmd_demo,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    When ``--trace`` or ``--metrics-out`` is given, the command runs under
    a fresh global tracer; the resulting run report is printed as a table
    and/or written as JSON after the command finishes (also on failure, so
    partial runs can be diagnosed).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    want_metrics = getattr(args, "trace", False) or (
        getattr(args, "metrics_out", None) is not None
    )
    if not want_metrics:
        return _COMMANDS[args.command](args)

    # Fail fast: don't run a long command only to lose its report.
    if args.metrics_out is not None:
        parent = Path(args.metrics_out).resolve().parent
        if not parent.is_dir():
            parser.error(f"--metrics-out: directory does not exist: {parent}")

    from .obs import disable, enable

    tracer = enable(meta={"command": args.command, "argv": list(argv or sys.argv[1:])})
    try:
        return _COMMANDS[args.command](args)
    finally:
        disable()
        report = tracer.report()
        if args.metrics_out is not None:
            report.write(args.metrics_out)
            print(f"wrote {args.metrics_out}")
        if args.trace:
            print(report.table())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
