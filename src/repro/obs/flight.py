"""The flight recorder: one self-contained HTML artifact per run.

``repro-emi perf flight`` folds everything the obs stack knows about a
run into a single dependency-free HTML file that opens anywhere:

* the run's metadata (command, argv, ``started_at``, status);
* the span tree with per-span wall bars (fraction of the run);
* counter totals and gauges;
* the streamed event timeline (``--events-out`` JSONL, when given):
  an SVG strip of stage transitions over wall time plus an event table
  (head and tail when the log is long);
* recent-history sparklines from :class:`~repro.obs.PerfHistory`
  (wall-time trajectory of the run's series);
* the :func:`~repro.obs.compare` regression verdict against that
  history.

Pure function of its inputs — no timestamps are invented here, so the
artifact is reproducible from the same report/event/history files.
"""

from __future__ import annotations

import html
import json
from typing import Any

from .histogram import Histogram, bucket_label
from .history import HistoryRecord
from .regress import RegressionVerdict
from .report import RunReport
from .tracer import Span

__all__ = ["render_flight_html"]

#: Event-table size guard: show this many head and tail rows when the
#: log is longer than their sum.
_EVENT_TABLE_HEAD = 120
_EVENT_TABLE_TAIL = 60

_CSS = """
body { font: 14px/1.45 -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: .15rem .6rem; border-bottom: 1px solid #e4e4e4; }
th { background: #f4f4f4; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code, .mono { font-family: ui-monospace, "SF Mono", Menlo, monospace; font-size: 12px; }
.bar { display: inline-block; height: .7em; background: #4878a8; vertical-align: baseline; }
.indent { color: #999; }
.ok { color: #1a7a2e; } .bad { color: #b3261e; } .muted { color: #888; }
.kind-stage { background: #fff3d6; }
pre { background: #f7f7f7; padding: .6rem; overflow-x: auto; font-size: 12px; }
svg { display: block; }
summary { cursor: pointer; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt_num(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


def _span_rows(
    span: Span, total: float, depth: int, rows: list[str]
) -> None:
    pct = 100.0 * span.wall_s / total if total > 0 else 0.0
    indent = '<span class="indent">' + "&nbsp;" * (2 * depth) + "</span>"
    rows.append(
        "<tr>"
        f'<td class="mono">{indent}{_esc(span.name)}</td>'
        f'<td class="num">{span.count}</td>'
        f'<td class="num">{span.wall_s:.4f}</td>'
        f'<td class="num">{pct:.1f}</td>'
        f'<td><span class="bar" style="width:{max(pct, 0.0) * 3:.0f}px"></span></td>'
        "</tr>"
    )
    for child in span.children.values():
        _span_rows(child, total, depth + 1, rows)


def _kv_table(items: dict[str, Any], value_class: str = "num") -> str:
    rows = "".join(
        f'<tr><td class="mono">{_esc(k)}</td>'
        f'<td class="{value_class}">{_esc(_fmt_num(v) if isinstance(v, (int, float)) else v)}</td></tr>'
        for k, v in sorted(items.items())
    )
    return f"<table><tbody>{rows}</tbody></table>"


def _sparkline(values: list[float], width: int = 260, height: int = 44) -> str:
    """An inline SVG polyline of a series (last point highlighted)."""
    if not values:
        return '<span class="muted">no history</span>'
    lo, hi = min(values), max(values)
    spread = hi - lo
    if spread <= 0.0:  # flat series: draw a horizontal line
        spread = 1.0
    pad = 4.0
    n = len(values)
    step = (width - 2 * pad) / max(n - 1, 1)
    points = [
        (
            pad + i * step,
            height - pad - (height - 2 * pad) * (v - lo) / spread,
        )
        for i, v in enumerate(values)
    ]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    last_x, last_y = points[-1]
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="history sparkline ({n} runs)">'
        f'<polyline points="{path}" fill="none" stroke="#4878a8" stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" fill="#b3261e"/>'
        "</svg>"
    )


def _stage_strip(events: list[dict[str, Any]], width: int = 900) -> str:
    """An SVG strip of stage start/done marks over wall time."""
    stamped = [e for e in events if isinstance(e.get("ts"), (int, float))]
    if not stamped:
        return ""
    t0 = min(float(e["ts"]) for e in stamped)
    t1 = max(float(e["ts"]) for e in stamped)
    span = t1 - t0
    if span <= 0.0:  # single-instant log: collapse to the left edge
        span = 1.0
    stages = [e for e in stamped if e.get("kind") == "stage"]
    height = 46
    marks: list[str] = []
    open_at: dict[str, float] = {}
    for event in stages:
        name = str(event.get("name", ""))
        status = str(event.get("attrs", {}).get("status", ""))
        x = 20 + (width - 40) * (float(event["ts"]) - t0) / span
        if status == "start":
            open_at[name] = x
            continue
        x0 = open_at.pop(name, x)
        color = "#4878a8" if status == "done" else "#b3261e"
        marks.append(
            f'<rect x="{x0:.1f}" y="12" width="{max(x - x0, 2.0):.1f}" '
            f'height="14" rx="2" fill="{color}" fill-opacity="0.75">'
            f"<title>{_esc(name)} ({_esc(status)})</title></rect>"
        )
        marks.append(
            f'<text x="{x0:.1f}" y="40" font-size="10" fill="#555">'
            f"{_esc(name)}</text>"
        )
    # Stages still open at the end of the log render to the right edge.
    for name, x0 in open_at.items():
        marks.append(
            f'<rect x="{x0:.1f}" y="12" width="{max(width - 20 - x0, 2.0):.1f}" '
            'height="14" rx="2" fill="#999" fill-opacity="0.6">'
            f"<title>{_esc(name)} (open)</title></rect>"
        )
    return (
        f'<svg width="{width}" height="{height}">'
        f'<line x1="20" y1="33" x2="{width - 20}" y2="33" stroke="#ccc"/>'
        + "".join(marks)
        + '<text x="20" y="10" font-size="10" fill="#888">0.0 s</text>'
        f'<text x="{width - 70}" y="10" font-size="10" fill="#888">'
        f"{span:.1f} s</text></svg>"
    )


def _event_rows(events: list[dict[str, Any]], t0: float) -> str:
    rows = []
    for event in events:
        ts = event.get("ts")
        rel = f"{float(ts) - t0:8.3f}" if isinstance(ts, (int, float)) else "?"
        kind = _esc(event.get("kind", "?"))
        value = event.get("value")
        rows.append(
            f'<tr class="kind-{kind}">'
            f'<td class="num">{event.get("seq", "?")}</td>'
            f'<td class="num mono">{rel}</td>'
            f"<td>{kind}</td>"
            f'<td class="mono">{_esc(event.get("name", ""))}</td>'
            f'<td class="num">{_fmt_num(value) if isinstance(value, (int, float)) else ""}</td>'
            f'<td class="mono muted">{_esc(json.dumps(event.get("attrs", {}), sort_keys=True)) if event.get("attrs") else ""}</td>'
            "</tr>"
        )
    return "".join(rows)


def _events_section(events: list[dict[str, Any]]) -> str:
    stamped = [e for e in events if isinstance(e.get("ts"), (int, float))]
    t0 = min((float(e["ts"]) for e in stamped), default=0.0)
    kinds: dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
    summary = ", ".join(f"{k}: {v}" for k, v in sorted(kinds.items()))
    if len(events) > _EVENT_TABLE_HEAD + _EVENT_TABLE_TAIL:
        head = events[:_EVENT_TABLE_HEAD]
        tail = events[-_EVENT_TABLE_TAIL:]
        elided = len(events) - len(head) - len(tail)
        body = (
            _event_rows(head, t0)
            + f'<tr><td colspan="6" class="muted">… {elided} event(s) elided …</td></tr>'
            + _event_rows(tail, t0)
        )
    else:
        body = _event_rows(events, t0)
    return (
        f"<p>{len(events)} event(s) — {_esc(summary)}</p>"
        + _stage_strip(events)
        + "<details><summary>event table</summary><table><thead><tr>"
        '<th class="num">seq</th><th class="num">t [s]</th><th>kind</th>'
        '<th>name</th><th class="num">value</th><th>attrs</th>'
        f"</tr></thead><tbody>{body}</tbody></table></details>"
    )


def _histogram_bars(hist: Histogram, width: int = 360) -> str:
    """Inline SVG bar strip of a histogram's occupied bucket range."""
    occupied = [i for i, n in enumerate(hist.counts) if n > 0]
    if not occupied:
        return ""
    lo, hi = occupied[0], occupied[-1]
    shown = hist.counts[lo : hi + 1]
    peak = max(shown)
    height = 40
    bar_w = max((width - 8) / max(len(shown), 1), 2.0)
    bars = []
    for i, n in enumerate(shown):
        h = (height - 14) * n / peak if peak else 0.0
        x = 4 + i * bar_w
        idx = lo + i
        label = (
            f"&le; {bucket_label(hist.boundaries[idx])} s"
            if idx < len(hist.boundaries)
            else "&gt; last bucket"
        )
        bars.append(
            f'<rect x="{x:.1f}" y="{height - 4 - h:.1f}" '
            f'width="{max(bar_w - 1.5, 1.0):.1f}" height="{max(h, 1.0):.1f}" '
            f'fill="#4878a8"><title>{label}: {n}</title></rect>'
        )
    return f'<svg width="{width}" height="{height}">{"".join(bars)}</svg>'


def _histograms_section(histograms: dict[str, Histogram]) -> str:
    rows = []
    for name in sorted(histograms):
        hist = histograms[name]
        percentile = hist.percentile
        rows.append(
            "<tr>"
            f'<td class="mono">{_esc(name)}</td>'
            f'<td class="num">{hist.count}</td>'
            f'<td class="num">{percentile(0.50):.6f}</td>'
            f'<td class="num">{percentile(0.95):.6f}</td>'
            f'<td class="num">{percentile(0.99):.6f}</td>'
            f"<td>{_histogram_bars(hist)}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>histogram</th>"
        '<th class="num">count</th><th class="num">p50 [s]</th>'
        '<th class="num">p95 [s]</th><th class="num">p99 [s]</th>'
        "<th>distribution</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _history_section(history: list[HistoryRecord]) -> str:
    walls = [record.wall_s for record in history]
    rows = "".join(
        f'<tr><td class="mono">{_esc(r.recorded_at)}</td>'
        f'<td class="mono">{_esc(r.git_sha[:10])}</td>'
        f'<td class="num">{r.wall_s:.3f}</td></tr>'
        for r in history[-8:]
    )
    return (
        f"<p>wall-time trajectory, {len(history)} stored run(s):</p>"
        + _sparkline(walls)
        + "<details><summary>recent records</summary><table><thead>"
        '<tr><th>recorded</th><th>git</th><th class="num">wall [s]</th></tr>'
        f"</thead><tbody>{rows}</tbody></table></details>"
    )


def _verdict_section(verdict: RegressionVerdict) -> str:
    css = "ok" if verdict.ok else "bad"
    return (
        f'<p class="{css}"><strong>{_esc(verdict.summary())}</strong></p>'
        f"<pre>{_esc(verdict.table(show_ok=False) or '(all metrics within thresholds)')}</pre>"
    )


def render_flight_html(
    report: RunReport,
    events: list[dict[str, Any]] | None = None,
    history: list[HistoryRecord] | None = None,
    verdict: RegressionVerdict | None = None,
    title: str = "repro-emi flight recorder",
) -> str:
    """Render the self-contained flight-recorder HTML for one run.

    Args:
        report: the traced run (``--metrics-out`` / ``BENCH_*.json``).
        events: parsed ``--events-out`` JSONL lines, in file order
            (pass ``None`` when no event log exists).
        history: recent :class:`~repro.obs.PerfHistory` records of the
            same series, oldest first, for the sparkline section.
        verdict: the regression verdict of this run against its
            baseline, when one was computed.
        title: the document title.
    """
    span_rows: list[str] = []
    total = report.root.wall_s or 1e-30
    _span_rows(report.root, total, 0, span_rows)
    sections = [
        f"<h1>{_esc(title)}</h1>",
        "<h2>Run</h2>",
        _kv_table(dict(report.meta), value_class="mono"),
        "<h2>Span tree</h2>",
        "<table><thead><tr><th>span</th>"
        '<th class="num">calls</th><th class="num">wall [s]</th>'
        '<th class="num">%</th><th></th></tr></thead>'
        f"<tbody>{''.join(span_rows)}</tbody></table>",
    ]
    totals = report.totals()
    if totals:
        sections += ["<h2>Counters</h2>", _kv_table(dict(totals))]
    if report.gauges:
        sections += ["<h2>Gauges</h2>", _kv_table(dict(report.gauges))]
    recorded = {k: h for k, h in report.histograms.items() if h.count > 0}
    if recorded:
        sections += ["<h2>Histograms</h2>", _histograms_section(recorded)]
    if events is not None:
        sections += ["<h2>Event timeline</h2>", _events_section(events)]
    if history:
        sections += ["<h2>Recent history</h2>", _history_section(history)]
    if verdict is not None:
        sections += ["<h2>Regression verdict</h2>", _verdict_section(verdict)]
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f"<body>\n{body}\n</body></html>\n"
    )
