"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

Two interchange formats for a :class:`~repro.obs.RunReport`:

* :func:`to_chrome_trace` — the Trace Event Format consumed by Perfetto
  (https://ui.perfetto.dev) and ``about://tracing``.  The profile tree
  aggregates spans by name (it is not an event log), so the exporter
  *synthesises* a timeline: each span becomes one complete (``"X"``)
  event whose duration is its accumulated wall time, with children laid
  out back-to-back from their parent's start.  Relative widths and
  nesting are faithful; individual entry timestamps are not recorded and
  therefore not reconstructed.  ``parallel.worker`` subtrees sum CPU
  time across processes, so they may render wider than their parent
  span — that is real concurrency, not an exporter bug.

* :func:`to_prometheus` — Prometheus/OpenMetrics-style text exposition of
  the report's scalars (span walls and call counts, counter totals,
  gauges), for scraping run artefacts into existing dashboards.

Both are pure functions of the report — deterministic output, pinned by
a golden-file test.
"""

from __future__ import annotations

import json
import re
from typing import Any

from .report import RunReport
from .tracer import Span

__all__ = ["to_chrome_trace", "chrome_trace_json", "to_prometheus"]

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _emit_span(
    span: Span, start_us: float, events: list[dict[str, Any]]
) -> None:
    duration_us = span.wall_s * 1e6
    event: dict[str, Any] = {
        "name": span.name,
        "cat": "span",
        "ph": "X",
        "ts": start_us,
        "dur": duration_us,
        "pid": 1,
        "tid": 1,
        "args": {"count": span.count},
    }
    if span.counters:
        event["args"]["counters"] = dict(sorted(span.counters.items()))
    events.append(event)
    offset = start_us
    for child in span.children.values():
        _emit_span(child, offset, events)
        offset += child.wall_s * 1e6


def to_chrome_trace(report: RunReport) -> dict[str, Any]:
    """The report as a Chrome Trace Event Format object.

    Returns:
        ``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData":
        {...}}`` — load the JSON-serialised form in Perfetto or
        ``about://tracing``.  Timestamps/durations are microseconds (the
        format's unit); ``otherData`` carries the report's meta, gauges
        and whole-tree counter totals.
    """
    events: list[dict[str, Any]] = []
    _emit_span(report.root, 0.0, events)
    other_data: dict[str, Any] = {
        "meta": dict(report.meta),
        "gauges": dict(report.gauges),
        "counters_total": report.totals(),
    }
    histograms = {
        name: hist.snapshot()
        for name, hist in report.histograms.items()
        if hist.count > 0
    }
    if histograms:
        other_data["histograms"] = histograms
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


def chrome_trace_json(report: RunReport, indent: int = 2) -> str:
    """:func:`to_chrome_trace` serialised to a stable JSON string."""
    return json.dumps(to_chrome_trace(report), indent=indent, sort_keys=True)


def _metric_escape(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _number(value: float) -> str:
    """Render a sample value (integers without the trailing ``.0``)."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(report: RunReport, prefix: str = "repro_emi") -> str:
    """The report's scalars in Prometheus text exposition format.

    Metric families (``<prefix>_…``):

    * ``span_wall_seconds{path="run/flow.rules"}`` — accumulated wall
      time per span path;
    * ``span_calls_total{path=…}`` — entry count per span path;
    * ``counter_total{counter="peec.filament_pairs"}`` — whole-tree
      counter totals;
    * per-histogram families — each recorded
      :class:`~repro.obs.Histogram` becomes a proper Prometheus
      histogram: ``<prefix>_<name>_bucket{le=…}`` (cumulative, ending
      at ``le="+Inf"``), ``<prefix>_<name>_sum`` and
      ``<prefix>_<name>_count``, with dots in the metric name mapped
      to underscores (``service.job_latency_seconds`` →
      ``<prefix>_service_job_latency_seconds_bucket``);
    * ``gauge{name="mem.flow.rules.peak_bytes"}`` — report gauges, plus
      two *derived* cache-efficiency gauges when the corresponding
      counters are present: ``cache.hit_ratio`` (persistent on-disk
      tier: ``cache.hit`` over ``cache.hit + cache.miss + cache.stale``
      — stale entries are re-solved, so they count as misses) and
      ``coupling.cache_hit_ratio`` (the in-memory tier, which includes
      persistent hits promoted by ``coupling.cache_hits``).

    Args:
        report: the run to export.
        prefix: metric-name prefix (no trailing underscore).
    """
    walls: list[tuple[str, float, float]] = [
        ("/".join(path), span.wall_s, float(span.count))
        for path, span in report.root.walk_paths()
    ]
    lines: list[str] = []

    lines.append(f"# TYPE {prefix}_span_wall_seconds gauge")
    for path, wall, _count in walls:
        lines.append(
            f'{prefix}_span_wall_seconds{{path="{_metric_escape(path)}"}} '
            f"{_number(wall)}"
        )
    lines.append(f"# TYPE {prefix}_span_calls_total counter")
    for path, _wall, count in walls:
        lines.append(
            f'{prefix}_span_calls_total{{path="{_metric_escape(path)}"}} '
            f"{_number(count)}"
        )

    totals = report.totals()
    if totals:
        lines.append(f"# TYPE {prefix}_counter_total counter")
        for name in sorted(totals):
            lines.append(
                f'{prefix}_counter_total{{counter="{_metric_escape(name)}"}} '
                f"{_number(totals[name])}"
            )
    gauges = dict(report.gauges)
    gauges.update(_derived_cache_gauges(totals))
    if gauges:
        lines.append(f"# TYPE {prefix}_gauge gauge")
        for name in sorted(gauges):
            lines.append(
                f'{prefix}_gauge{{name="{_metric_escape(name)}"}} '
                f"{_number(gauges[name])}"
            )
    recorded = {
        name: hist for name, hist in report.histograms.items() if hist.count > 0
    }
    append = lines.append
    for name in sorted(recorded):
        hist = recorded[name]
        family = f"{prefix}_{_METRIC_NAME_RE.sub('_', name)}"
        append(f"# TYPE {family} histogram")
        for le, cumulative in hist.cumulative():
            append(f'{family}_bucket{{le="{le}"}} {cumulative}')
        append(f"{family}_sum {_number(hist.total)}")
        append(f"{family}_count {hist.count}")
    return "\n".join(lines) + "\n"


def _derived_cache_gauges(totals: dict[str, float]) -> dict[str, float]:
    """Cache hit-rate gauges derived from the raw hit/miss counters.

    The persistent tier counts ``cache.hit`` / ``cache.miss`` /
    ``cache.stale`` (a stale entry forces a re-solve, so it rates as a
    miss); the in-memory coupling tier counts ``coupling.cache_hits`` /
    ``coupling.cache_misses`` (persistent promotions included in the
    hits, see CacheStats.persistent_hits).  A tier with no lookups
    emits nothing — a 0/0 ratio would read as "always missing".
    """
    derived: dict[str, float] = {}
    disk_hits = totals.get("cache.hit", 0.0)
    disk_lookups = (
        disk_hits + totals.get("cache.miss", 0.0) + totals.get("cache.stale", 0.0)
    )
    if disk_lookups > 0:
        derived["cache.hit_ratio"] = disk_hits / disk_lookups
    mem_hits = totals.get("coupling.cache_hits", 0.0)
    mem_lookups = mem_hits + totals.get("coupling.cache_misses", 0.0)
    if mem_lookups > 0:
        derived["coupling.cache_hit_ratio"] = mem_hits / mem_lookups
    return derived
