"""The telemetry bus: thread-safe event fan-out to pluggable subscribers.

:class:`EventBus` is the streaming counterpart of the aggregating
:class:`~repro.obs.Tracer`: the tracer *also* publishes every span
entry/exit, counter bump and gauge write onto the bus when one is
attached (``obs.enable(bus=...)``), and other producers — the flow's
stage transitions, the parallel executor's worker chunk events, the
resource sampler — publish directly.  Subscribers are plain callables
``(TelemetryEvent) -> None``; three ship here:

* :class:`JsonlSink` — append each event as one JSON line
  (the CLI's ``--events-out``);
* :class:`EventRingBuffer` — a bounded in-memory buffer with a
  ``drain()`` / ``since()`` cursor API, the transport-ready source a
  future service layer can poll or bridge to SSE;
* :class:`LiveRenderer` — a single-line console progress display
  (the CLI's ``--live``): current stage, open span path, elapsed
  time, event/counter rates and the coupling-cache hit-rate.

Delivery is serialised under the bus lock, so every subscriber observes
events in strictly increasing ``seq`` order; subscribers must therefore
be fast and must not publish back into the bus.  A subscriber that
raises is counted (``EventBus.subscriber_errors``) and skipped, never
fatal — telemetry must not take down the run it watches.
"""

from __future__ import annotations

import contextlib
import json
import sys
import threading
import time
from collections import deque
from collections.abc import Callable
from pathlib import Path
from typing import Any, TextIO

from .events import EVENT_KINDS, TelemetryEvent

__all__ = [
    "EventBus",
    "JsonlSink",
    "EventRingBuffer",
    "LiveRenderer",
]

Subscriber = Callable[[TelemetryEvent], None]


class EventBus:
    """Thread-safe publish/subscribe hub for :class:`TelemetryEvent`.

    Sequence numbers are assigned under the bus lock, so they are
    strictly monotonic and gap-free across all publishing threads for
    the lifetime of one bus.  A closed bus drops publishes silently
    (producers may outlive the run teardown by a few instructions).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._subscribers: list[Subscriber] = []
        self._closed = False
        #: Exceptions swallowed while delivering to subscribers.
        self.subscriber_errors = 0
        #: Correlation id stamped onto every published event once set
        #: (a :class:`~repro.obs.Tracer` sets it on attach; the service
        #: layer sets it per job before any event flows).
        self.run_id = ""

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register a subscriber; returns it (handy for chaining)."""
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a subscriber (no-op when it is not registered)."""
        with self._lock, contextlib.suppress(ValueError):
            self._subscribers.remove(subscriber)

    def publish(
        self,
        kind: str,
        name: str,
        *,
        path: str = "",
        value: float | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> TelemetryEvent | None:
        """Stamp ``seq``/``ts`` onto an event and deliver it to subscribers.

        Returns:
            The published event, or ``None`` when the bus is closed.

        Raises:
            ValueError: for a ``kind`` outside :data:`EVENT_KINDS`.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        with self._lock:
            if self._closed:
                return None
            self._seq += 1
            event = TelemetryEvent(
                seq=self._seq,
                ts=time.time(),
                kind=kind,
                name=name,
                path=path,
                value=value,
                attrs=dict(attrs) if attrs else {},
                run_id=self.run_id,
            )
            # In-order under-lock delivery is the bus's documented
            # contract (gap-free seq per subscriber); subscribers must be
            # fast and never publish back.
            for subscriber in self._subscribers:
                try:
                    subscriber(event)  # physlint: disable=CON005 -- delivery contract
                except Exception:
                    self.subscriber_errors += 1
        return event

    @property
    def last_seq(self) -> int:
        """The most recently assigned sequence number (0 before any)."""
        with self._lock:
            return self._seq

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Stop accepting publishes and close every closeable subscriber.

        Subscribers exposing a ``close()`` method (sinks, renderers) are
        closed in registration order; errors are swallowed and counted.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            closer = getattr(subscriber, "close", None)
            if closer is None:
                continue
            try:
                closer()
            except Exception:
                # The error count is lock-guarded: publishers on other
                # threads may still be inside publish() right up to the
                # instant they observe _closed.
                with self._lock:
                    self.subscriber_errors += 1


class JsonlSink:
    """Subscriber writing each event as one JSON line to a file.

    Every line is flushed immediately, so the log is tail-able while
    the run is still going and survives a crash up to the last event.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: TextIO | None = self.path.open("w", encoding="utf-8")
        #: Events written so far.
        self.events_written = 0

    def __call__(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.close()


class EventRingBuffer:
    """Bounded in-memory event buffer with a cursor API.

    The service layer's event source: subscribe one of these to the
    bus, then poll :meth:`since` with the last seen ``seq`` (an SSE
    handler's resume cursor) or :meth:`drain` for take-all semantics.
    When the buffer overflows, the oldest events are evicted and
    counted in :attr:`dropped` — a consumer that observes a gap between
    its cursor and the first returned ``seq`` knows it fell behind.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[TelemetryEvent] = deque(maxlen=capacity)
        #: Events evicted due to overflow.
        self.dropped = 0

    def __call__(self, event: TelemetryEvent) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def drain(self) -> list[TelemetryEvent]:
        """Return and remove every buffered event (oldest first)."""
        with self._lock:
            out = list(self._events)
            self._events.clear()
        return out

    def since(self, seq: int) -> list[TelemetryEvent]:
        """Events with ``event.seq > seq``, oldest first (non-destructive)."""
        with self._lock:
            return [e for e in self._events if e.seq > seq]

    def snapshot(self) -> list[TelemetryEvent]:
        """A non-destructive copy of the buffer (oldest first)."""
        with self._lock:
            return list(self._events)


class LiveRenderer:
    """Single-line console progress display driven by the event stream.

    Maintains a compact rolling status — elapsed wall time, the current
    flow stage, the innermost open span path, total event and counter
    throughput, worker chunk progress and the coupling-cache hit-rate —
    and repaints it (carriage-return overwrite) at most every
    ``min_interval_s``.  Stage transitions always repaint immediately
    and stick as their own lines, so the scrollback reads as a stage
    log.  Writes to ``stream`` (default stderr, keeping stdout clean
    for the command's own output).
    """

    #: Counter names that feed the cache hit-rate readout.
    _HIT_COUNTERS = ("coupling.cache_hits",)
    _MISS_COUNTERS = ("coupling.cache_misses",)

    def __init__(
        self,
        stream: TextIO | None = None,
        min_interval_s: float = 0.2,
        width: int = 100,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.width = width
        self._t0 = time.monotonic()
        self._last_paint = 0.0
        self._events_seen = 0
        self._stage = ""
        self._span_path = ""
        self._counters: dict[str, float] = {}
        self._chunks_total = 0
        self._chunks_done = 0
        self._rss_bytes: float | None = None
        self._closed = False

    # -- event ingestion ---------------------------------------------------

    def __call__(self, event: TelemetryEvent) -> None:
        if self._closed:
            return
        self._events_seen += 1
        repaint_now = False
        if event.kind == "stage":
            status = str(event.attrs.get("status", "start"))
            if status == "start":
                self._stage = event.name
            elif self._stage == event.name:
                self._stage = f"{event.name}:{status}"
            # Pin the finished line into scrollback before the new stage.
            self._println(self._compose())
            repaint_now = True
        elif event.kind == "span_open":
            self._span_path = event.path
        elif event.kind == "span_close":
            self._span_path = event.path.rsplit("/", 1)[0] if "/" in event.path else ""
        elif event.kind == "counter":
            self._counters[event.name] = (
                self._counters.get(event.name, 0.0) + (event.value or 0.0)
            )
        elif event.kind == "gauge":
            if event.name == "proc.rss_peak_bytes" and event.value is not None:
                self._rss_bytes = event.value
        elif event.kind == "log":
            if event.name == "parallel.map_start":
                self._chunks_total += int(event.attrs.get("chunks", 0))
            elif event.name == "parallel.chunk_done":
                self._chunks_done += 1
        now = time.monotonic()
        if repaint_now or now - self._last_paint >= self.min_interval_s:
            self._paint()

    # -- rendering ---------------------------------------------------------

    def _cache_rate(self) -> float | None:
        hits = sum(self._counters.get(name, 0.0) for name in self._HIT_COUNTERS)
        misses = sum(self._counters.get(name, 0.0) for name in self._MISS_COUNTERS)
        lookups = hits + misses
        return hits / lookups if lookups > 0 else None

    def _compose(self) -> str:
        elapsed = time.monotonic() - self._t0
        parts = [f"[{elapsed:7.1f}s]"]
        if self._stage:
            parts.append(self._stage)
        if self._span_path:
            parts.append(self._span_path)
        rate = self._events_seen / elapsed if elapsed > 0 else 0.0
        parts.append(f"ev {self._events_seen} ({rate:.0f}/s)")
        if self._chunks_total:
            parts.append(f"chunks {self._chunks_done}/{self._chunks_total}")
        cache = self._cache_rate()
        if cache is not None:
            parts.append(f"cache {cache * 100:.0f}%")
        if self._rss_bytes is not None:
            parts.append(f"rss {self._rss_bytes / 1e6:.0f}MB")
        line = " | ".join(parts)
        if len(line) > self.width:
            line = line[: self.width - 1] + "…"
        return line

    def _paint(self) -> None:
        self._last_paint = time.monotonic()
        try:
            self.stream.write("\r\x1b[2K" + self._compose())
            self.stream.flush()
        except (OSError, ValueError):
            self._closed = True

    def _println(self, line: str) -> None:
        try:
            self.stream.write("\r\x1b[2K" + line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self._closed = True

    def close(self) -> None:
        """Paint the final state and terminate the status line."""
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(OSError, ValueError):
            self.stream.write("\r\x1b[2K" + self._compose() + "\n")
            self.stream.flush()
