"""ULID-like run-correlation identifiers.

Every traced run mints one ``run_id`` — a 26-character Crockford
base32 string encoding a 48-bit millisecond timestamp followed by
80 random bits, the ULID layout.  The id is stamped into
``RunReport.meta["run_id"]``, every :class:`~repro.obs.TelemetryEvent`,
the perf-history row (via the embedded report meta), artifact
filenames (the CLI's ``{run_id}`` placeholder) and the service's
``X-Repro-Run-Id`` response header — so any artifact of a run can be
joined to any other by one identifier.

Why ULID-shaped rather than UUID4: the ids sort lexicographically by
creation time, which makes ``perf history`` listings and artifact
directories chronologically ordered for free, while the 80 random
bits keep collisions out of reach for any realistic job volume.

Stdlib only; uses :func:`os.urandom` for the random component.
"""

from __future__ import annotations

import os
import time

__all__ = ["new_run_id", "is_run_id", "RUN_ID_LENGTH"]

#: Crockford base32 alphabet (no I, L, O, U — unambiguous in logs).
_ALPHABET = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"
_ALPHABET_SET = frozenset(_ALPHABET)

#: Canonical id length: 10 chars of timestamp + 16 chars of randomness.
RUN_ID_LENGTH = 26


def _encode(value: int, length: int) -> str:
    chars = []
    for _ in range(length):
        chars.append(_ALPHABET[value & 0x1F])
        value >>= 5
    return "".join(reversed(chars))


def new_run_id(timestamp_ms: int | None = None) -> str:
    """Mint a fresh 26-character run id (time-sortable, collision-safe).

    Args:
        timestamp_ms: millisecond UNIX timestamp to encode; defaults to
            the current time.  Exposed for deterministic tests.
    """
    if timestamp_ms is None:
        timestamp_ms = time.time_ns() // 1_000_000
    timestamp_ms &= (1 << 48) - 1
    randomness = int.from_bytes(os.urandom(10), "big")
    return _encode(timestamp_ms, 10) + _encode(randomness, 16)


def is_run_id(value: str) -> bool:
    """True when ``value`` is a canonical 26-char Crockford base32 id."""
    return len(value) == RUN_ID_LENGTH and all(
        c in _ALPHABET_SET for c in value
    )
