"""Observability: structured tracing, stage metrics and run reports.

Zero-dependency (stdlib-only) instrumentation for the EMI design flow:

* :class:`Tracer` / :class:`Span` — hierarchical wall-time spans with call
  counts and per-span counters, aggregated as a profile tree;
* :class:`NullTracer` — the always-installed default whose operations are
  no-ops, keeping instrumented hot paths free when tracing is off;
* :class:`RunReport` — JSON-serialisable snapshot of a traced run plus a
  human-readable table (the CLI's ``--trace`` / ``--metrics-out`` output
  and the benchmark harness's ``BENCH_*.json`` artefacts);
* :class:`PerfHistory` — append-only JSONL store of run reports keyed by
  (benchmark/command, git SHA, timestamp, host fingerprint): the
  longitudinal perf trajectory behind ``repro-emi perf``;
* :func:`compare` / :class:`RegressionVerdict` — rolling-median baseline
  diffing with configurable :class:`Thresholds` (the ``perf check``
  regression gate);
* :func:`to_chrome_trace` / :func:`to_prometheus` — exporters to the
  Chrome Trace Event Format (Perfetto, ``about://tracing``) and
  Prometheus text exposition.

Usage::

    from repro import obs

    tracer = obs.enable(meta={"command": "demo"})
    ...                      # run instrumented code
    report = obs.disable().report()
    report.write("metrics.json")
    print(report.table())

Span naming and the counter catalogue are documented in
``docs/OBSERVABILITY.md``.
"""

from .export import chrome_trace_json, to_chrome_trace, to_prometheus
from .history import (
    HistoryRecord,
    PerfHistory,
    default_history_path,
    git_sha,
    host_fingerprint,
)
from .regress import Delta, RegressionVerdict, Thresholds, compare
from .report import RunReport
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunReport",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "PerfHistory",
    "HistoryRecord",
    "default_history_path",
    "git_sha",
    "host_fingerprint",
    "Thresholds",
    "Delta",
    "RegressionVerdict",
    "compare",
    "to_chrome_trace",
    "chrome_trace_json",
    "to_prometheus",
]
