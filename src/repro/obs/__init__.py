"""Observability: structured tracing, stage metrics and run reports.

Zero-dependency (stdlib-only) instrumentation for the EMI design flow:

* :class:`Tracer` / :class:`Span` — hierarchical wall-time spans with call
  counts and per-span counters, aggregated as a profile tree;
* :class:`NullTracer` — the always-installed default whose operations are
  no-ops, keeping instrumented hot paths free when tracing is off;
* :class:`RunReport` — JSON-serialisable snapshot of a traced run plus a
  human-readable table (the CLI's ``--trace`` / ``--metrics-out`` output
  and the benchmark harness's ``BENCH_*.json`` artefacts);
* :class:`PerfHistory` — append-only JSONL store of run reports keyed by
  (benchmark/command, git SHA, timestamp, host fingerprint): the
  longitudinal perf trajectory behind ``repro-emi perf``;
* :func:`compare` / :class:`RegressionVerdict` — rolling-median baseline
  diffing with configurable :class:`Thresholds` (the ``perf check``
  regression gate);
* :func:`to_chrome_trace` / :func:`to_prometheus` — exporters to the
  Chrome Trace Event Format (Perfetto, ``about://tracing``) and
  Prometheus text exposition;
* :class:`EventBus` / :class:`TelemetryEvent` — the *streaming* half:
  typed span/counter/gauge/stage/log events fanned out live to
  pluggable subscribers (:class:`JsonlSink`, :class:`EventRingBuffer`,
  :class:`LiveRenderer`) — the CLI's ``--events-out`` / ``--live`` and
  the future service layer's SSE source;
* :class:`ResourceSampler` — background RSS/CPU sampling folded into
  ``proc.*`` gauges;
* :class:`Histogram` — fixed log-spaced-bucket latency distributions
  recorded via :meth:`Tracer.observe`, merged across workers, exported
  as Prometheus ``_bucket``/``_sum``/``_count`` families and
  summarized (p50/p95/p99) in tables and the flight recorder;
* :func:`new_run_id` / :func:`is_run_id` — ULID-like run-correlation
  ids joining a run's report, event stream, perf-history row and
  artifacts;
* :func:`render_flight_html` — the self-contained per-run HTML "flight
  recorder" artifact (``repro-emi perf flight``).

Usage::

    from repro import obs

    tracer = obs.enable(meta={"command": "demo"})
    ...                      # run instrumented code
    report = obs.disable().report()
    report.write("metrics.json")
    print(report.table())

Span naming and the counter catalogue are documented in
``docs/OBSERVABILITY.md``.
"""

from .bus import EventBus, EventRingBuffer, JsonlSink, LiveRenderer
from .events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    TelemetryEvent,
    validate_event_dict,
)
from .export import chrome_trace_json, to_chrome_trace, to_prometheus
from .flight import render_flight_html
from .histogram import DEFAULT_BUCKETS, Histogram, bucket_label
from .history import (
    HistoryRecord,
    PerfHistory,
    default_history_path,
    default_key,
    git_sha,
    host_fingerprint,
)
from .runid import RUN_ID_LENGTH, is_run_id, new_run_id
from .sampler import ResourceSampler, rss_bytes
from .regress import Delta, RegressionVerdict, Thresholds, compare
from .report import RunReport
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_thread_tracer,
    set_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunReport",
    "get_tracer",
    "set_tracer",
    "set_thread_tracer",
    "enable",
    "disable",
    "PerfHistory",
    "HistoryRecord",
    "default_history_path",
    "default_key",
    "git_sha",
    "host_fingerprint",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "TelemetryEvent",
    "validate_event_dict",
    "EventBus",
    "EventRingBuffer",
    "JsonlSink",
    "LiveRenderer",
    "ResourceSampler",
    "rss_bytes",
    "render_flight_html",
    "Thresholds",
    "Delta",
    "RegressionVerdict",
    "compare",
    "to_chrome_trace",
    "chrome_trace_json",
    "to_prometheus",
    "Histogram",
    "DEFAULT_BUCKETS",
    "bucket_label",
    "new_run_id",
    "is_run_id",
    "RUN_ID_LENGTH",
]
