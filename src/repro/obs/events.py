"""The typed telemetry event model — the unit of the streaming obs layer.

Where the profile tree (:mod:`repro.obs.tracer`) *aggregates* — one node
per span name, counters summed — the event stream *narrates*: every span
entry/exit, counter bump, gauge write, flow stage transition and log
message becomes one immutable :class:`TelemetryEvent` with a
process-monotonic sequence number and a wall-clock timestamp.  The
:class:`~repro.obs.EventBus` fans events out to subscribers (JSONL sink,
live console renderer, in-memory ring buffer — the future service
layer's SSE source); this module only defines the payload and its
schema.

Event kinds (``TelemetryEvent.kind``):

* ``span_open`` / ``span_close`` — one tracer span entry / exit;
  ``name`` is the span name, ``path`` the ``/``-joined open-span path
  (``run/flow.rules/parallel.map``); ``span_close`` carries the entry's
  wall time in ``value`` [s].
* ``counter`` — one counter increment; ``value`` is the increment
  (not the running total).
* ``gauge`` — one gauge write; ``value`` is the new value.
* ``observe`` — one histogram observation
  (:meth:`~repro.obs.Tracer.observe`); ``value`` is the observed
  sample (e.g. a latency in seconds), ``name`` the histogram name.
* ``stage`` — a flow stage transition (``check``, ``sensitivity``,
  ``rules``, ``placement``, ``prediction``, ``verification``);
  ``attrs["status"]`` is ``start`` / ``done`` / ``error``.
* ``log`` — free-form structured messages (e.g. the parallel executor's
  ``parallel.chunk_start`` / ``parallel.chunk_done`` worker events).

The JSONL on-disk form (one :meth:`TelemetryEvent.to_dict` object per
line, written by ``--events-out``) is validated by
:func:`validate_event_dict`; ``make events-smoke`` holds every emitted
line to it and to strict ``seq`` monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "TelemetryEvent",
    "validate_event_dict",
]

EVENT_SCHEMA_VERSION = 1

#: The closed set of event kinds; :meth:`EventBus.publish` rejects others.
EVENT_KINDS = frozenset(
    {"span_open", "span_close", "counter", "gauge", "observe", "stage", "log"}
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One immutable streamed observation.

    Attributes:
        seq: bus-assigned sequence number, strictly monotonic per bus
            (dimensionless count; gap-free for a single bus lifetime).
        ts: wall-clock timestamp, seconds since the epoch [s].
        kind: one of :data:`EVENT_KINDS`.
        name: what the event is about (span name, counter name, stage
            name, …).
        path: ``/``-joined open-span path at emission time (empty when
            no span context applies, e.g. sampler gauges).
        value: the numeric payload — increment for ``counter``, value
            for ``gauge``, elapsed seconds for ``span_close``; ``None``
            for kinds without one.
        attrs: free-form structured attributes (stage status, worker
            pid, chunk index, …).  Values must be JSON-serialisable.
        run_id: correlation id of the run that emitted the event
            (stamped by the bus when one is set; empty otherwise).
            Joins the event stream to the run's ``RunReport.meta``,
            perf-history row and artifacts.
    """

    seq: int
    ts: float
    kind: str
    name: str
    path: str = ""
    value: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    run_id: str = ""

    def to_dict(self) -> dict[str, Any]:
        """The JSONL line payload (schema-versioned, stable key set)."""
        out: dict[str, Any] = {
            "schema": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
        }
        if self.path:
            out["path"] = self.path
        if self.value is not None:
            out["value"] = self.value
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.run_id:
            out["run_id"] = self.run_id
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryEvent":
        """Rebuild an event from one parsed JSONL line.

        Raises:
            ValueError: when the payload fails :func:`validate_event_dict`.
        """
        problems = validate_event_dict(data)
        if problems:
            raise ValueError(f"invalid telemetry event: {'; '.join(problems)}")
        value = data.get("value")
        return cls(
            seq=int(data["seq"]),
            ts=float(data["ts"]),
            kind=str(data["kind"]),
            name=str(data["name"]),
            path=str(data.get("path", "")),
            value=None if value is None else float(value),
            attrs=dict(data.get("attrs", {})),
            run_id=str(data.get("run_id", "")),
        )


def validate_event_dict(data: Any) -> list[str]:
    """Schema-check one parsed JSONL event line.

    Returns:
        A list of human-readable problems — empty when the payload is a
        valid event.  Unknown *extra* keys are tolerated (forward
        compatibility); wrong types and unknown kinds are not.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"event must be an object, got {type(data).__name__}"]
    schema = data.get("schema")
    if not isinstance(schema, int) or isinstance(schema, bool):
        problems.append("schema must be an integer")
    elif schema > EVENT_SCHEMA_VERSION:
        problems.append(f"schema {schema} is newer than {EVENT_SCHEMA_VERSION}")
    seq = data.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        problems.append("seq must be a non-negative integer")
    ts = data.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        problems.append("ts must be a number")
    kind = data.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(f"kind must be one of {sorted(EVENT_KINDS)}, got {kind!r}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name must be a non-empty string")
    if "path" in data and not isinstance(data["path"], str):
        problems.append("path must be a string")
    if "value" in data and data["value"] is not None:
        value = data["value"]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append("value must be a number or null")
    if "attrs" in data and not isinstance(data["attrs"], dict):
        problems.append("attrs must be an object")
    if "run_id" in data and not isinstance(data["run_id"], str):
        problems.append("run_id must be a string")
    return problems
