"""Run reports: serialising a trace to JSON and a human-readable table.

A :class:`RunReport` is the frozen outcome of one traced run — the span
tree, the gauges and free-form metadata.  It round-trips through JSON
(``to_json`` / ``from_json``) so the CLI's ``--metrics-out`` files and the
benchmark harness's ``BENCH_*.json`` artefacts can be diffed across
commits, and renders as an aligned text table (``table``) for terminals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .histogram import Histogram
from .tracer import Span

__all__ = ["RunReport"]

SCHEMA_VERSION = 1


def _format_count(value: float) -> str:
    """Counters are logically integers; render them without a trailing .0."""
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


@dataclass
class RunReport:
    """One traced run, ready for serialisation or display.

    Attributes:
        root: the span tree (the synthetic ``run`` root).
        gauges: last-write-wins point-in-time values.
        meta: free-form metadata (command, benchmark name, run_id, …).
        histograms: named latency/size distributions
            (:class:`~repro.obs.Histogram`), keyed by metric name.
    """

    root: Span
    gauges: dict[str, float] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    # -- queries -----------------------------------------------------------

    def find(self, name: str) -> Span | None:
        """First span of that exact name in the tree (pre-order)."""
        return self.root.find(name)

    def totals(self) -> dict[str, float]:
        """Counter totals aggregated over the whole tree."""
        return self.root.total_counters()

    @property
    def run_id(self) -> str:
        """The run's correlation id (empty for pre-run_id reports)."""
        return str(self.meta.get("run_id", ""))

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (schema-versioned).

        The ``histograms`` key is present only when at least one
        histogram recorded data, so reports from runs without
        distributions (and all pre-histogram goldens) keep their exact
        historical byte shape.
        """
        out: dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "gauges": dict(self.gauges),
            "counters_total": self.totals(),
            "spans": self.root.to_dict(),
        }
        recorded = {
            name: hist.to_dict()
            for name, hist in self.histograms.items()
            if hist.count > 0
        }
        if recorded:
            out["histograms"] = recorded
        return out

    def to_json(self, indent: int = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            root=Span.from_dict(data["spans"]),
            gauges={str(k): float(v) for k, v in data.get("gauges", {}).items()},
            meta=dict(data.get("meta", {})),
            histograms={
                str(name): Histogram.from_dict(str(name), payload)
                for name, payload in data.get("histograms", {}).items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a report from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> None:
        """Write the JSON form to ``path`` (a ``pathlib.Path`` or str)."""
        Path(path).write_text(self.to_json() + "\n")

    # -- display -----------------------------------------------------------

    def table(self) -> str:
        """Aligned text rendering: span tree, then counters, then gauges."""
        total = self.root.wall_s or 1e-30
        rows: list[tuple[str, str, str, str]] = []
        for depth, span in self.root.walk():
            rows.append(
                (
                    "  " * depth + span.name,
                    str(span.count),
                    f"{span.wall_s:.4f}",
                    f"{100.0 * span.wall_s / total:.1f}",
                )
            )
        name_w = max(len(r[0]) for r in rows)
        name_w = max(name_w, len("span"))
        lines = [
            f"{'span':<{name_w}}  {'calls':>7}  {'wall [s]':>10}  {'%':>6}",
        ]
        for name, count, wall, pct in rows:
            lines.append(f"{name:<{name_w}}  {count:>7}  {wall:>10}  {pct:>6}")

        totals = self.totals()
        if totals:
            lines.append("")
            lines.append("counters:")
            key_w = max(len(k) for k in totals)
            for key in sorted(totals):
                lines.append(f"  {key:<{key_w}}  {_format_count(totals[key])}")
        recorded = {k: h for k, h in self.histograms.items() if h.count > 0}
        if recorded:
            lines.append("")
            lines.append("histograms:")
            key_w = max(len(k) for k in recorded)
            header = (
                f"  {'name':<{key_w}}  {'count':>7}  {'p50 [s]':>10}  "
                f"{'p95 [s]':>10}  {'p99 [s]':>10}"
            )
            lines.append(header)
            for key in sorted(recorded):
                hist = recorded[key]
                percentile = hist.percentile
                lines.append(
                    f"  {key:<{key_w}}  {hist.count:>7}  "
                    f"{percentile(0.50):>10.6f}  "
                    f"{percentile(0.95):>10.6f}  "
                    f"{percentile(0.99):>10.6f}"
                )
        if self.gauges:
            lines.append("")
            lines.append("gauges:")
            key_w = max(len(k) for k in self.gauges)
            for key in sorted(self.gauges):
                lines.append(f"  {key:<{key_w}}  {self.gauges[key]:g}")
        if self.meta:
            lines.append("")
            lines.append("meta:")
            for key in sorted(self.meta):
                lines.append(f"  {key}: {self.meta[key]}")
        return "\n".join(lines)
