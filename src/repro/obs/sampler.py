"""Background resource sampler: RSS and CPU gauges for long runs.

A daemon thread samples the process's resident set size and CPU
utilisation at a fixed period and folds them into the active tracer's
gauges:

* ``proc.rss_bytes`` — resident set size at the last sample [bytes];
* ``proc.rss_peak_bytes`` — the maximum RSS observed over the sampler's
  lifetime [bytes] (a cheap always-on complement to ``--mem-trace``,
  which measures *Python* allocations and slows the interpreter);
* ``proc.cpu_pct`` — CPU utilisation over the last sampling interval
  [percent of one core; >100 on multi-core parallel phases].

Because gauge writes go through :meth:`Tracer.gauge`, each sample also
lands on the telemetry bus as a ``gauge`` event when one is attached —
the event log and the live renderer see resource usage in-stream.

Everything is stdlib: RSS comes from ``/proc/self/status`` (``VmRSS``)
with a ``resource.getrusage`` peak-RSS fallback on platforms without
procfs; CPU time comes from :func:`os.times`.  The sampler never starts
under a :class:`~repro.obs.NullTracer`-only run (the CLI only creates
one alongside a bus), and :meth:`stop` always takes one final sample so
even sub-period runs record the gauges.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .bus import EventBus
    from .tracer import NullTracer, Tracer

__all__ = ["ResourceSampler", "rss_bytes"]

_PROC_STATUS = "/proc/self/status"


def rss_bytes() -> float:
    """Current resident set size [bytes], best effort.

    Prefers ``VmRSS`` from procfs (current RSS); falls back to
    ``resource.getrusage`` peak RSS (monotone, so still a valid input
    to the peak gauge) and finally 0.0 where neither exists.
    """
    with (
        contextlib.suppress(OSError, ValueError, IndexError),
        open(_PROC_STATUS, encoding="ascii", errors="replace") as handle,
    ):
        for line in handle:
            if line.startswith("VmRSS:"):
                return float(line.split()[1]) * 1024.0
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes; macOS reports bytes.
        return float(peak_kb) * (1.0 if peak_kb > 1 << 32 else 1024.0)
    except (ImportError, OSError, ValueError):
        return 0.0


class ResourceSampler:
    """Samples process RSS/CPU on a daemon thread at a fixed period.

    Args:
        tracer: the tracer receiving the gauges (its attached bus, if
            any, receives the corresponding ``gauge`` events).
        period_s: sampling period [s]; the thread wakes this often.

    Use as ``sampler = ResourceSampler(tracer).start()`` and call
    :meth:`stop` in the run's teardown — or use it as a context
    manager.  ``start``/``stop`` are idempotent.
    """

    def __init__(
        self,
        tracer: "Tracer | NullTracer",
        period_s: float = 0.5,
        bus: "EventBus | None" = None,
    ):
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        self.tracer = tracer
        self.period_s = period_s
        self.bus = bus
        self.samples = 0
        self._peak_rss = 0.0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._last_cpu_s = 0.0
        self._last_wall = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Launch the sampling thread (idempotent); returns self."""
        if self._thread is not None:
            return self
        self._stop.clear()
        times = os.times()
        self._last_cpu_s = times.user + times.system
        self._last_wall = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=max(2.0, 4 * self.period_s))
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the sampling thread is currently alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> dict[str, float]:
        """Take one sample now (any thread); returns the gauge values."""
        rss = rss_bytes()
        self._peak_rss = max(self._peak_rss, rss)
        times = os.times()
        cpu_s = times.user + times.system
        wall = time.monotonic()
        dt = wall - self._last_wall
        cpu_pct = 100.0 * (cpu_s - self._last_cpu_s) / dt if dt > 1e-6 else 0.0
        self._last_cpu_s = cpu_s
        self._last_wall = wall
        gauges = {
            "proc.rss_bytes": rss,
            "proc.rss_peak_bytes": self._peak_rss,
            "proc.cpu_pct": cpu_pct,
        }
        for name, value in gauges.items():
            self.tracer.gauge(name, value)
        if self.bus is not None and getattr(self.tracer, "bus", None) is not self.bus:
            # Gauges normally reach the bus through the tracer; publish
            # directly only when the tracer is not wired to this bus.
            for name, value in gauges.items():
                self.bus.publish("gauge", name, value=value)
        self.samples += 1
        return gauges

    def _run(self) -> None:
        while not self._stop.wait(self.period_s):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - sampling must never kill a run
                return
