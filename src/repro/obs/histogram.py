"""Fixed-bucket latency histograms for the observability stack.

A :class:`Histogram` records a *distribution* of observations (latency,
duration, size) into fixed log-spaced buckets — the aggregate complement
to the scalar counters/gauges in :mod:`repro.obs.tracer`.  Fixed
boundaries are the whole design: two histograms of the same name always
share bucket edges, so worker-process histograms merge into the parent
by plain addition (worker-count-invariant totals, exactly like
counters), and Prometheus exposition is a straight cumulative sum.

The default boundaries span 10 µs .. 100 s with three buckets per
decade (1 / 2.5 / 5 steps), which covers every timed hot path in this
repository — a single coupling-pair kernel (~100 µs), a cache lookup
(~50 µs cold, ~10 µs warm), an executor chunk (~10 ms), and a full
service job (~1 s) — with bounded memory: 22 boundaries → 23 counts.

Thread-safety is by *containment*: a ``Histogram`` has no lock of its
own.  :meth:`~repro.obs.Tracer.observe` mutates it under the tracer
lock (the same contract as counters/gauges); standalone use from
multiple threads needs external locking.

Percentile estimates (:meth:`Histogram.percentile`) interpolate
linearly within the bucket that contains the requested rank — the
standard Prometheus ``histogram_quantile`` estimator.  With log-spaced
buckets the estimate is within one bucket width of the true value,
which is all a regression gate or a dashboard needs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

__all__ = ["Histogram", "DEFAULT_BUCKETS", "bucket_label"]


def _default_buckets() -> tuple[float, ...]:
    """Log-spaced boundaries 1e-5 .. 1e2 s, three per decade (1/2.5/5)."""
    edges: list[float] = []
    for exponent in range(-5, 2):
        for factor in (1.0, 2.5, 5.0):
            edges.append(factor * 10.0**exponent)
    edges.append(10.0**2)
    return tuple(edges)


#: The shared default boundaries [s].  22 upper edges; every histogram
#: created without explicit boundaries uses exactly these, so merges
#: across processes and runs are always well-defined.
DEFAULT_BUCKETS: tuple[float, ...] = _default_buckets()


def bucket_label(upper: float) -> str:
    """Deterministic text form of a bucket's upper edge (``le`` label).

    Uses the shortest round-tripping decimal (``repr``-style via
    ``%.12g``), so ``0.00025`` renders as ``0.00025`` and ``1.0`` as
    ``1`` — stable across platforms for the golden exports.
    """
    return format(upper, ".12g")


class Histogram:
    """Fixed-boundary histogram with sum/count and mergeable buckets.

    Attributes:
        name: metric name (dotted, e.g. ``"service.job_latency_seconds"``).
        boundaries: sorted upper bucket edges; observations above the
            last edge land in the implicit ``+Inf`` overflow bucket.
        counts: per-bucket observation counts, ``len(boundaries) + 1``
            entries (the last is the overflow bucket).
        total: sum of all observed values.
        count: number of observations.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count")

    def __init__(
        self, name: str, boundaries: tuple[float, ...] | None = None
    ):
        edges = DEFAULT_BUCKETS if boundaries is None else tuple(boundaries)
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"bucket boundaries must be strictly increasing: {edges}")
        self.name = name
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, count={self.count}, sum={self.total:.6f})"

    def observe(self, value: float) -> None:
        """Record one observation (not thread-safe on its own)."""
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram's buckets into this one.

        Raises:
            ValueError: when the boundaries differ (merging histograms
                with different edges has no well-defined result).
        """
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: boundary mismatch"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    def cumulative(self) -> list[tuple[str, int]]:
        """Cumulative ``(le_label, count)`` pairs ending with ``+Inf``.

        This is the Prometheus ``_bucket`` series shape: each entry
        counts every observation ≤ its edge, and the final ``+Inf``
        entry equals :attr:`count`.
        """
        out: list[tuple[str, int]] = []
        running = 0
        for edge, n in zip(self.boundaries, self.counts):
            running += n
            out.append((bucket_label(edge), running))
        out.append(("+Inf", self.count))
        return out

    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0..1), 0.0 when empty.

        Linear interpolation within the containing bucket; ranks in the
        overflow bucket return the last finite edge (the estimate is
        clamped — there is no upper bound to interpolate toward).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, n in enumerate(self.counts[:-1]):
            lower = 0.0 if i == 0 else self.boundaries[i - 1]
            upper = self.boundaries[i]
            if running + n >= rank:
                if n == 0:
                    return upper
                fraction = (rank - running) / n
                return lower + fraction * (upper - lower)
            running += n
        return self.boundaries[-1]

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time summary: count, sum and p50/p95/p99 estimates."""
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (omits default boundaries)."""
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "counts": list(self.counts),
        }
        if self.boundaries != DEFAULT_BUCKETS:
            out["boundaries"] = list(self.boundaries)
        return out

    @classmethod
    def from_dict(cls, name: str, data: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        boundaries = data.get("boundaries")
        hist = cls(
            name,
            tuple(float(b) for b in boundaries) if boundaries is not None else None,
        )
        counts = [int(n) for n in data.get("counts", [])]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram {name!r}: expected {len(hist.counts)} bucket "
                f"counts, got {len(counts)}"
            )
        hist.counts = counts
        hist.total = float(data.get("sum", 0.0))
        hist.count = int(data.get("count", 0))
        return hist
