"""Regression engine: diff a run report against a rolling baseline.

The baseline is the per-span (and per-counter) *median* over a window of
prior runs — medians shrug off the odd noisy run that a mean would chase.
Spans are keyed by their full path (``run/flow.rules/coupling.field_solve``)
so a hot path showing up under a new parent reads as *new*, not as a
mutation of the old one.

Semantics (see docs/OBSERVABILITY.md):

* **span wall times** are noisy — a span regresses only when it exceeds
  the baseline by the relative threshold *and* clears an absolute floor
  (``min_wall_s``), so micro-spans cannot flap the gate;
* **counters are work counters** (field solves, filament pairs, MNA
  factorizations): deterministic for a given code state, so the default
  threshold is tight and *more is worse* — a counter that grows flags a
  regression, one that shrinks an improvement;
* spans/counters present only on one side rate ``new`` / ``missing`` and
  never fail the gate by themselves (the alternative would make every
  instrumentation tweak a blocking event).

:func:`compare` produces a :class:`RegressionVerdict` — a machine-readable
(``to_dict``) and human-readable (``table``) list of per-metric deltas —
which the ``repro-emi perf check`` / ``perf diff`` subcommands render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any

from .report import RunReport

__all__ = [
    "Thresholds",
    "Delta",
    "RegressionVerdict",
    "span_walls",
    "compare",
]


@dataclass(frozen=True)
class Thresholds:
    """Relative thresholds and absolute floors for the regression gate.

    Attributes:
        wall_rel: relative wall-time growth that flags a span, e.g. 0.30
            = +30% over baseline (dimensionless fraction).
        counter_rel: relative counter growth that flags a counter
            (dimensionless fraction).
        min_wall_s: spans whose baseline *and* current wall are below
            this floor are never flagged [s].
        min_counter: counters must move by at least this much in absolute
            terms to be flagged (guards integer counters near zero).
    """

    wall_rel: float = 0.30
    counter_rel: float = 0.05
    min_wall_s: float = 0.005
    min_counter: float = 0.5

    def to_dict(self) -> dict[str, float]:
        """JSON-ready form (recorded inside every verdict)."""
        return {
            "wall_rel": self.wall_rel,
            "counter_rel": self.counter_rel,
            "min_wall_s": self.min_wall_s,
            "min_counter": self.min_counter,
        }


@dataclass(frozen=True)
class Delta:
    """One metric compared between baseline and current run.

    Attributes:
        kind: ``"span"`` (wall seconds) or ``"counter"`` (totals).
        name: span path (``/``-joined) or counter name.
        baseline: baseline value (``None`` when the metric is new).
        current: current value (``None`` when the metric went missing).
        ratio: ``current / baseline`` where defined.
        status: ``ok`` | ``regression`` | ``improvement`` | ``new`` |
            ``missing``.
    """

    kind: str
    name: str
    baseline: float | None
    current: float | None
    ratio: float | None
    status: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "kind": self.kind,
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "status": self.status,
        }


@dataclass
class RegressionVerdict:
    """The full outcome of one baseline comparison."""

    deltas: list[Delta]
    baseline_runs: int
    thresholds: Thresholds = field(default_factory=Thresholds)

    @property
    def regressions(self) -> list[Delta]:
        """The deltas that fail the gate."""
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> list[Delta]:
        """The deltas that beat the baseline."""
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def ok(self) -> bool:
        """True when nothing regressed."""
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable verdict (the ``perf check --format json`` body)."""
        return {
            "ok": self.ok,
            "baseline_runs": self.baseline_runs,
            "thresholds": self.thresholds.to_dict(),
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def table(self, show_ok: bool = True) -> str:
        """Aligned per-metric delta table, worst offenders first."""
        order = {"regression": 0, "missing": 1, "new": 2, "improvement": 3, "ok": 4}
        rows: list[tuple[str, str, str, str, str, str]] = []
        for delta in sorted(
            self.deltas,
            key=lambda d: (order.get(d.status, 9), -(d.ratio or 0.0), d.name),
        ):
            if not show_ok and delta.status == "ok":
                continue
            fmt = "{:.4f}" if delta.kind == "span" else "{:g}"
            rows.append(
                (
                    delta.kind,
                    delta.name,
                    "-" if delta.baseline is None else fmt.format(delta.baseline),
                    "-" if delta.current is None else fmt.format(delta.current),
                    "-"
                    if delta.ratio is None
                    else f"{(delta.ratio - 1.0) * 100.0:+.1f}%",
                    delta.status,
                )
            )
        if not rows:
            if self.deltas:
                return "(all metrics within thresholds)"
            return "(no overlapping metrics)"
        headers = ("kind", "metric", "baseline", "current", "delta", "status")
        widths = [
            max(len(headers[i]), max(len(r[i]) for r in rows)) for i in range(6)
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
        ]
        for row in rows:
            lines.append(
                "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip()
            )
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line outcome for terminals and CI logs."""
        verdict = "OK" if self.ok else "REGRESSION"
        return (
            f"perf {verdict}: {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s) over "
            f"{self.baseline_runs} baseline run(s)"
        )


def span_walls(report: RunReport) -> dict[str, float]:
    """Wall seconds per ``/``-joined span path (paths are unique)."""
    return {
        "/".join(path): span.wall_s for path, span in report.root.walk_paths()
    }


def _median_by_key(series: list[dict[str, float]]) -> dict[str, float]:
    """Per-key median over the dicts; keys present in any run count."""
    merged: dict[str, list[float]] = {}
    for entry in series:
        for key, value in entry.items():
            merged.setdefault(key, []).append(value)
    return {key: median(values) for key, values in merged.items()}


def _classify_span(
    base: float | None, cur: float | None, t: Thresholds
) -> tuple[float | None, str]:
    if base is None:
        return None, "new"
    if cur is None:
        return None, "missing"
    if base < t.min_wall_s and cur < t.min_wall_s:
        return None, "ok"
    # Floor the denominator so a near-zero baseline cannot explode the
    # ratio for a span that merely crossed the noise floor.
    denom = max(base, t.min_wall_s)
    if denom <= 0.0:
        # min_wall_s configured to 0 with a zero baseline: no finite
        # ratio exists, so classify on the current wall alone.
        return None, "regression" if cur > 0.0 else "ok"
    ratio = cur / denom
    if cur >= t.min_wall_s and ratio > 1.0 + t.wall_rel:
        return ratio, "regression"
    if base >= t.min_wall_s and ratio < 1.0 / (1.0 + t.wall_rel):
        return ratio, "improvement"
    return ratio, "ok"


def _classify_counter(
    base: float | None, cur: float | None, t: Thresholds
) -> tuple[float | None, str]:
    if base is None:
        return None, "new"
    if cur is None:
        return None, "missing"
    ratio = cur / base if base > 0.0 else None
    if abs(cur - base) < t.min_counter:
        return ratio, "ok"
    if cur > base * (1.0 + t.counter_rel):
        return ratio, "regression"
    if cur < base * (1.0 - t.counter_rel):
        return ratio, "improvement"
    return ratio, "ok"


def compare(
    current: RunReport,
    baseline: list[RunReport],
    thresholds: Thresholds | None = None,
) -> RegressionVerdict:
    """Diff ``current`` against the median of the ``baseline`` runs.

    Args:
        current: the run under test.
        baseline: one or more prior runs; per-metric medians form the
            reference (a single run is its own median, so a plain
            two-report diff is the ``baseline=[a]`` special case).
        thresholds: gate configuration (defaults to :class:`Thresholds`).

    Returns:
        A verdict with one :class:`Delta` per span path and per counter
        seen on either side.
    """
    t = thresholds if thresholds is not None else Thresholds()
    base_spans = _median_by_key([span_walls(r) for r in baseline])
    base_counters = _median_by_key([r.totals() for r in baseline])
    cur_spans = span_walls(current)
    cur_counters = current.totals()

    deltas: list[Delta] = []
    for name in sorted(base_spans.keys() | cur_spans.keys()):
        base, cur = base_spans.get(name), cur_spans.get(name)
        ratio, status = _classify_span(base, cur, t)
        deltas.append(Delta("span", name, base, cur, ratio, status))
    for name in sorted(base_counters.keys() | cur_counters.keys()):
        base, cur = base_counters.get(name), cur_counters.get(name)
        ratio, status = _classify_counter(base, cur, t)
        deltas.append(Delta("counter", name, base, cur, ratio, status))
    return RegressionVerdict(
        deltas=deltas, baseline_runs=len(baseline), thresholds=t
    )
