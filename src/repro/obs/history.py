"""Perf-history store: an append-only JSONL database of run reports.

Every record is one traced run — a :class:`~repro.obs.RunReport` plus the
provenance needed to compare it longitudinally: a *key* (benchmark or CLI
command), the git SHA the code ran at, a UTC timestamp and a host
fingerprint (wall times are only comparable within one host).  Records
append as single JSON lines, so the store survives crashes mid-write
(a torn final line is skipped on read, never fatal) and diffs cleanly in
version control — ``benchmarks/out/perf-history.jsonl`` is the
repository's committed perf trajectory.

Schema (one line per record)::

    {"schema": 1, "key": "...", "git_sha": "...", "host": "...",
     "hostname": "...", "recorded_at": "...Z", "wall_s": 1.23,
     "report": RunReport.to_dict()}

Readers tolerate malformed lines and unknown (newer) schema versions by
skipping them; :attr:`PerfHistory.skipped_lines` counts what the last
read dropped.  Default location: ``$REPRO_EMI_PERF_HISTORY`` or
``~/.cache/repro-emi/perf/history.jsonl``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone
from functools import lru_cache
from pathlib import Path
from statistics import median
from typing import Any

from .report import RunReport

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "HistoryRecord",
    "PerfHistory",
    "default_history_path",
    "default_key",
    "git_sha",
    "host_fingerprint",
]

HISTORY_SCHEMA_VERSION = 1


def default_history_path() -> Path:
    """Resolve the history file: env override, else the user cache dir.

    ``$REPRO_EMI_PERF_HISTORY`` wins when set; otherwise
    ``~/.cache/repro-emi/perf/history.jsonl`` (honouring
    ``$XDG_CACHE_HOME``), mirroring the persistent coupling cache.
    """
    override = os.environ.get("REPRO_EMI_PERF_HISTORY")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-emi" / "perf" / "history.jsonl"


def git_sha() -> str:
    """The current commit SHA, or ``"unknown"`` outside a work tree.

    ``$REPRO_EMI_GIT_SHA`` overrides (CI can stamp the exact ref under
    test; tests pin determinism).
    """
    override = os.environ.get("REPRO_EMI_GIT_SHA")
    if override:
        return override
    return _git_sha_cached(os.getcwd())


@lru_cache(maxsize=8)
def _git_sha_cached(cwd: str) -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


@lru_cache(maxsize=1)
def host_fingerprint() -> str:
    """A short stable digest of the executing host and interpreter.

    Wall times from different machines (or different CPython builds on
    one machine) are not comparable; the fingerprint partitions the
    store so baselines only ever aggregate like-for-like runs.
    """
    identity = "|".join(
        (
            platform.node(),
            platform.machine(),
            platform.python_implementation(),
            platform.python_version(),
            str(os.cpu_count() or 0),
        )
    )
    return hashlib.sha256(identity.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class HistoryRecord:
    """One stored run: provenance plus the raw report payload."""

    key: str
    git_sha: str
    host: str
    hostname: str
    recorded_at: str
    wall_s: float
    report_data: dict[str, Any]

    @property
    def report(self) -> RunReport:
        """The stored run rebuilt as a :class:`RunReport`."""
        return RunReport.from_dict(self.report_data)

    @property
    def run_id(self) -> str:
        """The stored run's correlation id (empty for older records)."""
        meta = self.report_data.get("meta", {})
        if isinstance(meta, dict):
            return str(meta.get("run_id", ""))
        return ""

    def to_dict(self) -> dict[str, Any]:
        """The JSONL line payload for this record."""
        return {
            "schema": HISTORY_SCHEMA_VERSION,
            "key": self.key,
            "git_sha": self.git_sha,
            "host": self.host,
            "hostname": self.hostname,
            "recorded_at": self.recorded_at,
            "wall_s": self.wall_s,
            "report": self.report_data,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HistoryRecord":
        """Rebuild a record from one parsed JSONL line."""
        return cls(
            key=str(data["key"]),
            git_sha=str(data.get("git_sha", "unknown")),
            host=str(data.get("host", "")),
            hostname=str(data.get("hostname", "")),
            recorded_at=str(data.get("recorded_at", "")),
            wall_s=float(data.get("wall_s", 0.0)),
            report_data=dict(data["report"]),
        )


def default_key(report: RunReport) -> str:
    """The report's series key: ``meta`` benchmark or command, else ``run``."""
    meta = report.meta
    for field in ("benchmark", "command"):
        value = meta.get(field)
        if value:
            return str(value)
    return "run"


class PerfHistory:
    """Append-only, schema-versioned JSONL store of run reports.

    Args:
        path: the JSONL file; ``None`` resolves
            :func:`default_history_path`.  Parent directories are created
            on first append, never on read.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else default_history_path()
        #: Lines the most recent read skipped (malformed or newer schema).
        self.skipped_lines = 0

    # -- writing -----------------------------------------------------------

    def append(
        self,
        report: RunReport,
        key: str | None = None,
        sha: str | None = None,
    ) -> HistoryRecord:
        """Stamp provenance onto ``report`` and append one record.

        Args:
            report: the traced run to store.
            key: series name; defaults to ``meta["benchmark"]`` or
                ``meta["command"]``, else ``"run"``.
            sha: git SHA override (defaults to :func:`git_sha`).

        Returns:
            The record as written.
        """
        record = HistoryRecord(
            key=key if key is not None else default_key(report),
            git_sha=sha if sha is not None else git_sha(),
            host=host_fingerprint(),
            hostname=platform.node(),
            recorded_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            wall_s=report.root.wall_s,
            report_data=report.to_dict(),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        # A torn previous write may have left the file without a trailing
        # newline; healing here keeps the new record on its own line.
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as probe:
                probe.seek(-1, 2)
                needs_newline = probe.read(1) != b"\n"
        with self.path.open("a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(line + "\n")
        return record

    # -- reading -----------------------------------------------------------

    def records(
        self, key: str | None = None, host: str | None = None
    ) -> list[HistoryRecord]:
        """All stored records, oldest first, optionally filtered.

        Args:
            key: restrict to one series.
            host: restrict to one host fingerprint (pass
                :func:`host_fingerprint` for "this machine").
        """
        self.skipped_lines = 0
        if not self.path.is_file():
            return []
        out: list[HistoryRecord] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                if int(data.get("schema", 0)) > HISTORY_SCHEMA_VERSION:
                    raise ValueError("newer schema")
                record = HistoryRecord.from_dict(data)
            except (ValueError, KeyError, TypeError):
                self.skipped_lines += 1
                continue
            if key is not None and record.key != key:
                continue
            if host is not None and record.host != host:
                continue
            out.append(record)
        return out

    def keys(self) -> dict[str, int]:
        """Record counts per series key."""
        counts: dict[str, int] = {}
        for record in self.records():
            counts[record.key] = counts.get(record.key, 0) + 1
        return counts

    def last(
        self, key: str | None = None, n: int = 1, host: str | None = None
    ) -> list[HistoryRecord]:
        """The most recent ``n`` records of a series, oldest first."""
        matching = self.records(key=key, host=host)
        return matching[-n:] if n > 0 else []

    def summarise(self, key: str, host: str | None = None) -> dict[str, Any]:
        """Longitudinal statistics of one series.

        Returns:
            ``{"key", "runs", "first", "last", "spans": {path: {median,
            min, max, last}}, "counters": {name: {median, last}}}`` —
            span statistics are wall seconds keyed by ``/``-joined span
            paths; counters aggregate whole-tree totals.
        """
        records = self.records(key=key, host=host)
        span_series: dict[str, list[float]] = {}
        counter_series: dict[str, list[float]] = {}
        for record in records:
            report = record.report
            for path, span in report.root.walk_paths():
                span_series.setdefault("/".join(path), []).append(span.wall_s)
            for name, value in report.totals().items():
                counter_series.setdefault(name, []).append(value)
        return {
            "key": key,
            "runs": len(records),
            "first": records[0].recorded_at if records else None,
            "last": records[-1].recorded_at if records else None,
            "spans": {
                path: {
                    "median": median(values),
                    "min": min(values),
                    "max": max(values),
                    "last": values[-1],
                }
                for path, values in sorted(span_series.items())
            },
            "counters": {
                name: {"median": median(values), "last": values[-1]}
                for name, values in sorted(counter_series.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PerfHistory({str(self.path)!r})"
