"""Hierarchical tracing spans and named counters/gauges.

The instrumentation backbone of the repository: every flow stage and every
solver hot path opens a :meth:`Tracer.span` and bumps counters through the
module-level helpers.  Two implementations share the interface:

* :class:`Tracer` — the real thing: a profile tree of :class:`Span` nodes
  (wall time, call counts, parent/child nesting, per-span counters);
* :class:`NullTracer` — the default: every operation is a no-op on shared
  singletons, so instrumented code costs a dict lookup and an attribute
  call when tracing is off.  Tier-1 test timing must not move.

Spans aggregate *by name within their parent* (a profile tree, not an
event log): entering ``peec.inductance.assemble`` twice under the same
parent yields one node with ``count == 2`` and the summed wall time.  That
keeps reports bounded no matter how many times a hot path runs.

The module-level :func:`get_tracer` / :func:`set_tracer` / :func:`enable` /
:func:`disable` manage a process-global tracer.  **Threading contract:**
the span stack is single-threaded — :meth:`Tracer.span` raises
:class:`RuntimeError` when entered from any thread other than the one
that created the tracer (a profile tree shared across threads would
corrupt silently).  Counters and gauges, in contrast, are
lock-protected and may be written from any thread — the background
:class:`~repro.obs.ResourceSampler` does exactly that.

For *concurrent* instrumented runs in one process — the service layer's
worker threads each tracing their own job — :func:`set_thread_tracer`
installs a per-thread override that :func:`get_tracer` prefers over the
process-global tracer.  Each worker creates its :class:`Tracer` on its
own thread (so the span-stack owner is right), installs it for the
duration of the job, and restores the previous override in a ``finally``
block; other threads keep seeing the global tracer.

When an :class:`~repro.obs.EventBus` is attached (``Tracer(bus=...)`` or
``enable(bus=...)``), every span entry/exit, counter bump, gauge write
and stage transition additionally publishes a
:class:`~repro.obs.TelemetryEvent` — the streaming half of the obs
stack.  Without a bus (and always through :class:`NullTracer`) none of
that machinery runs.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from collections.abc import Iterator
from types import TracebackType
from typing import TYPE_CHECKING, Any

from .histogram import Histogram
from .runid import new_run_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .bus import EventBus
    from .report import RunReport

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "set_thread_tracer",
    "enable",
    "disable",
]


class Span:
    """One node of the profile tree.

    Attributes:
        name: hierarchical dotted name (see docs/OBSERVABILITY.md for the
            naming convention, e.g. ``"peec.inductance.assemble"``).
        wall_s: accumulated wall time over all entries [s].
        count: number of times the span was entered.
        children: child spans keyed by name.
        counters: counter increments attributed to this span (while it was
            the innermost open span).
    """

    __slots__ = ("name", "wall_s", "count", "children", "counters")

    def __init__(self, name: str):
        self.name = name
        self.wall_s = 0.0
        self.count = 0
        self.children: dict[str, Span] = {}
        self.counters: dict[str, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, count={self.count}, wall_s={self.wall_s:.6f})"

    def child(self, name: str) -> "Span":
        """The child span of that name, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = Span(name)
            self.children[name] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first (pre-order) iteration as ``(depth, span)`` pairs."""
        yield depth, self
        for node in self.children.values():
            yield from node.walk(depth + 1)

    def walk_paths(
        self, prefix: tuple[str, ...] = ()
    ) -> Iterator[tuple[tuple[str, ...], "Span"]]:
        """Pre-order iteration as ``(path, span)`` pairs.

        ``path`` is the tuple of span names from this node down, so two
        spans of the same name under different parents stay distinct —
        the regression engine keys its baselines on these paths.
        """
        path = (*prefix, self.name)
        yield path, self
        for node in self.children.values():
            yield from node.walk_paths(path)

    def find(self, name: str) -> "Span | None":
        """First span of that exact name in the subtree (pre-order)."""
        for _, node in self.walk():
            if node.name == name:
                return node
        return None

    def merge(self, other: "Span") -> None:
        """Accumulate another subtree into this one (names aside).

        Wall time, call counts and counters add; children merge
        recursively by name.  ``other.name`` is deliberately ignored so a
        worker tracer's synthetic ``run`` root can fold into a
        differently-named node (``parallel.worker``).
        """
        self.wall_s += other.wall_s
        self.count += other.count
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + value
        for name, node in other.children.items():
            self.child(name).merge(node)

    def total_counters(self) -> dict[str, float]:
        """Counter totals aggregated over the whole subtree."""
        totals: dict[str, float] = {}
        for _, node in self.walk():
            for key, value in node.counters.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready nested representation."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "count": self.count,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children.values()]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        span = cls(str(data["name"]))
        span.wall_s = float(data.get("wall_s", 0.0))
        span.count = int(data.get("count", 0))
        span.counters = {
            str(k): float(v) for k, v in data.get("counters", {}).items()
        }
        for child in data.get("children", []):
            node = cls.from_dict(child)
            span.children[node.name] = node
        return span


class _SpanHandle:
    """Context manager for one entry of one span.

    ``elapsed_s`` holds this entry's wall time after exit — the placer
    sources its report runtime from it.
    """

    __slots__ = ("_tracer", "_name", "_span", "_t0", "elapsed_s")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name
        self._span: Span | None = None
        self._t0 = 0.0
        self.elapsed_s: float | None = None

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        if threading.get_ident() != tracer._thread_ident:
            raise RuntimeError(
                f"Tracer.span({self._name!r}) entered from thread "
                f"{threading.current_thread().name!r}: the span stack is "
                "single-threaded (owned by the thread that created the "
                "tracer). Counters and gauges are thread-safe; spans are not."
            )
        stack = tracer._stack
        span = stack[-1].child(self._name)
        span.count += 1
        stack.append(span)
        self._span = span
        if tracer.mem_trace and len(stack) == 2:
            # Entering a top-level span: measure its peak in isolation.
            tracemalloc.reset_peak()
        bus = tracer.bus
        if bus is not None:
            bus.publish("span_open", self._name, path=tracer._path())
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed = time.perf_counter() - self._t0
        self.elapsed_s = elapsed
        assert self._span is not None
        self._span.wall_s += elapsed
        tracer = self._tracer
        bus = tracer.bus
        if bus is not None:
            bus.publish(
                "span_close", self._name, path=tracer._path(), value=elapsed
            )
        tracer._stack.pop()
        if tracer.mem_trace and len(tracer._stack) == 1:
            current, peak = tracemalloc.get_traced_memory()
            tracer.gauge(f"mem.{self._name}.current_bytes", float(current))
            tracer.gauge(f"mem.{self._name}.peak_bytes", float(peak))
        return False


class _NullSpanHandle:
    """Shared do-nothing stand-in for :class:`_SpanHandle`."""

    __slots__ = ()

    elapsed_s = None

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_SPAN_HANDLE = _NullSpanHandle()


class _StageHandle:
    """Context manager publishing ``stage`` start/done/error events."""

    __slots__ = ("_bus", "_name", "_attrs")

    def __init__(self, bus: "EventBus", name: str, attrs: dict[str, Any] | None):
        self._bus = bus
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_StageHandle":
        attrs: dict[str, Any] = {"status": "start"}
        if self._attrs:
            attrs.update(self._attrs)
        self._bus.publish("stage", self._name, attrs=attrs)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        status = "done" if exc_type is None else "error"
        attrs: dict[str, Any] = {"status": status}
        if exc_type is not None:
            attrs["error_type"] = exc_type.__name__
        self._bus.publish("stage", self._name, attrs=attrs)
        return False


class _NullStageHandle:
    """Shared do-nothing stand-in for :class:`_StageHandle`."""

    __slots__ = ()

    def __enter__(self) -> "_NullStageHandle":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_STAGE_HANDLE = _NullStageHandle()


class Tracer:
    """Collects a profile tree plus global gauges for one run.

    Args:
        meta: free-form metadata recorded into the final report (command
            line, benchmark name, …).
        mem_trace: when True, run :mod:`tracemalloc` for the tracer's
            lifetime and record ``mem.<span>.peak_bytes`` /
            ``mem.<span>.current_bytes`` gauges for every *top-level*
            span (a direct child of the root).  Allocation tracing slows
            the interpreter noticeably; it is strictly opt-in.
        bus: when set, every span entry/exit, counter bump, gauge write
            and stage transition publishes a telemetry event onto this
            :class:`~repro.obs.EventBus` (see docs/OBSERVABILITY.md,
            "Event stream & live mode").
        run_id: correlation id for this run; minted fresh
            (:func:`~repro.obs.new_run_id`) when omitted.  Stamped into
            ``meta["run_id"]`` and onto the attached bus so every
            report, event and artifact of the run carries the same id.
    """

    enabled = True

    def __init__(
        self,
        meta: dict[str, Any] | None = None,
        mem_trace: bool = False,
        bus: "EventBus | None" = None,
        run_id: str | None = None,
    ):
        self.root = Span("run")
        self.root.count = 1
        self.meta: dict[str, Any] = dict(meta or {})
        if run_id is None:
            run_id = str(self.meta.get("run_id") or "") or new_run_id()
        self.run_id = run_id
        self.meta["run_id"] = run_id
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.mem_trace = mem_trace
        self.bus = bus
        if bus is not None and not bus.run_id:
            bus.run_id = run_id
        self._mem_started_here = False
        self._stack: list[Span] = [self.root]
        # The span stack belongs to the creating thread; counters and
        # gauges are shared and guarded by the lock below.
        self._thread_ident = threading.get_ident()
        self._lock = threading.Lock()
        if mem_trace and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._mem_started_here = True
        self._t0 = time.perf_counter()

    def _path(self) -> str:
        """The ``/``-joined open-span path (``run/...``), owner thread only."""
        return "/".join(span.name for span in self._stack)

    def span(self, name: str) -> _SpanHandle:
        """A context manager timing one entry of the named span.

        Raises:
            RuntimeError: on ``__enter__`` from a thread other than the
                tracer's owner (the span stack is single-threaded).
        """
        return _SpanHandle(self, name)

    def stage(
        self, name: str, attrs: dict[str, Any] | None = None
    ) -> _StageHandle | _NullStageHandle:
        """A context manager publishing ``stage`` start/done/error events.

        Purely an event-stream construct: it records nothing in the
        profile tree and is a shared no-op when no bus is attached.
        """
        bus = self.bus
        if bus is None:
            return _NULL_STAGE_HANDLE
        return _StageHandle(bus, name, attrs)

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to a named counter on the innermost open span.

        Thread-safe; off-owner-thread increments attach to whichever
        span is innermost at that instant (spans only change on the
        owner thread).
        """
        on_owner = threading.get_ident() == self._thread_ident
        with self._lock:
            counters = self._stack[-1].counters
            counters[name] = counters.get(name, 0) + n
        bus = self.bus
        if bus is not None:
            bus.publish(
                "counter",
                name,
                path=self._path() if on_owner else "",
                value=float(n),
            )

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins; thread-safe)."""
        with self._lock:
            self.gauges[name] = float(value)
        bus = self.bus
        if bus is not None:
            bus.publish("gauge", name, value=float(value))

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram (thread-safe).

        The histogram is created on first use with the shared default
        log-spaced bucket boundaries, so observations of the same name
        from workers and the parent always merge cleanly.
        """
        value = float(value)
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = Histogram(name)
                self.histograms[name] = hist
            hist.observe(value)
        bus = self.bus
        if bus is not None:
            on_owner = threading.get_ident() == self._thread_ident
            bus.publish(
                "observe",
                name,
                path=self._path() if on_owner else "",
                value=value,
            )

    def elapsed_s(self) -> float:
        """Wall time since the tracer was created [s]."""
        return time.perf_counter() - self._t0

    def absorb_worker(
        self, data: dict[str, Any], under: str = "parallel.worker"
    ) -> None:
        """Merge a worker tracer's serialised state into the open span.

        ``data`` is the payload a pool worker ships back with its chunk
        result: ``{"spans": Span.to_dict(), "gauges": {...}}``.  The
        worker's span subtree accumulates under an ``under`` child of the
        innermost open span (so pool work appears below ``parallel.map``),
        and worker gauges land as ``<under>.<name>`` (last write wins).

        Because worker wall time is summed across processes, the merged
        node's ``wall_s`` is *CPU-busy* time and may legitimately exceed
        its parent's wall-clock span.
        """
        spans = data.get("spans")
        if spans is not None:
            self._stack[-1].child(under).merge(Span.from_dict(spans))
        with self._lock:
            for name, value in data.get("gauges", {}).items():
                self.gauges[f"{under}.{name}"] = float(value)
            # Histograms merge by *plain* name (like counters, unlike
            # gauges): bucket counts add, so totals are invariant to how
            # many workers the observations were spread across.
            for name, payload in data.get("histograms", {}).items():
                incoming = Histogram.from_dict(name, payload)
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = incoming
                else:
                    mine.merge(incoming)

    def stop_mem_trace(self) -> None:
        """Stop :mod:`tracemalloc` if this tracer was the one to start it."""
        if self._mem_started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._mem_started_here = False

    def report(self, extra_meta: dict[str, Any] | None = None) -> "RunReport":
        """Freeze the current state into a :class:`~repro.obs.RunReport`.

        The root span's wall time is set to the tracer's lifetime so the
        table's percentage column has a stable denominator.
        """
        from .report import RunReport

        self.root.wall_s = self.elapsed_s()
        meta = dict(self.meta)
        if extra_meta:
            meta.update(extra_meta)
        with self._lock:
            gauges = dict(self.gauges)
            histograms = dict(self.histograms)
        return RunReport(
            root=self.root, gauges=gauges, meta=meta, histograms=histograms
        )


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op.

    Installed by default; instrumented code paths therefore cost one
    attribute lookup and one call per span/counter site, which is
    unmeasurable against any solver work.  API parity with
    :class:`Tracer` (same public method set) is asserted by the tests,
    so instrumented code never needs an ``isinstance`` check.
    """

    enabled = False
    mem_trace = False
    bus: "EventBus | None" = None
    run_id = ""

    def span(self, name: str) -> _NullSpanHandle:
        """Return the shared no-op span handle."""
        return _NULL_SPAN_HANDLE

    def stage(
        self, name: str, attrs: dict[str, Any] | None = None
    ) -> _NullStageHandle:
        """Return the shared no-op stage handle (no event is emitted)."""
        return _NULL_STAGE_HANDLE

    def count(self, name: str, n: float = 1) -> None:
        """Discard the increment."""

    def gauge(self, name: str, value: float) -> None:
        """Discard the value."""

    def observe(self, name: str, value: float) -> None:
        """Discard the observation."""

    def elapsed_s(self) -> float:
        """Always 0.0 (the null tracer keeps no clock)."""
        return 0.0

    def absorb_worker(
        self, data: dict[str, Any], under: str = "parallel.worker"
    ) -> None:
        """Discard the worker payload."""

    def stop_mem_trace(self) -> None:
        """No memory tracing to stop."""

    def report(self, extra_meta: dict[str, Any] | None = None) -> "RunReport":
        """An empty report (API parity; the null tracer records nothing)."""
        from .report import RunReport

        return RunReport(root=Span("run"), gauges={}, meta=dict(extra_meta or {}))


NULL_TRACER = NullTracer()

_tracer: Tracer | NullTracer = NULL_TRACER

#: Per-thread tracer overrides (service worker threads trace one job
#: each without disturbing the process-global tracer).
_thread_tracers = threading.local()


def get_tracer() -> Tracer | NullTracer:
    """The active tracer for this thread.

    A per-thread override installed via :func:`set_thread_tracer` wins;
    otherwise the process-global tracer (the null tracer unless
    :func:`enable` ran).
    """
    override: Tracer | NullTracer | None = getattr(_thread_tracers, "tracer", None)
    if override is not None:
        return override
    return _tracer


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the global tracer and return it."""
    global _tracer  # physlint: disable=API002 -- documented singleton accessor
    _tracer = tracer
    return tracer


def set_thread_tracer(
    tracer: Tracer | NullTracer | None,
) -> Tracer | NullTracer | None:
    """Install a tracer override for the *calling thread only*.

    ``None`` clears the override (this thread falls back to the global
    tracer).  Returns the previous override so callers can restore it::

        previous = set_thread_tracer(job_tracer)
        try:
            ...  # instrumented work, isolated from other threads
        finally:
            set_thread_tracer(previous)

    The span-stack ownership rule is unchanged: the installing thread
    should also be the one that *created* the tracer, or spans will
    refuse to open.
    """
    previous: Tracer | NullTracer | None = getattr(_thread_tracers, "tracer", None)
    _thread_tracers.tracer = tracer
    return previous


def enable(
    meta: dict[str, Any] | None = None,
    mem_trace: bool = False,
    bus: "EventBus | None" = None,
    run_id: str | None = None,
) -> Tracer:
    """Install (and return) a fresh global :class:`Tracer`."""
    tracer = Tracer(meta=meta, mem_trace=mem_trace, bus=bus, run_id=run_id)
    set_tracer(tracer)
    return tracer


def disable() -> Tracer | NullTracer:
    """Restore the null tracer; returns the tracer that was active."""
    previous = _tracer
    set_tracer(NULL_TRACER)
    return previous
