"""repro — EMI-coupling-aware design of power electronics.

A from-scratch reproduction of Stube, Schroeder, Hoene & Lissner,
"A Novel Approach for EMI Design of Power Electronics" (DATE 2008):

* :mod:`repro.peec` — PEEC partial-inductance field engine;
* :mod:`repro.components` — parts with footprint, field and circuit models;
* :mod:`repro.circuit` — MNA simulator with mutual couplings;
* :mod:`repro.emi` — LISN, receiver, CISPR 25 limits;
* :mod:`repro.coupling` — placed-pair coupling factors, sweeps, fits;
* :mod:`repro.sensitivity` — coupling-impact ranking;
* :mod:`repro.rules` — PEMD derivation and the cos(alpha) EMD law;
* :mod:`repro.placement` — the constraint-driven placement tool;
* :mod:`repro.converters` — the buck-converter demonstrator;
* :mod:`repro.core` — the end-to-end design flow.
"""

from .core import EmiDesignFlow, LayoutEvaluation

__all__ = ["EmiDesignFlow", "LayoutEvaluation"]
__version__ = "1.0.0"
