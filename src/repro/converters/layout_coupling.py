"""Bridging a layout to the circuit model: field-simulate the placed pairs.

The paper's flow closes the loop *layout -> field simulation -> circuit
simulation*: after (or during) placement, the coupling factors between the
placed components are computed with the PEEC engine and inserted into the
system circuit, so the predicted spectrum reflects that concrete layout
(Figs. 12-14 and the Fig. 1 vs Fig. 2 comparison).
"""

from __future__ import annotations

from ..coupling import CouplingDatabase
from ..parallel import CouplingExecutor
from ..placement import PlacementProblem

__all__ = ["layout_couplings"]


def layout_couplings(
    problem: PlacementProblem,
    refdes_of_interest: list[str] | None = None,
    ground_plane_z: float | None = None,
    k_floor: float = 1e-6,
    database: CouplingDatabase | None = None,
    executor: CouplingExecutor | None = None,
) -> dict[tuple[str, str], float]:
    """All-pairs coupling factors for the placed components of a layout.

    Args:
        problem: the placement problem with placements applied.
        refdes_of_interest: restrict to these components (the sensitivity
            analysis shortlist); None means all placed parts.
        ground_plane_z: shielding plane height [m], if the board has one.
        k_floor: couplings below this magnitude [-] are dropped (they
            cannot move the spectrum and only bloat the circuit).
        database: optional shared cache.
        executor: optional process fan-out for the cache misses.

    Returns:
        (refdes_a, refdes_b) -> signed k, with refdes_a < refdes_b.
    """
    db = database or CouplingDatabase(ground_plane_z=ground_plane_z)
    if database is not None and ground_plane_z is not None:
        db.ground_plane_z = ground_plane_z
    placed = [
        (c.refdes, c.component, c.placement)
        for c in problem.placed()
        if refdes_of_interest is None or c.refdes in refdes_of_interest
    ]
    results = db.pairwise_couplings(placed, executor=executor)
    return {
        pair: result.k for pair, result in results.items() if abs(result.k) >= k_floor
    }
