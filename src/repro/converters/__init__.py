"""Demonstration systems: the buck converter test object and the demo board.

The buck converter carries the paper's section-5 evaluation (Figs. 1, 2,
11-18); the 29-device board is the Fig. 9 placement benchmark.
"""

from .boost import BOOST_COUPLING_BRANCHES, BoostConverterDesign
from .buck import CAPACITIVE_NODES, COUPLING_BRANCHES, BuckConverterDesign
from .cmdm import DEFAULT_HEATSINK_CAPACITANCE, build_cmdm_circuit, cmdm_spectra
from .demo_board import DEMO_DEVICE_COUNT, DEMO_RULE_COUNT, build_demo_board
from .layout_coupling import layout_couplings
from .measurement import perturb_circuit, synthesize_measurement

__all__ = [
    "BuckConverterDesign",
    "BoostConverterDesign",
    "BOOST_COUPLING_BRANCHES",
    "COUPLING_BRANCHES",
    "CAPACITIVE_NODES",
    "build_cmdm_circuit",
    "cmdm_spectra",
    "DEFAULT_HEATSINK_CAPACITANCE",
    "layout_couplings",
    "synthesize_measurement",
    "perturb_circuit",
    "build_demo_board",
    "DEMO_DEVICE_COUNT",
    "DEMO_RULE_COUNT",
]
