"""The paper's test object: an automotive buck converter with EMI filters.

Section 5: *"The developed approach is demonstrated by examining and
improving a buck converter, equipped with an input and output EMI filter,
as a typical power device."*  This module builds all three views of it:

* the **part list** (library components with refdes),
* the **placement problem** (board, nets, three functional groups — the
  paper's Fig. 18 setup),
* the **EMI circuit model** — LISN + input filter + switching cell +
  output filter, with every component's ESL as an explicit inductor branch
  so that layout-derived magnetic couplings drop straight in.

The switching cell uses the substitution-theorem EMI model: the MOSFET's
pulsed channel current becomes a trapezoidal current source at the input
port; the switch-node voltage becomes a trapezoidal voltage source at the
output port.  Both waveforms carry exact harmonic phasors from
:class:`repro.circuit.TrapezoidSource`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit import Circuit, TrapezoidSource
from ..components import (
    BobbinChoke,
    ChipResistor,
    Component,
    Connector,
    ControllerIC,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    PowerDiode,
    PowerMosfet,
    ShuntResistor,
    TantalumCapacitorSMD,
)
from ..emi import Spectrum, add_lisn
from ..geometry import Polygon2D
from ..placement import Board, PlacedComponent, PlacementProblem

__all__ = ["BuckConverterDesign", "COUPLING_BRANCHES", "CAPACITIVE_NODES"]

#: Hot circuit node of each part — where its body potential couples
#: capacitively into the network (the terminal facing the noisy side).
CAPACITIVE_NODES: dict[str, str] = {
    "CX1": "vin",
    "LF1": "vbus",
    "CX2": "vbus",
    "CIN": "vbus",
    "Q1": "vq",
    "D1": "sw",
    "L1": "sw",
    "COUT": "vout",
    "CO2": "vout",
    "LF2": "vout",
    "CX3": "vload",
}

#: Circuit inductor branch -> refdes of the physical part that owns it.
COUPLING_BRANCHES: dict[str, str] = {
    "CX1.ESL": "CX1",
    "LF1.L": "LF1",
    "CX2.ESL": "CX2",
    "CIN.ESL": "CIN",
    "LHOT": "Q1",
    "L1.L": "L1",
    "COUT.ESL": "COUT",
    "CO2.ESL": "CO2",
    "LF2.L": "LF2",
    "CX3.ESL": "CX3",
}


@dataclass
class BuckConverterDesign:
    """Parameterised buck converter (12 V automotive input, 5 V output).

    Attributes:
        input_voltage: supply rail [V].
        output_voltage: regulated output [V].
        output_current: DC load current [A].
        switching_frequency: converter fundamental [Hz].
        t_rise, t_fall: switch-node edge times [s] — the spectral knobs.
        board_width, board_height: placement area [m].
        hot_loop_esl: lumped inductance of the Q1/D1 commutation loop [H].
    """

    input_voltage: float = 12.0
    output_voltage: float = 5.0
    output_current: float = 2.5
    switching_frequency: float = 250e3
    t_rise: float = 30e-9
    t_fall: float = 30e-9
    board_width: float = 70e-3
    board_height: float = 50e-3
    hot_loop_esl: float = 12e-9
    _parts: dict[str, Component] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.output_voltage < self.input_voltage:
            raise ValueError("need 0 < Vout < Vin for a buck converter")
        if self.switching_frequency <= 0.0:
            raise ValueError("switching frequency must be positive")

    @property
    def duty(self) -> float:
        """Nominal duty cycle D = Vout / Vin."""
        return self.output_voltage / self.input_voltage

    # -- parts ------------------------------------------------------------

    def parts(self) -> dict[str, Component]:
        """refdes -> component for the whole converter (cached)."""
        if not self._parts:
            self._parts = {
                "CONN1": Connector(part_number="CONN-IN"),
                "CX1": FilmCapacitorX2(part_number="CX1-X2"),
                "LF1": BobbinChoke(
                    part_number="LF1-CHOKE", orientation="horizontal"
                ),
                "CX2": FilmCapacitorX2(part_number="CX2-X2"),
                "CIN": ElectrolyticCapacitor(part_number="CIN-ELKO"),
                "Q1": PowerMosfet(part_number="Q1-DPAK"),
                "D1": PowerDiode(part_number="D1-SMC"),
                "L1": BobbinChoke(
                    part_number="L1-POWER",
                    footprint_w=16e-3,
                    footprint_h=14e-3,
                    body_height=14e-3,
                    turns=24,
                    coil_radius=5e-3,
                    coil_length=10e-3,
                    n_rings=6,
                    orientation="horizontal",
                ),
                "SH1": ShuntResistor(part_number="SH1-2512"),
                "CTRL": ControllerIC(part_number="CTRL-SO8"),
                "R1": ChipResistor(part_number="R1-1206"),
                "COUT": ElectrolyticCapacitor(part_number="COUT-ELKO"),
                "CO2": TantalumCapacitorSMD(part_number="CO2-TANT"),
                "LF2": BobbinChoke(
                    part_number="LF2-CHOKE",
                    footprint_w=10e-3,
                    footprint_h=8e-3,
                    body_height=10e-3,
                    turns=15,
                    coil_radius=3e-3,
                    coil_length=6e-3,
                    n_rings=4,
                    orientation="horizontal",
                ),
                "CX3": FilmCapacitorX2(part_number="CX3-X2"),
                "CONN2": Connector(part_number="CONN-OUT"),
            }
        return self._parts

    # -- placement problem --------------------------------------------------

    def placement_problem(self) -> PlacementProblem:
        """A fresh placement problem: board, components, nets, groups."""
        board = Board(
            0, Polygon2D.rectangle(0.0, 0.0, self.board_width, self.board_height)
        )
        problem = PlacementProblem([board])
        for refdes, comp in self.parts().items():
            problem.add_component(PlacedComponent(refdes, comp))

        problem.add_net("VIN", [("CONN1", "1"), ("CX1", "1"), ("LF1", "1")])
        problem.add_net(
            "VBUS", [("LF1", "2"), ("CX2", "1"), ("CIN", "1"), ("Q1", "D")]
        )
        problem.add_net("SW", [("Q1", "S"), ("D1", "K"), ("L1", "1")])
        problem.add_net(
            "VOUT", [("L1", "2"), ("COUT", "1"), ("CO2", "1"), ("LF2", "1")]
        )
        problem.add_net("VLOAD", [("LF2", "2"), ("CX3", "1"), ("CONN2", "1")])
        problem.add_net("ISNS", [("SH1", "2"), ("CTRL", "1")])
        problem.add_net("FB", [("R1", "1"), ("CTRL", "2")])
        problem.add_net("GATE", [("CTRL", "3"), ("Q1", "G")])
        problem.add_net(
            "GND",
            [
                ("CONN1", "2"),
                ("CX1", "2"),
                ("CX2", "2"),
                ("CIN", "2"),
                ("D1", "A"),
                ("SH1", "1"),
                ("COUT", "2"),
                ("CO2", "2"),
                ("CX3", "2"),
                ("CONN2", "2"),
                ("R1", "2"),
            ],
        )

        problem.define_group("input_filter", ["CX1", "LF1", "CX2"])
        problem.define_group(
            "power_stage", ["CIN", "Q1", "D1", "L1", "SH1", "CTRL", "R1"]
        )
        problem.define_group("output_filter", ["COUT", "CO2", "LF2", "CX3"])
        return problem

    # -- circuit model ---------------------------------------------------------

    def sources(self) -> tuple[TrapezoidSource, TrapezoidSource]:
        """(input-port current source, output-port voltage source)."""
        current = TrapezoidSource(
            v_low=0.0,
            v_high=self.output_current,
            switching_frequency=self.switching_frequency,
            duty=self.duty,
            t_rise=self.t_rise,
            t_fall=self.t_fall,
        )
        voltage = TrapezoidSource(
            v_low=0.0,
            v_high=self.input_voltage,
            switching_frequency=self.switching_frequency,
            duty=self.duty,
            t_rise=self.t_rise,
            t_fall=self.t_fall,
        )
        return current, voltage

    def emi_circuit(
        self,
        couplings: dict[tuple[str, str], float] | None = None,
        trace_inductances: dict[str, float] | None = None,
    ) -> tuple[Circuit, str]:
        """The frequency-domain EMI model; returns (circuit, measure node).

        Args:
            couplings: optional (refdes_a, refdes_b) -> k map from the
                layout's field simulation; branch names are resolved via
                :data:`COUPLING_BRANCHES`.  Pairs without a circuit branch
                are ignored (connectors, controller).
            trace_inductances: optional per-net series trace inductance [H]
                for the power nets ``VIN``, ``VBUS``, ``VOUT``, ``VLOAD``
                (e.g. from :meth:`trace_inductances_from_layout`); omitted
                nets are ideal.  The nets split the standard nodes with
                ``#t`` suffixes, preserving the base node names.
        """
        parts = self.parts()
        lt = trace_inductances or {}
        c = Circuit(title="buck converter EMI model")

        def trace(net: str, n_from: str) -> str:
            value = lt.get(net, 0.0)
            if value <= 0.0:
                return n_from
            n_to = f"{n_from}#t"
            c.add_inductor(f"LT_{net}", n_from, n_to, value)
            return n_to

        # Ideal supply: DC rail, AC short.
        c.add_vsource("VSUP", "supply", "0", dc=self.input_voltage, ac=0.0)
        add_lisn(c, "LISN", "supply", "vin")

        # Input filter (pi): CX1 | trace | LF1 | CX2 + bulk CIN.
        cx1 = parts["CX1"]
        c.add_real_capacitor("CX1", "vin", "0", capacitance_of(cx1), esr=cx1.esr, esl=cx1.esl)
        vin_f = trace("VIN", "vin")
        lf1 = parts["LF1"]
        c.add_real_inductor(
            "LF1", vin_f, "vbus", lf1.inductance, esr=lf1.esr, epc=5e-12
        )
        cx2 = parts["CX2"]
        c.add_real_capacitor("CX2", "vbus", "0", capacitance_of(cx2), esr=cx2.esr, esl=cx2.esl)
        cin = parts["CIN"]
        c.add_real_capacitor("CIN", "vbus", "0", capacitance_of(cin), esr=cin.esr, esl=cin.esl)

        # Switching cell (substitution model), fed through the VBUS trace.
        i_noise, v_noise = self.sources()
        vbus_t = trace("VBUS", "vbus")
        c.add_inductor("LHOT", vbus_t, "vq", self.hot_loop_esl)
        c.add_isource("INOISE", "vq", "0", spectrum=i_noise.spectrum_callable())
        c.add_vsource("VSW", "sw", "0", spectrum=v_noise.spectrum_callable())

        # Output power path and filter.
        l1 = parts["L1"]
        if lt.get("VOUT", 0.0) > 0.0:
            c.add_real_inductor("L1", "sw", "vout#t", l1.inductance, esr=l1.esr, epc=8e-12)
            c.add_inductor("LT_VOUT", "vout#t", "vout", lt["VOUT"])
        else:
            c.add_real_inductor("L1", "sw", "vout", l1.inductance, esr=l1.esr, epc=8e-12)
        cout = parts["COUT"]
        c.add_real_capacitor(
            "COUT", "vout", "0", capacitance_of(cout), esr=cout.esr, esl=cout.esl
        )
        co2 = parts["CO2"]
        c.add_real_capacitor("CO2", "vout", "0", capacitance_of(co2), esr=co2.esr, esl=co2.esl)
        lf2 = parts["LF2"]
        if lt.get("VLOAD", 0.0) > 0.0:
            c.add_real_inductor(
                "LF2", "vout", "vload#t", lf2.inductance, esr=lf2.esr, epc=5e-12
            )
            c.add_inductor("LT_VLOAD", "vload#t", "vload", lt["VLOAD"])
        else:
            c.add_real_inductor(
                "LF2", "vout", "vload", lf2.inductance, esr=lf2.esr, epc=5e-12
            )
        cx3 = parts["CX3"]
        c.add_real_capacitor(
            "CX3", "vload", "0", capacitance_of(cx3), esr=cx3.esr, esl=cx3.esl
        )
        c.add_resistor("RLOAD", "vload", "0", self.output_voltage / self.output_current)

        if couplings:
            self.apply_couplings(c, couplings)
        return c, "LISN.meas"

    def trace_inductances_from_layout(self, problem) -> dict[str, float]:
        """Per-net trace inductances of a *placed* problem [H].

        Routes the power nets with the Manhattan router and converts route
        length to partial inductance — the placement-dependent "inductance
        of lines" the paper's section 2 includes in the system simulation.
        """
        from ..routing import ManhattanRouter, route_inductance

        router = ManhattanRouter(problem)
        out: dict[str, float] = {}
        by_name = {net.name: net for net in problem.nets}
        for net_name in ("VIN", "VBUS", "VOUT", "VLOAD"):
            net = by_name.get(net_name)
            if net is None:
                continue
            route = router.route_net(net)
            if not route.is_empty():
                out[net_name] = route_inductance(route)
        return out

    def apply_couplings(
        self, circuit: Circuit, couplings: dict[tuple[str, str], float]
    ) -> int:
        """Insert layout couplings into a circuit; returns how many applied."""
        ref_to_branch = {ref: branch for branch, ref in COUPLING_BRANCHES.items()}
        applied = 0
        for (ref_a, ref_b), k in couplings.items():
            branch_a = ref_to_branch.get(ref_a)
            branch_b = ref_to_branch.get(ref_b)
            if branch_a is None or branch_b is None:
                continue
            if abs(k) < 1e-9:
                continue
            circuit.set_coupling(branch_a, branch_b, float(np.clip(k, -0.999, 0.999)))
            applied += 1
        return applied

    def apply_capacitive_couplings(
        self, circuit: Circuit, capacitances: dict[tuple[str, str], float]
    ) -> int:
        """Insert body-to-body mutual capacitances; returns how many applied.

        Each pair's mutual capacitance bridges the two components' hot
        nodes (:data:`CAPACITIVE_NODES`) — the electric-field bypass that
        "gains more influence at higher frequencies".  Pairs whose hot
        nodes coincide are skipped (a capacitor across one node is inert).
        """
        applied = 0
        for (ref_a, ref_b), value in capacitances.items():
            node_a = CAPACITIVE_NODES.get(ref_a)
            node_b = CAPACITIVE_NODES.get(ref_b)
            if node_a is None or node_b is None or node_a == node_b:
                continue
            if value < 1e-15:
                continue
            circuit.add_capacitor(f"CPAR_{ref_a}_{ref_b}", node_a, node_b, value)
            applied += 1
        return applied

    # -- emission prediction -------------------------------------------------

    def harmonic_frequencies(self, f_max: float = 108e6) -> np.ndarray:
        """Switching harmonics inside the CISPR 25 conducted range."""
        i_noise, _ = self.sources()
        freqs = i_noise.harmonic_frequencies(f_max)
        return freqs[freqs >= 150e3 * 0.99]

    def emission_spectrum(
        self,
        couplings: dict[tuple[str, str], float] | None = None,
        f_max: float = 108e6,
        capacitive: dict[tuple[str, str], float] | None = None,
        trace_inductances: dict[str, float] | None = None,
    ) -> Spectrum:
        """Conducted-emission line spectrum at the LISN measurement port.

        Args:
            couplings: magnetic coupling map from the layout.
            f_max: highest harmonic to evaluate.
            capacitive: optional body-to-body capacitance map (the
                high-frequency extension).
            trace_inductances: optional per-net trace inductances [H].
        """
        from ..circuit import MnaSystem

        circuit, meas = self.emi_circuit(couplings, trace_inductances)
        if capacitive:
            self.apply_capacitive_couplings(circuit, capacitive)
        freqs = self.harmonic_frequencies(f_max)
        mna = MnaSystem(circuit)
        values = np.array(
            [mna.solve_ac(float(f)).voltage(meas) for f in freqs], dtype=complex
        )
        return Spectrum(freqs, values)


def capacitance_of(component: Component) -> float:
    """Capacitance of a capacitor-like part.

    Raises:
        AttributeError: if the part has no ``capacitance``.
    """
    return component.capacitance  # type: ignore[attr-defined]
