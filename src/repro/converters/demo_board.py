"""The 29-device demo board of the paper's Fig. 9.

Section 4: *"The task for the method was to place 29 devices on a specified
area by taking 100 minimum distances into account.  Three functional groups
were defined.  The result is a legal component arrangement and was computed
by the method in seconds."*

This generator builds a board with exactly that shape: 29 parts drawn from
the library, 100 pairwise minimum-distance rules (the densest pairs by
stray-field strength), and three functional groups.
"""

from __future__ import annotations

import itertools

from ..components import (
    BobbinChoke,
    CeramicCapacitor,
    ChipResistor,
    Component,
    Connector,
    ControllerIC,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    PowerDiode,
    PowerMosfet,
    ShuntResistor,
    TantalumCapacitorSMD,
)
from ..geometry import Polygon2D
from ..placement import Board, PlacedComponent, PlacementProblem
from ..rules import MinDistanceRule, RuleSet

__all__ = ["build_demo_board", "DEMO_DEVICE_COUNT", "DEMO_RULE_COUNT"]

DEMO_DEVICE_COUNT = 29
DEMO_RULE_COUNT = 100


def _demo_parts() -> dict[str, Component]:
    """29 parts: a two-stage filter board with dense magnetics."""
    parts: dict[str, Component] = {}
    for i in range(6):
        parts[f"CX{i + 1}"] = FilmCapacitorX2(part_number=f"CX{i + 1}-X2")
    for i in range(4):
        parts[f"L{i + 1}"] = BobbinChoke(
            part_number=f"L{i + 1}-CHOKE", orientation="horizontal"
        )
    for i in range(3):
        parts[f"CE{i + 1}"] = ElectrolyticCapacitor(part_number=f"CE{i + 1}-ELKO")
    for i in range(4):
        parts[f"CT{i + 1}"] = TantalumCapacitorSMD(part_number=f"CT{i + 1}-TANT")
    for i in range(4):
        parts[f"CC{i + 1}"] = CeramicCapacitor(part_number=f"CC{i + 1}-MLCC")
    parts["Q1"] = PowerMosfet(part_number="Q1-DPAK")
    parts["Q2"] = PowerMosfet(part_number="Q2-DPAK")
    parts["D1"] = PowerDiode(part_number="D1-SMC")
    parts["SH1"] = ShuntResistor(part_number="SH1-2512")
    parts["U1"] = ControllerIC(part_number="U1-SO8")
    parts["R1"] = ChipResistor(part_number="R1-1206")
    parts["R2"] = ChipResistor(part_number="R2-1206")
    parts["J1"] = Connector(part_number="J1-CONN")
    assert len(parts) == DEMO_DEVICE_COUNT
    return parts


def _field_strength(component: Component) -> float:
    """Ranking key: loop moment per ampere times effective permeability."""
    moment = component.current_path.magnetic_moment().norm()
    return moment * component.mu_eff


def build_demo_board(
    board_width: float = 100e-3, board_height: float = 80e-3
) -> PlacementProblem:
    """The Fig. 9 benchmark problem: 29 devices, 100 rules, 3 groups."""
    board = Board(0, Polygon2D.rectangle(0.0, 0.0, board_width, board_height))
    problem = PlacementProblem([board])
    parts = _demo_parts()
    for refdes, comp in parts.items():
        problem.add_component(PlacedComponent(refdes, comp))

    # Chain nets along the two filter stages (keeps wirelength meaningful).
    chain = ["J1", "CX1", "L1", "CX2", "CE1", "Q1", "L2", "CT1", "CX3", "L3"]
    for i in range(len(chain) - 1):
        problem.add_net(f"N{i + 1}", [(chain[i], "1"), (chain[i + 1], "1")])
    problem.add_net("NQ", [("Q2", "D"), ("D1", "K"), ("L4", "1")])
    problem.add_net("NS", [("SH1", "1"), ("U1", "1"), ("R1", "1"), ("R2", "1")])

    problem.define_group("input_stage", ["CX1", "L1", "CX2", "CE1", "CT2", "CC1"])
    problem.define_group("power", ["Q1", "Q2", "D1", "L2", "L4", "SH1", "CE2"])
    problem.define_group("output_stage", ["CX3", "L3", "CT1", "CC2", "CE3"])

    # 100 min-distance rules: strongest-field pairs first.
    ranked = sorted(parts, key=lambda r: _field_strength(parts[r]), reverse=True)
    rules: list[MinDistanceRule] = []
    for ref_a, ref_b in itertools.combinations(ranked, 2):
        if len(rules) >= DEMO_RULE_COUNT:
            break
        strength = min(_field_strength(parts[ref_a]), _field_strength(parts[ref_b]))
        # PEMD scales with the weaker partner's stray field: chokes demand
        # ~30 mm against each other, small ceramics only a few mm.
        pemd = min(0.032, max(0.006, 0.012 + 4.0 * strength))
        rules.append(MinDistanceRule(ref_a, ref_b, pemd=pemd, source="demo"))
    problem.rules = RuleSet(min_distance=rules)
    assert len(problem.rules.min_distance) == DEMO_RULE_COUNT
    return problem
