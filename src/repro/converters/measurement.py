"""Synthetic CISPR 25 measurement — the substitute for the paper's test bench.

The original work measured a physical buck converter on a CISPR 25 bench
(Figs. 1, 2, 12).  That hardware is a data gate this reproduction cannot
cross, so — per the substitution rule documented in DESIGN.md — the
"measurement" is synthesised from the *full* coupled model, which is
precisely what the paper validates the model against in Fig. 14 ("good
coincidence is achieved only by including magnetic couplings").

To keep the comparison honest the synthetic measurement is **not** the
prediction verbatim; it adds the effects a real bench exhibits:

* component-tolerance detuning — every parasitic L/C in the model is
  perturbed within its tolerance band (seeded, reproducible);
* multiplicative gain ripple (receiver/cabling frequency response);
* an additive receiver noise floor.
"""

from __future__ import annotations

import numpy as np

from ..circuit import Circuit, MnaSystem
from ..emi import Spectrum
from .buck import BuckConverterDesign

__all__ = ["synthesize_measurement", "perturb_circuit"]


def perturb_circuit(
    circuit: Circuit, rng: np.random.Generator, tolerance: float = 0.15
) -> Circuit:
    """A copy of the circuit with every L and C detuned within tolerance.

    Resistors are left alone (their tolerance hardly moves resonances);
    sources and couplings are preserved.
    """
    from ..circuit.elements import Capacitor, Inductor

    variant = circuit.clone()
    for element in variant.elements:
        if isinstance(element, Capacitor):
            element.capacitance *= float(rng.uniform(1.0 - tolerance, 1.0 + tolerance))
        elif isinstance(element, Inductor):
            element.inductance *= float(rng.uniform(1.0 - tolerance, 1.0 + tolerance))
    return variant


def synthesize_measurement(
    design: BuckConverterDesign,
    couplings: dict[tuple[str, str], float],
    seed: int = 2008,
    tolerance: float = 0.15,
    gain_ripple_db: float = 2.0,
    noise_floor_dbuv: float = 8.0,
    f_max: float = 108e6,
) -> Spectrum:
    """The emulated bench measurement for a given layout's couplings.

    Args:
        design: the converter under test.
        couplings: the layout's coupling map (from
            :func:`repro.converters.layout_couplings`).
        seed: RNG seed — 2008, reproducibly, for the venue year.
        tolerance: L/C detuning band.
        gain_ripple_db: 1-sigma of the smooth multiplicative ripple.
        noise_floor_dbuv: additive receiver floor.

    Returns:
        Line spectrum at the LISN port, same grid as the prediction.
    """
    rng = np.random.default_rng(seed)
    circuit, meas = design.emi_circuit(couplings)
    variant = perturb_circuit(circuit, rng, tolerance)
    freqs = design.harmonic_frequencies(f_max)
    mna = MnaSystem(variant)
    values = np.array(
        [mna.solve_ac(float(f)).voltage(meas) for f in freqs], dtype=complex
    )

    # Smooth gain ripple: random walk in log-frequency, low-pass filtered.
    walk = rng.standard_normal(len(freqs))
    kernel = np.hanning(15)
    kernel /= kernel.sum()
    smooth = np.convolve(walk, kernel, mode="same")
    std = float(np.std(smooth)) or 1.0
    ripple_db = gain_ripple_db * smooth / std
    values = values * 10.0 ** (ripple_db / 20.0)

    # Additive noise floor (incoherent).
    floor_v = 1e-6 * 10.0 ** (noise_floor_dbuv / 20.0)
    noise = floor_v * rng.rayleigh(scale=1.0 / np.sqrt(2.0), size=len(freqs))
    magnitudes = np.sqrt(np.abs(values) ** 2 + noise**2)
    phases = np.angle(values)
    return Spectrum(freqs, magnitudes * np.exp(1j * phases))
