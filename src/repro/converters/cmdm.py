"""Two-line (CM/DM) conducted-emission model of the buck converter.

The single-line model of :class:`BuckConverterDesign` measures the positive
supply line only — exactly what the paper's plots show.  Real CISPR 25
benches instrument *both* lines; the common-/differential-mode split then
tells the designer which choke to grow.  This module builds that two-LISN
model:

* a LISN in the positive **and** the return line, both referenced to the
  chassis (node ``"0"``);
* the converter's power ground becomes a real node (``pgnd``) between the
  return LISN and the circuit;
* the common-mode excitation path is the switch-node-to-chassis parasitic
  capacitance (heatsink/baseplate), the canonical CM source in power
  converters.

The result feeds :func:`repro.emi.separate_modes` with physically coupled
line voltages.
"""

from __future__ import annotations

import numpy as np

from ..circuit import Circuit, MnaSystem
from ..emi import Spectrum, add_lisn
from .buck import BuckConverterDesign, capacitance_of

__all__ = ["build_cmdm_circuit", "cmdm_spectra"]

#: Default switch-node to chassis (heatsink) parasitic capacitance [F].
DEFAULT_HEATSINK_CAPACITANCE = 68e-12


def build_cmdm_circuit(
    design: BuckConverterDesign,
    heatsink_capacitance: float = DEFAULT_HEATSINK_CAPACITANCE,
    couplings: dict[tuple[str, str], float] | None = None,
) -> tuple[Circuit, str, str]:
    """The two-LISN model; returns (circuit, meas_node_P, meas_node_N).

    Args:
        design: converter parameters and parts.
        heatsink_capacitance: switch node -> chassis parasitic [F]; zero
            disables the CM path (pure DM remains).
        couplings: optional magnetic coupling map, applied exactly as in
            the single-line model.

    Raises:
        ValueError: for a negative heatsink capacitance.
    """
    if heatsink_capacitance < 0.0:
        raise ValueError("heatsink capacitance must be non-negative")
    parts = design.parts()
    c = Circuit(title="buck converter CM/DM model")

    # Supply between the two feed lines; chassis is node "0".
    c.add_vsource("VSUP", "supply_p", "supply_n", dc=design.input_voltage, ac=0.0)
    # Bond the supply side to chassis softly (bench: artificial network gnd).
    c.add_resistor("RBOND", "supply_n", "0", 1e3)
    add_lisn(c, "LISN_P", "supply_p", "vin")
    add_lisn(c, "LISN_N", "supply_n", "pgnd")

    # Input filter referenced to the converter's power ground "pgnd".
    cx1 = parts["CX1"]
    c.add_real_capacitor("CX1", "vin", "pgnd", capacitance_of(cx1), esr=cx1.esr, esl=cx1.esl)
    lf1 = parts["LF1"]
    c.add_real_inductor("LF1", "vin", "vbus", lf1.inductance, esr=lf1.esr, epc=5e-12)
    cx2 = parts["CX2"]
    c.add_real_capacitor("CX2", "vbus", "pgnd", capacitance_of(cx2), esr=cx2.esr, esl=cx2.esl)
    cin = parts["CIN"]
    c.add_real_capacitor("CIN", "vbus", "pgnd", capacitance_of(cin), esr=cin.esr, esl=cin.esl)

    # Switching cell: DM pulse current + switch-node voltage, both
    # referenced to pgnd; the heatsink capacitance closes the CM loop to
    # the chassis.
    i_noise, v_noise = design.sources()
    c.add_inductor("LHOT", "vbus", "vq", design.hot_loop_esl)
    c.add_isource("INOISE", "vq", "pgnd", spectrum=i_noise.spectrum_callable())
    c.add_vsource("VSW", "sw", "pgnd", spectrum=v_noise.spectrum_callable())
    if heatsink_capacitance > 0.0:
        c.add_capacitor("CHS", "sw", "0", heatsink_capacitance)

    # Output path (load referenced to pgnd).
    l1 = parts["L1"]
    c.add_real_inductor("L1", "sw", "vout", l1.inductance, esr=l1.esr, epc=8e-12)
    cout = parts["COUT"]
    c.add_real_capacitor("COUT", "vout", "pgnd", capacitance_of(cout), esr=cout.esr, esl=cout.esl)
    co2 = parts["CO2"]
    c.add_real_capacitor("CO2", "vout", "pgnd", capacitance_of(co2), esr=co2.esr, esl=co2.esl)
    lf2 = parts["LF2"]
    c.add_real_inductor("LF2", "vout", "vload", lf2.inductance, esr=lf2.esr, epc=5e-12)
    cx3 = parts["CX3"]
    c.add_real_capacitor("CX3", "vload", "pgnd", capacitance_of(cx3), esr=cx3.esr, esl=cx3.esl)
    c.add_resistor("RLOAD", "vload", "pgnd", design.output_voltage / design.output_current)

    if couplings:
        design.apply_couplings(c, couplings)
    return c, "LISN_P.meas", "LISN_N.meas"


def cmdm_spectra(
    design: BuckConverterDesign,
    heatsink_capacitance: float = DEFAULT_HEATSINK_CAPACITANCE,
    couplings: dict[tuple[str, str], float] | None = None,
    f_max: float = 108e6,
) -> tuple[Spectrum, Spectrum]:
    """Line spectra (positive, negative) of the two-LISN model."""
    circuit, meas_p, meas_n = build_cmdm_circuit(
        design, heatsink_capacitance, couplings
    )
    freqs = design.harmonic_frequencies(f_max)
    mna = MnaSystem(circuit)
    values_p = np.empty(len(freqs), dtype=complex)
    values_n = np.empty(len(freqs), dtype=complex)
    for i, f in enumerate(freqs):
        sol = mna.solve_ac(float(f))
        values_p[i] = sol.voltage(meas_p)
        values_n[i] = sol.voltage(meas_n)
    return Spectrum(freqs, values_p), Spectrum(freqs, values_n)
