"""A boost converter demonstrator — the flow generalises beyond the paper.

The paper evaluates one topology (a buck).  The methodology claims to be
general; this second demonstrator substantiates that: same part library,
same EMI model structure, same placement hooks — but a boost power stage,
whose *continuous input current* (the inductor sits at the input) makes
its differential-mode signature characteristically quieter at the LISN
than the buck's chopped input current.  The topology comparison bench
measures exactly that.

Substitution model: the switch leg (Q1 to ground) draws the chopped
inductor current — a trapezoidal current source at the switch node; the
diode side sees the switched output voltage — a trapezoidal voltage source
at the output cell.  The input-side noise reaching the LISN is the *ripple
portion* of the inductor current, which the model produces naturally: the
harmonic current divides between L1 (to the source) and the switch leg.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit import Circuit, TrapezoidSource
from ..components import (
    BobbinChoke,
    CeramicCapacitor,
    Component,
    Connector,
    ControllerIC,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    PowerDiode,
    PowerMosfet,
)
from ..emi import Spectrum, add_lisn
from ..geometry import Polygon2D
from ..placement import Board, PlacedComponent, PlacementProblem
from .buck import capacitance_of

__all__ = ["BoostConverterDesign", "BOOST_COUPLING_BRANCHES"]

#: Circuit inductor branch -> refdes (the boost's coupling surface).
BOOST_COUPLING_BRANCHES: dict[str, str] = {
    "CX1.ESL": "CX1",
    "LF1.L": "LF1",
    "CX2.ESL": "CX2",
    "L1.L": "L1",
    "LHOT": "Q1",
    "COUT.ESL": "COUT",
    "CO2.ESL": "CO2",
}


@dataclass
class BoostConverterDesign:
    """Parameterised boost converter (12 V automotive to 24 V rail).

    Mirrors :class:`BuckConverterDesign`'s API surface so the flow, the
    benches and the layout bridges work unchanged.

    Attributes:
        input_voltage: supply rail [V].
        output_voltage: boosted output [V] (must exceed the input).
        output_current: DC load current [A].
        switching_frequency: converter fundamental [Hz].
        t_rise, t_fall: switch-node edge times [s].
    """

    input_voltage: float = 12.0
    output_voltage: float = 24.0
    output_current: float = 1.0
    switching_frequency: float = 250e3
    t_rise: float = 30e-9
    t_fall: float = 30e-9
    board_width: float = 70e-3
    board_height: float = 50e-3
    hot_loop_esl: float = 12e-9
    _parts: dict[str, Component] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.input_voltage < self.output_voltage:
            raise ValueError("need Vout > Vin > 0 for a boost converter")
        if self.switching_frequency <= 0.0:
            raise ValueError("switching frequency must be positive")

    @property
    def duty(self) -> float:
        """Nominal duty cycle D = 1 - Vin/Vout."""
        return 1.0 - self.input_voltage / self.output_voltage

    @property
    def input_current(self) -> float:
        """Average inductor (input) current [A], ideal efficiency."""
        return self.output_current * self.output_voltage / self.input_voltage

    def parts(self) -> dict[str, Component]:
        """refdes -> component for the whole converter (cached)."""
        if not self._parts:
            self._parts = {
                "CONN1": Connector(part_number="CONN-IN"),
                "CX1": FilmCapacitorX2(part_number="CX1-X2"),
                "LF1": BobbinChoke(part_number="LF1-CHOKE", orientation="horizontal"),
                "CX2": FilmCapacitorX2(part_number="CX2-X2"),
                "L1": BobbinChoke(
                    part_number="L1-BOOST",
                    footprint_w=16e-3,
                    footprint_h=14e-3,
                    body_height=14e-3,
                    turns=26,
                    coil_radius=5e-3,
                    coil_length=10e-3,
                    n_rings=6,
                    orientation="horizontal",
                    # Catalogue value sized for ~20 % input ripple at 2 A;
                    # the geometric model above still drives the couplings.
                    rated_inductance=68e-6,
                ),
                "Q1": PowerMosfet(part_number="Q1-DPAK"),
                "D1": PowerDiode(part_number="D1-SMC"),
                "COUT": ElectrolyticCapacitor(part_number="COUT-ELKO"),
                "CO2": CeramicCapacitor(part_number="CO2-MLCC"),
                "CTRL": ControllerIC(part_number="CTRL-SO8"),
                "CONN2": Connector(part_number="CONN-OUT"),
            }
        return self._parts

    def placement_problem(self) -> PlacementProblem:
        """A fresh placement problem: board, components, nets, groups."""
        board = Board(
            0, Polygon2D.rectangle(0.0, 0.0, self.board_width, self.board_height)
        )
        problem = PlacementProblem([board])
        for refdes, comp in self.parts().items():
            problem.add_component(PlacedComponent(refdes, comp))
        problem.add_net("VIN", [("CONN1", "1"), ("CX1", "1"), ("LF1", "1")])
        problem.add_net("VBUS", [("LF1", "2"), ("CX2", "1"), ("L1", "1")])
        problem.add_net("SW", [("L1", "2"), ("Q1", "D"), ("D1", "A")])
        problem.add_net(
            "VOUT", [("D1", "K"), ("COUT", "1"), ("CO2", "1"), ("CONN2", "1")]
        )
        problem.add_net("GATE", [("CTRL", "3"), ("Q1", "G")])
        problem.add_net(
            "GND",
            [
                ("CONN1", "2"),
                ("CX1", "2"),
                ("CX2", "2"),
                ("Q1", "S"),
                ("COUT", "2"),
                ("CO2", "2"),
                ("CONN2", "2"),
            ],
        )
        problem.define_group("input_filter", ["CX1", "LF1", "CX2"])
        problem.define_group("power_stage", ["L1", "Q1", "D1", "CTRL"])
        problem.define_group("output", ["COUT", "CO2"])
        return problem

    def emi_circuit(
        self, couplings: dict[tuple[str, str], float] | None = None
    ) -> tuple[Circuit, str]:
        """The frequency-domain EMI model; returns (circuit, measure node).

        Substitution model: the switch leg chops the inductor current
        (trapezoidal current source to ground at the switch node); the
        rectified output cell is driven by the switched node voltage.
        """
        parts = self.parts()
        c = Circuit(title="boost converter EMI model")
        c.add_vsource("VSUP", "supply", "0", dc=self.input_voltage, ac=0.0)
        add_lisn(c, "LISN", "supply", "vin")

        cx1 = parts["CX1"]
        c.add_real_capacitor("CX1", "vin", "0", capacitance_of(cx1), esr=cx1.esr, esl=cx1.esl)
        lf1 = parts["LF1"]
        c.add_real_inductor("LF1", "vin", "vbus", lf1.inductance, esr=lf1.esr, epc=5e-12)
        cx2 = parts["CX2"]
        c.add_real_capacitor("CX2", "vbus", "0", capacitance_of(cx2), esr=cx2.esr, esl=cx2.esl)

        # The boost inductor carries the input current continuously; only
        # its ripple (and the chopped current beyond it) excites the line.
        l1 = parts["L1"]
        c.add_real_inductor("L1", "vbus", "sw", l1.inductance, esr=l1.esr, epc=8e-12)

        i_noise = TrapezoidSource(
            0.0,
            self.input_current,
            self.switching_frequency,
            duty=self.duty,
            t_rise=self.t_rise,
            t_fall=self.t_fall,
        )
        c.add_inductor("LHOT", "sw", "vq", self.hot_loop_esl)
        c.add_isource("INOISE", "vq", "0", spectrum=i_noise.spectrum_callable())

        # The diode connects the switch node to the output cell; replaced
        # by its switched voltage drop (substitution theorem).  Crucially
        # this gives the chopped current a zero-impedance path into COUT,
        # which is what keeps the *input* inductor current continuous —
        # the defining EMI property of the boost topology.
        v_noise = TrapezoidSource(
            0.0,
            self.output_voltage,
            self.switching_frequency,
            duty=1.0 - self.duty,
            t_rise=self.t_rise,
            t_fall=self.t_fall,
        )
        c.add_vsource("VD", "sw", "vrect", spectrum=v_noise.spectrum_callable())
        cout = parts["COUT"]
        c.add_real_capacitor(
            "COUT", "vrect", "0", capacitance_of(cout), esr=cout.esr, esl=cout.esl
        )
        co2 = parts["CO2"]
        c.add_real_capacitor("CO2", "vrect", "0", capacitance_of(co2), esr=co2.esr, esl=co2.esl)
        c.add_resistor("RLOAD", "vrect", "0", self.output_voltage / self.output_current)

        if couplings:
            self.apply_couplings(c, couplings)
        return c, "LISN.meas"

    def apply_couplings(
        self, circuit: Circuit, couplings: dict[tuple[str, str], float]
    ) -> int:
        """Insert layout couplings; returns how many were applied."""
        ref_to_branch = {ref: br for br, ref in BOOST_COUPLING_BRANCHES.items()}
        applied = 0
        for (ref_a, ref_b), k in couplings.items():
            branch_a = ref_to_branch.get(ref_a)
            branch_b = ref_to_branch.get(ref_b)
            if branch_a is None or branch_b is None or abs(k) < 1e-9:
                continue
            circuit.set_coupling(branch_a, branch_b, float(np.clip(k, -0.999, 0.999)))
            applied += 1
        return applied

    def harmonic_frequencies(self, f_max: float = 108e6) -> np.ndarray:
        """Switching harmonics inside the CISPR 25 conducted range."""
        n_max = int(f_max / self.switching_frequency)
        freqs = self.switching_frequency * np.arange(1, n_max + 1, dtype=float)
        return freqs[freqs >= 150e3 * 0.99]

    def emission_spectrum(
        self,
        couplings: dict[tuple[str, str], float] | None = None,
        f_max: float = 108e6,
    ) -> Spectrum:
        """Conducted-emission line spectrum at the LISN measurement port."""
        from ..circuit import MnaSystem

        circuit, meas = self.emi_circuit(couplings)
        freqs = self.harmonic_frequencies(f_max)
        mna = MnaSystem(circuit)
        values = np.array(
            [mna.solve_ac(float(f)).voltage(meas) for f in freqs], dtype=complex
        )
        return Spectrum(freqs, values)
