"""Content hashing of coupling-problem inputs — the persistent cache key.

A coupling result is a pure function of

* the two components' **field geometry** (their filament meshes) and
  **effective-permeability parameters** (``mu_eff``, core stray fraction);
* the pair's **relative pose** (coupling is invariant under a rigid
  in-plane motion of the pair, even above a solid ground plane — the
  plane is horizontal and isotropic in x/y);
* the **ground-plane height** and each part's board standoff, which break
  the z-translation symmetry;
* the **quadrature order** of the field computation.

The fingerprints below hash exactly those ingredients (SHA-256 over the
raw IEEE-754 doubles, no string formatting) so that a persistent cache
entry survives process restarts but *never* survives a change to the
inputs: perturbing a filament endpoint by one ULP produces a different
key.  A schema version is folded into every key, so bumping
:data:`CACHE_SCHEMA_VERSION` invalidates the whole store at once.

Relative poses are quantised exactly like the in-memory
:class:`repro.coupling.CouplingDatabase` key (0.1 mm / 1 degree — far
below any placement-relevant coupling sensitivity), so both cache tiers
agree on which poses are "the same".
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..components import Component
    from ..geometry import Placement2D

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "component_fingerprint",
    "pair_cache_key",
    "relative_pose_key",
]

#: Version of the on-disk cache schema.  Bumping it stales every stored
#: entry (see docs/PERFORMANCE.md, "Cache invalidation").
CACHE_SCHEMA_VERSION = 1

#: Position quantum of the relative-pose key [m] (0.1 mm).
_POSE_QUANTUM_M = 1e-4

#: Rotation quantum of the relative-pose key [rad] (1 degree).
_POSE_QUANTUM_RAD = math.pi / 180.0


def _feed_floats(digest: "hashlib._Hash", values: tuple[float, ...]) -> None:
    """Feed raw little-endian doubles into a running digest."""
    digest.update(struct.pack(f"<{len(values)}d", *values))


def component_fingerprint(component: "Component") -> str:
    """Content hash of everything about a component the field solver reads.

    Covers the part number, the effective-permeability parameters
    (``mu_eff`` [-] and core ``stray_fraction`` [-]) and, per filament of
    the local-frame current path: start/end [m], conductor cross-section
    [m] and signed turns weight [-].

    Returns:
        A 64-character hex SHA-256 digest.
    """
    digest = hashlib.sha256()
    digest.update(b"component-v1\0")
    digest.update(component.part_number.encode("utf-8"))
    digest.update(b"\0")
    _feed_floats(digest, (component.mu_eff, component.core.stray_fraction))
    for fil in component.current_path.filaments:
        _feed_floats(
            digest,
            (
                fil.start.x,
                fil.start.y,
                fil.start.z,
                fil.end.x,
                fil.end.y,
                fil.end.z,
                fil.width,
                fil.thickness,
                fil.weight,
            ),
        )
    return digest.hexdigest()


def relative_pose_key(
    placement_a: "Placement2D", placement_b: "Placement2D"
) -> tuple[int, int, int, int, int, int, int]:
    """Quantised relative pose of B in A's frame.

    Args:
        placement_a, placement_b: board placements (positions [m],
            rotations [rad], standoffs [m]).

    Returns:
        Integer tuple: offset x/y in 0.1 mm steps, rotation difference in
        whole degrees (mod 360), both board sides, both z standoffs in
        0.1 mm steps.
    """
    rel = placement_b.position - placement_a.position
    local = rel.rotated(-placement_a.rotation_rad)
    drot = placement_b.rotation_rad - placement_a.rotation_rad
    return (
        round(local.x / _POSE_QUANTUM_M),
        round(local.y / _POSE_QUANTUM_M),
        round(drot / _POSE_QUANTUM_RAD) % 360,
        placement_a.side,
        placement_b.side,
        round(placement_a.z_offset / _POSE_QUANTUM_M),
        round(placement_b.z_offset / _POSE_QUANTUM_M),
    )


def pair_cache_key(
    fingerprint_a: str,
    fingerprint_b: str,
    placement_a: "Placement2D",
    placement_b: "Placement2D",
    ground_plane_z: float | None,
    order: int,
    version: int = CACHE_SCHEMA_VERSION,
) -> str:
    """Persistent cache key for one placed component pair.

    Args:
        fingerprint_a, fingerprint_b: :func:`component_fingerprint` of the
            two parts (A is the frame of reference of the relative pose).
        placement_a, placement_b: board placements.
        ground_plane_z: shielding-plane height [m], ``None`` for free space.
        order: Gauss–Legendre quadrature order of the field computation.
        version: cache schema version folded into the key.

    Returns:
        A 64-character hex SHA-256 digest.  The key is *not* symmetric in
        A/B; callers that want the mirrored result must also try the
        swapped key (see :meth:`repro.coupling.CouplingDatabase.peek`).
    """
    digest = hashlib.sha256()
    digest.update(f"pair-v{version}|order={order}|".encode("ascii"))
    if ground_plane_z is None:
        digest.update(b"gp=none|")
    else:
        digest.update(b"gp=")
        _feed_floats(digest, (round(ground_plane_z / _POSE_QUANTUM_M) * 1.0,))
    digest.update(fingerprint_a.encode("ascii"))
    digest.update(b"|")
    digest.update(fingerprint_b.encode("ascii"))
    digest.update(b"|")
    pose = relative_pose_key(placement_a, placement_b)
    digest.update(struct.pack(f"<{len(pose)}q", *pose))
    return digest.hexdigest()
