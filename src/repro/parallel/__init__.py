"""Execution layer for the coupling hot path: fan-out and persistence.

The paper's workflow pays for many pairwise field simulations (the
Figs. 5–8 sweeps, the auto-placement verifications); this package makes
each one cheap to repeat and cheap to scale:

* :class:`CouplingExecutor` — chunked process-pool map with deterministic
  result ordering and a graceful serial fallback;
* :class:`PersistentCouplingCache` — on-disk, content-hash-keyed store of
  field-simulation results with versioned invalidation;
* :mod:`~repro.parallel.fingerprint` — the geometry/placement/µ hashing
  that defines "the same coupling problem" across processes.

The layer is physics-free by design: it never imports the solvers it
accelerates, so :mod:`repro.coupling` can build on it without cycles.
Wiring into the flow is documented in ``docs/PERFORMANCE.md``.
"""

from .cache import PersistentCouplingCache, default_cache_dir
from .executor import CouplingExecutor
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    component_fingerprint,
    pair_cache_key,
    relative_pose_key,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CouplingExecutor",
    "PersistentCouplingCache",
    "component_fingerprint",
    "default_cache_dir",
    "pair_cache_key",
    "relative_pose_key",
]
