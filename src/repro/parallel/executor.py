"""Process-pool fan-out for coupling evaluations — deterministic and safe.

The coupling hot path is embarrassingly parallel: every sweep point and
every component pair is an independent pure function of its inputs.
:class:`CouplingExecutor` turns a list of such tasks into chunked
submissions to a ``ProcessPoolExecutor`` while keeping three guarantees
the rest of the repository relies on (see ``docs/PERFORMANCE.md``):

* **deterministic ordering** — results come back in task order regardless
  of which worker finished first;
* **bitwise-identical numerics** — the same function runs on the same
  inputs in every mode, so parallel and serial results agree exactly
  (the 1e-12 bound in the tests is satisfied with equality);
* **graceful serial fallback** — ``workers=1`` never touches
  ``multiprocessing``, and any failure of the parallel machinery
  (unpicklable task, broken worker, sandboxed environment) falls back to
  an in-process run.  Task functions must therefore be *pure*: a fallback
  re-executes them from scratch.

Counters: ``parallel.tasks`` (tasks requested), ``parallel.chunks``
(pool submissions), ``parallel.fallbacks`` (parallel phases that degraded
to serial).  The fan-out itself runs under a ``parallel.map`` span.

**Worker-side span capture** — when the parent runs under a real tracer,
each chunk payload carries a ``traced`` flag: the worker installs a fresh
child :class:`~repro.obs.Tracer` around its chunk, and the serialised
span subtree plus counters/gauges ship back with the chunk result.  The
parent merges every worker subtree under a ``parallel.worker`` node of
the currently open span, so pool runs profile end-to-end (the hottest
PEEC code no longer disappears from the trace).  ``parallel.worker``
wall time is summed across processes — CPU-busy time, legitimately
larger than the parent's wall-clock span on multi-core runs.

**Live worker chunk events** — the span capture above is post-hoc (it
merges when a chunk's *result* arrives).  When the parent tracer also
carries an :class:`~repro.obs.EventBus`, the pool is additionally wired
with a multiprocessing queue: every worker pushes
``parallel.chunk_start`` / ``parallel.chunk_done`` marks as its chunk
begins and ends, and a parent-side drainer thread republishes them as
``log`` events on the bus *while the fan-out is still running* — the
live progress feed for ``--live`` / ``--events-out``.  The queue uses
synchronous puts (``multiprocessing.SimpleQueue``), so no chunk event
is ever lost between a worker finishing and the parent's final drain;
any failure of the event machinery degrades to "no live events", never
to a failed map.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import threading
import time
from collections.abc import Callable, Iterable
from typing import Any

from ..obs import get_tracer

__all__ = ["CouplingExecutor"]

#: Target number of chunks per worker; larger spreads load, smaller cuts
#: pickling overhead.  4 keeps the tail worker busy without flooding IPC.
_CHUNKS_PER_WORKER = 4

#: Worker-side chunk-event queue, installed by the pool initializer;
#: ``None`` in the parent and in pools created without an event bus.
_EVENT_QUEUE: Any | None = None


def _worker_events_init(queue: Any) -> None:
    """Pool initializer: remember the parent's chunk-event queue."""
    global _EVENT_QUEUE  # physlint: disable=API002 -- per-worker-process wiring
    _EVENT_QUEUE = queue


def _put_chunk_event(mark: str, chunk: int, items: int) -> None:
    """Push one chunk mark to the parent, swallowing every failure."""
    queue = _EVENT_QUEUE
    if queue is None:
        return
    with contextlib.suppress(Exception):
        queue.put((mark, chunk, items, os.getpid(), time.time()))


def _run_chunk(payload: bytes) -> tuple[list[Any], dict[str, Any] | None]:
    """Worker-side entry: apply ``fn`` to every item of one chunk, in order.

    The payload is a pre-pickled ``(fn, items, traced, stream, chunk)``
    tuple: serialising in the parent (see
    :meth:`CouplingExecutor._map_parallel`) turns an unpicklable task
    into a synchronous error with a clean serial fallback, instead of an
    asynchronous failure inside the pool's feeder thread that can wedge
    the pool beyond recovery.  ``stream`` asks the worker to push
    chunk start/done marks to the parent's event queue; ``chunk`` is
    the chunk's index within its map call.

    Returns:
        ``(results, capture)`` where ``capture`` is ``None`` for
        untraced runs, else ``{"spans": ..., "gauges": ...,
        "histograms": ...}`` — the chunk's child tracer serialised for
        the parent to absorb (the chunk's own wall time is also
        observed into the ``parallel.chunk_seconds`` histogram, which
        merges across workers by bucket addition).  A
        fresh tracer is installed per chunk (fork-started workers inherit
        a *copy* of the parent's tracer whose spans would otherwise be
        recorded into oblivion) and the null tracer is restored before
        returning, also when the task raises.
    """
    fn, items, traced, stream, chunk = pickle.loads(payload)
    if stream:
        _put_chunk_event("parallel.chunk_start", chunk, len(items))
    try:
        if not traced:
            return [fn(item) for item in items], None
        from ..obs import NULL_TRACER, Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
        try:
            results = [fn(item) for item in items]
        finally:
            set_tracer(NULL_TRACER)
        tracer.root.wall_s = tracer.elapsed_s()
        tracer.observe("parallel.chunk_seconds", tracer.root.wall_s)
        return results, {
            "spans": tracer.root.to_dict(),
            "gauges": dict(tracer.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in tracer.histograms.items()
                if hist.count > 0
            },
        }
    finally:
        if stream:
            _put_chunk_event("parallel.chunk_done", chunk, len(items))


class _ChunkEventDrainer:
    """Parent-side thread republishing worker chunk marks onto the bus.

    Workers push ``(mark, chunk, items, pid, ts)`` tuples through a
    :class:`multiprocessing.SimpleQueue` (synchronous puts — the bytes
    are in the pipe before the chunk's result future resolves); this
    thread polls the queue and publishes each mark as a ``log`` event.
    :meth:`stop` joins the thread and then drains whatever is left, so
    every mark emitted before the last future resolved is republished.
    """

    _POLL_S = 0.02

    def __init__(self, queue: Any, bus: Any):
        self._queue = queue
        self._bus = bus
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-chunk-events", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._drain_available()

    def _publish(self, item: Any) -> None:
        try:
            mark, chunk, items, pid, ts = item
            self._bus.publish(
                "log",
                str(mark),
                attrs={
                    "chunk": int(chunk),
                    "items": int(items),
                    "pid": int(pid),
                    "worker_ts": float(ts),
                },
            )
        except Exception:
            pass

    def _drain_available(self) -> None:
        try:
            while not self._queue.empty():
                self._publish(self._queue.get())
        except (OSError, EOFError):
            pass

    def _run(self) -> None:
        while True:
            try:
                if self._queue.empty():
                    if self._stop.is_set():
                        return
                    time.sleep(self._POLL_S)
                    continue
                self._publish(self._queue.get())
            except (OSError, EOFError):
                return


class CouplingExecutor:
    """Chunked, order-preserving parallel map over pure task functions.

    Args:
        workers: process count; ``1`` (the default) means strictly serial,
            in-process execution with zero multiprocessing imports on the
            hot path (dimensionless count).
        chunk_size: tasks per pool submission; ``None`` derives
            ``ceil(n / (workers * 4))`` from the task count (dimensionless
            count).

    The worker pool is created lazily on the first parallel map and kept
    alive across calls (fork startup is cheap, but re-forking per sweep is
    not free); :meth:`close` — or use as a context manager — releases it.
    """

    def __init__(self, workers: int = 1, chunk_size: int | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool: Any | None = None
        self._events_queue: Any | None = None

    @property
    def is_parallel(self) -> bool:
        """Whether this executor fans out to worker processes at all."""
        return self.workers > 1

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply a pure, picklable, module-level ``fn`` to every task.

        Args:
            fn: task function; must be importable by name in a fresh
                process (a module-level ``def``) for the parallel path.
            tasks: the task payloads, each picklable for the parallel path.

        Returns:
            ``[fn(t) for t in tasks]`` — same values, same order, in every
            execution mode.  Exceptions raised by ``fn`` propagate (after
            an automatic serial retry when they first surface in a worker,
            so a physics ``ValueError`` is never misreported as a pool
            failure).
        """
        items = list(tasks)
        tracer = get_tracer()
        tracer.count("parallel.tasks", len(items))
        if not self.is_parallel or len(items) <= 1:
            return [fn(item) for item in items]
        with tracer.span("parallel.map"):
            try:
                return self._map_parallel(fn, items)
            except Exception:
                # Unpicklable payloads, a broken/forbidden pool, or a task
                # error inside a worker all land here.  Re-running serially
                # is always correct for pure tasks: genuine task errors
                # re-raise with their original type and traceback.
                tracer.count("parallel.fallbacks")
                self.close()
                return [fn(item) for item in items]

    def _map_parallel(self, fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
        tracer = get_tracer()
        size = self.chunk_size
        if size is None:
            # workers >= 1 is enforced in __init__; the clamp is belt-and-braces.
            size = max(1, -(-len(items) // max(1, self.workers * _CHUNKS_PER_WORKER)))
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        # Pickle in the parent: raises here (and falls back serially) for
        # unpicklable tasks rather than poisoning the pool's feeder thread.
        traced = bool(tracer.enabled)
        pool = self._ensure_pool()
        bus = getattr(tracer, "bus", None)
        stream = bus is not None and self._events_queue is not None
        payloads = [
            pickle.dumps((fn, chunk, traced, stream, index))
            for index, chunk in enumerate(chunks)
        ]
        tracer.count("parallel.chunks", len(chunks))
        drainer = None
        if stream:
            bus.publish(
                "log",
                "parallel.map_start",
                attrs={"chunks": len(chunks), "tasks": len(items)},
            )
            drainer = _ChunkEventDrainer(self._events_queue, bus)
            drainer.start()
        try:
            futures = [pool.submit(_run_chunk, payload) for payload in payloads]
            results: list[Any] = []
            for future in futures:  # submission order == task order
                chunk_results, capture = future.result()
                results.extend(chunk_results)
                if capture is not None:
                    tracer.absorb_worker(capture)
            return results
        finally:
            if drainer is not None:
                drainer.stop()

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            initializer = None
            initargs: tuple[Any, ...] = ()
            # Wire the chunk-event queue only when a bus exists at pool
            # creation: bus-less runs keep zero extra moving parts.
            if getattr(get_tracer(), "bus", None) is not None:
                try:
                    import multiprocessing

                    self._events_queue = multiprocessing.SimpleQueue()
                    initializer = _worker_events_init
                    initargs = (self._events_queue,)
                except Exception:
                    self._events_queue = None
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=initializer,
                initargs=initargs,
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; a later map re-creates it).

        Waits for the workers to exit: an abandoned half-shut pool can
        deadlock the interpreter's exit hooks, and pending tasks are
        cancelled first so the wait is bounded by one in-flight chunk.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True, cancel_futures=True)
        if self._events_queue is not None:
            queue, self._events_queue = self._events_queue, None
            try:
                queue.close()
            except (OSError, AttributeError):
                pass

    def __enter__(self) -> "CouplingExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CouplingExecutor(workers={self.workers}, chunk_size={self.chunk_size})"
