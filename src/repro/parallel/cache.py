"""Persistent on-disk cache for coupling results, keyed by content hash.

The paper motivates its whole sensitivity-analysis machinery with the cost
of field simulation; this cache makes every paid-for field solve reusable
*across processes and sessions*.  Entries are tiny JSON files keyed by the
SHA-256 content hash of the problem inputs (see
:mod:`repro.parallel.fingerprint`), stored two-level-sharded under a cache
directory:

``<cache_dir>/<key[:2]>/<key>.json``

Semantics (documented in full in ``docs/PERFORMANCE.md``):

* **hit** — the file exists and carries the expected schema version;
* **miss** — no file;
* **stale** — the file exists but its schema version differs (or the JSON
  is unreadable); stale entries are deleted on sight and reported via the
  ``cache.stale`` counter, which is how a :data:`CACHE_SCHEMA_VERSION`
  bump invalidates an old store without a manual wipe.

Writes are atomic (temp file + ``os.replace``) so concurrent workers and
interrupted runs can never leave a torn entry, and every I/O error
degrades to a miss — the cache is an accelerator, never a correctness
dependency.

The store is multi-tenant by construction: any number of processes *and*
threads may point instances at the same directory (the service layer
shares one cache directory across all jobs, see ``docs/SERVICE.md``).
On-disk safety comes from the atomic replace; the per-instance
``hits``/``misses``/``stale``/``writes`` accounting is additionally
lock-guarded so one instance may be shared between threads without
losing counts.

The store is payload-agnostic: it persists plain JSON dictionaries.  The
:class:`repro.coupling.CouplingDatabase` owns the mapping between
``CouplingResult`` and its dictionary form, keeping this layer free of any
physics imports.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from ..obs import get_tracer
from .fingerprint import CACHE_SCHEMA_VERSION

__all__ = ["PersistentCouplingCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    """The default on-disk cache location.

    ``$REPRO_EMI_CACHE_DIR`` wins when set; otherwise
    ``$XDG_CACHE_HOME/repro-emi/coupling`` (falling back to
    ``~/.cache/repro-emi/coupling``).
    """
    override = os.environ.get("REPRO_EMI_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-emi" / "coupling"


class PersistentCouplingCache:
    """Content-addressed JSON store for field-simulation results.

    Args:
        cache_dir: directory holding the entries; created lazily on the
            first write.  Defaults to :func:`default_cache_dir`.
        version: schema version expected of every entry; entries written
            under another version are treated as stale (dimensionless
            count, compared exactly).

    Attributes:
        hits, misses, stale, writes, evicted: lifetime operation counts
            of this instance, lock-guarded so a shared instance counts
            correctly under threads (the on-disk store itself is shared
            and unaffected).
    """

    def __init__(self, cache_dir: str | Path | None = None, version: int = CACHE_SCHEMA_VERSION):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.version = version
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.writes = 0
        self.evicted = 0

    def _bump(self, attr: str) -> None:
        """Increment one lifetime counter under the stats lock."""
        with self._stats_lock:
            setattr(self, attr, getattr(self, attr) + 1)

    def hit_rate(self) -> float | None:
        """Lifetime disk hit-rate of this instance (``None`` before any
        lookup; stale entries force a re-solve, so they rate as misses)."""
        with self._stats_lock:
            lookups = self.hits + self.misses + self.stale
            return self.hits / lookups if lookups else None

    def path_for(self, key: str) -> Path:
        """On-disk location of a key (two-level sharding by hex prefix)."""
        return self.cache_dir.joinpath(key[:2], f"{key}.json")

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on miss/stale.

        Counts ``cache.hit`` / ``cache.miss`` / ``cache.stale`` on the
        active tracer and observes the lookup latency into the
        ``cache.lookup_seconds`` histogram; stale or unreadable entries
        are deleted.
        """
        tracer = get_tracer()
        path = self.path_for(key)
        t0 = time.perf_counter()
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            tracer.observe("cache.lookup_seconds", time.perf_counter() - t0)
            self._bump("misses")
            tracer.count("cache.miss")
            return None
        try:
            document = json.loads(raw)
            stored_version = int(document["version"])
            payload = document["payload"]
        except (ValueError, TypeError, KeyError):
            document = None
            stored_version = -1
            payload = None
        tracer.observe("cache.lookup_seconds", time.perf_counter() - t0)
        if payload is None or stored_version != self.version or not isinstance(payload, dict):
            self._bump("stale")
            tracer.count("cache.stale")
            self._discard(path)
            return None
        self._bump("hits")
        tracer.count("cache.hit")
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically persist a payload under ``key`` (best effort).

        I/O failures (read-only filesystem, disk full) are swallowed: the
        result simply is not cached.  Counts ``cache.write`` on success.
        """
        path = self.path_for(key)
        document = {"version": self.version, "key": key, "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle)
                os.replace(tmp_name, path)
            except BaseException:
                self._discard(Path(tmp_name))
                raise
        except OSError:
            return
        self._bump("writes")
        get_tracer().count("cache.write")

    def gc(
        self,
        max_size_bytes: int | None = None,
        max_age_s: float | None = None,
        now: float | None = None,
    ) -> dict[str, Any]:
        """Evict entries LRU-by-mtime until the store fits its budgets.

        Two independent caps, either or both may be ``None`` (no cap):

        * ``max_age_s`` — entries whose mtime is older than this many
          seconds are always evicted;
        * ``max_size_bytes`` — after age eviction, the oldest remaining
          entries are evicted until the total size fits.

        mtime is the LRU signal because :meth:`put` rewrites entries
        atomically (``os.replace`` refreshes mtime) — a recently
        re-written entry is a recently *produced* one.  Files that
        vanish mid-scan (a concurrent GC or clear) are skipped, never
        fatal; each successful eviction counts ``cache.evicted`` on the
        active tracer and bumps :attr:`evicted`.

        Args:
            max_size_bytes: total on-disk budget [bytes].
            max_age_s: maximum entry age [s].
            now: reference timestamp for age math (defaults to
                ``time.time()``; exposed for deterministic tests).

        Returns:
            ``{"scanned", "evicted", "kept", "bytes_before",
            "bytes_after", "bytes_evicted"}`` — entry counts and sizes.
        """
        reference = time.time() if now is None else now
        entries: list[tuple[float, int, Path]] = []
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*/*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first: the eviction order
        bytes_before = sum(size for _, size, _ in entries)
        evict: list[tuple[float, int, Path]] = []
        kept = list(entries)
        if max_age_s is not None:
            cutoff = reference - max_age_s
            evict = [e for e in kept if e[0] < cutoff]
            kept = [e for e in kept if e[0] >= cutoff]
        if max_size_bytes is not None:
            total = sum(size for _, size, _ in kept)
            while kept and total > max_size_bytes:
                oldest = kept.pop(0)
                evict.append(oldest)
                total -= oldest[1]
        tracer = get_tracer()
        evicted_count = 0
        evicted_bytes = 0
        for _mtime, size, path in evict:
            try:
                path.unlink()
            except OSError:
                continue
            evicted_count += 1
            evicted_bytes += size
            self._bump("evicted")
            tracer.count("cache.evicted")
        return {
            "scanned": len(entries),
            "evicted": evicted_count,
            "kept": len(entries) - evicted_count,
            "bytes_before": bytes_before,
            "bytes_after": bytes_before - evicted_bytes,
            "bytes_evicted": evicted_bytes,
        }

    def clear(self) -> int:
        """Delete every entry under the cache directory; returns the count."""
        removed = 0
        if not self.cache_dir.is_dir():
            return removed
        for entry in sorted(self.cache_dir.glob("*/*.json")):
            self._discard(entry)
            removed += 1
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk (any schema version)."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PersistentCouplingCache({str(self.cache_dir)!r}, v{self.version}, "
            f"hits={self.hits}, misses={self.misses}, stale={self.stale})"
        )
