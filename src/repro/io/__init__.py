"""ASCII-file interface of the placement tool (read/write problems)."""

from .ascii import AsciiFormatError, read_problem, write_problem
from .netlist_import import default_part_for, problem_from_netlist

__all__ = [
    "read_problem",
    "write_problem",
    "AsciiFormatError",
    "problem_from_netlist",
    "default_part_for",
]
